//! Netlist optimisation: constant propagation, algebraic simplification
//! and dead-cell elimination.
//!
//! The word-level builder is deliberately naive (ripple adders, full mux
//! trees), so designs carry foldable structure — constant operands,
//! buffers, muxes with constant selects. This pass performs the classic
//! logic-synthesis clean-up while provably preserving behaviour (the test
//! suite re-simulates optimised netlists against the originals on random
//! stimuli).

use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;
use crate::RtlError;
use psm_trace::Direction;

/// What [`optimize`] did to a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Cells whose output was folded to a constant or aliased to another
    /// net.
    pub folded: usize,
    /// Cells removed because nothing reads their output.
    pub dead: usize,
    /// Flip-flops replaced by constants (d tied to init).
    pub const_dffs: usize,
}

impl OptStats {
    /// Total cells removed.
    pub fn removed(&self) -> usize {
        self.folded + self.dead + self.const_dffs
    }
}

/// A net's resolved value during folding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Const(bool),
    Net(NetId),
}

fn resolve(subst: &[Value], mut n: NetId) -> Value {
    loop {
        match subst[n.index()] {
            Value::Net(m) if m != n => n = m,
            v @ Value::Const(_) => return v,
            _ => return Value::Net(n),
        }
    }
}

/// Optimises a netlist: folds constants through gates, collapses buffers
/// and trivial gates, removes flip-flops stuck at their reset value, and
/// sweeps dead cells. Ports, port semantics and cycle-accurate behaviour
/// are preserved exactly.
///
/// # Errors
///
/// Returns an error only if the input netlist itself fails validation.
///
/// # Examples
///
/// ```
/// use psm_rtl::{optimize, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("foldable");
/// let a = b.input("a", 4);
/// let zero = b.const_word(0, 4);
/// // x = a & 0 is constant zero; y = a ^ 0 is just a.
/// let x = b.and_word(&a, &zero);
/// let y = b.xor_word(&a, &zero);
/// b.output("x", &x);
/// b.output("y", &y);
/// let n = b.finish()?;
/// let (opt, stats) = optimize(&n)?;
/// assert_eq!(opt.gates().len(), 0, "everything folds away");
/// assert_eq!(stats.removed(), 8);
/// # Ok::<(), psm_rtl::RtlError>(())
/// ```
pub fn optimize(netlist: &Netlist) -> Result<(Netlist, OptStats), RtlError> {
    netlist.validate()?;
    let n_nets = netlist.net_count();
    let mut subst: Vec<Value> = (0..n_nets).map(|i| Value::Net(NetId(i))).collect();
    subst[Netlist::CONST0.index()] = Value::Const(false);
    subst[Netlist::CONST1.index()] = Value::Const(true);

    let mut gates: Vec<Option<(Gate, usize)>> = netlist
        .gates()
        .iter()
        .cloned()
        .zip(netlist.gate_domains().iter().copied())
        .map(Some)
        .collect();
    let mut dffs: Vec<Option<(crate::netlist::Dff, usize)>> = netlist
        .dffs()
        .iter()
        .copied()
        .zip(netlist.dff_domains().iter().copied())
        .map(Some)
        .collect();
    let mut stats = OptStats::default();

    // --- constant folding / aliasing to a fixpoint ------------------------
    loop {
        let mut changed = false;

        for slot in gates.iter_mut() {
            let Some((g, _)) = slot else { continue };
            let ins: Vec<Value> = g.inputs.iter().map(|&n| resolve(&subst, n)).collect();
            let consts: Vec<Option<bool>> = ins
                .iter()
                .map(|v| match v {
                    Value::Const(c) => Some(*c),
                    Value::Net(_) => None,
                })
                .collect();

            // Fully constant cell.
            if consts.iter().all(Option::is_some) {
                let vals: Vec<bool> = consts.iter().map(|c| c.expect("checked")).collect();
                subst[g.output.index()] = Value::Const(g.kind.eval(&vals));
                *slot = None;
                stats.folded += 1;
                changed = true;
                continue;
            }

            // Algebraic simplifications with one constant operand.
            let alias: Option<Value> = match (&g.kind, consts.as_slice()) {
                (GateKind::Buf, _) => Some(ins[0]),
                (GateKind::And2, [Some(false), _]) | (GateKind::And2, [_, Some(false)]) => {
                    Some(Value::Const(false))
                }
                (GateKind::And2, [Some(true), _]) => Some(ins[1]),
                (GateKind::And2, [_, Some(true)]) => Some(ins[0]),
                (GateKind::Or2, [Some(true), _]) | (GateKind::Or2, [_, Some(true)]) => {
                    Some(Value::Const(true))
                }
                (GateKind::Or2, [Some(false), _]) => Some(ins[1]),
                (GateKind::Or2, [_, Some(false)]) => Some(ins[0]),
                (GateKind::Xor2, [Some(false), _]) => Some(ins[1]),
                (GateKind::Xor2, [_, Some(false)]) => Some(ins[0]),
                (GateKind::Mux2, [Some(sel), ..]) => Some(if *sel { ins[2] } else { ins[1] }),
                // Mux with identical branches ignores the select.
                (GateKind::Mux2, _) if ins[1] == ins[2] => Some(ins[1]),
                _ => None,
            };
            if let Some(v) = alias {
                subst[g.output.index()] = v;
                *slot = None;
                stats.folded += 1;
                changed = true;
                continue;
            }

            // Rewrite inputs in place so later passes see resolved nets.
            for (input, v) in g.inputs.iter_mut().zip(&ins) {
                let new = match v {
                    Value::Const(false) => Netlist::CONST0,
                    Value::Const(true) => Netlist::CONST1,
                    Value::Net(n) => *n,
                };
                if *input != new {
                    *input = new;
                    changed = true;
                }
            }
        }

        // Flip-flops stuck at their reset value.
        for slot in dffs.iter_mut() {
            let Some((d, _)) = slot else { continue };
            match resolve(&subst, d.d) {
                Value::Const(c) if c == d.init => {
                    subst[d.q.index()] = Value::Const(c);
                    *slot = None;
                    stats.const_dffs += 1;
                    changed = true;
                }
                Value::Net(n) if n != d.d => {
                    d.d = n;
                    changed = true;
                }
                Value::Const(c) => {
                    // Settles after one cycle but starts differently: keep
                    // the flop, just tie its input to the constant net.
                    let tied = if c { Netlist::CONST1 } else { Netlist::CONST0 };
                    if d.d != tied {
                        d.d = tied;
                        changed = true;
                    }
                }
                Value::Net(_) => {}
            }
        }

        if !changed {
            break;
        }
    }

    // --- dead-cell elimination ---------------------------------------------
    // Roots: output-port nets, flip-flop data, memory inputs.
    let final_net = |v: Value| -> NetId {
        match v {
            Value::Const(false) => Netlist::CONST0,
            Value::Const(true) => Netlist::CONST1,
            Value::Net(n) => n,
        }
    };
    let mut live = vec![false; n_nets];
    let mark = |n: NetId, live: &mut Vec<bool>| {
        live[n.index()] = true;
    };
    for p in netlist.ports() {
        if p.direction() == Direction::Output {
            for &n in p.nets() {
                mark(final_net(resolve(&subst, n)), &mut live);
            }
        }
    }
    for slot in dffs.iter().flatten() {
        mark(slot.0.d, &mut live);
    }
    for m in netlist.memories() {
        for &n in m.addr.iter().chain(&m.wdata) {
            mark(final_net(resolve(&subst, n)), &mut live);
        }
        for n in [m.we, m.re, m.clear] {
            mark(final_net(resolve(&subst, n)), &mut live);
        }
    }
    // Backward closure over remaining gates (levelized order reversed is
    // cheapest, but a fixpoint is simplest and the pass is cold).
    loop {
        let mut changed = false;
        for slot in gates.iter().flatten() {
            if live[slot.0.output.index()] {
                for &i in &slot.0.inputs {
                    if !live[i.index()] {
                        live[i.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for slot in gates.iter_mut() {
        if let Some((g, _)) = slot {
            if !live[g.output.index()] {
                *slot = None;
                stats.dead += 1;
            }
        }
    }

    // --- rebuild -------------------------------------------------------------
    let mut new_gates = Vec::new();
    let mut new_gate_domains = Vec::new();
    for (g, dom) in gates.into_iter().flatten() {
        new_gates.push(g);
        new_gate_domains.push(dom);
    }
    let mut new_dffs = Vec::new();
    let mut new_dff_domains = Vec::new();
    for (d, dom) in dffs.into_iter().flatten() {
        new_dffs.push(d);
        new_dff_domains.push(dom);
    }

    // Memories keep their structure; rewrite their input nets.
    let mut new_memories = netlist.memories().to_vec();
    for m in &mut new_memories {
        for n in m.addr.iter_mut().chain(m.wdata.iter_mut()) {
            *n = final_net(resolve(&subst, *n));
        }
        m.we = final_net(resolve(&subst, m.we));
        m.re = final_net(resolve(&subst, m.re));
        m.clear = final_net(resolve(&subst, m.clear));
    }

    // Ports: inputs keep their nets (they are sources); outputs follow the
    // substitution. Ports store nets immutably inside Netlist, so rebuild.
    let mut out = Netlist::from_parts(
        netlist.name().to_owned(),
        n_nets,
        new_gates,
        new_dffs,
        new_memories,
        Vec::new(),
        netlist.domains().to_vec(),
        new_gate_domains,
        new_dff_domains,
        netlist.mem_domains().to_vec(),
    );
    for p in netlist.ports() {
        let nets = match p.direction() {
            Direction::Input => p.nets().to_vec(),
            Direction::Output => p
                .nets()
                .iter()
                .map(|&n| final_net(resolve(&subst, n)))
                .collect(),
        };
        out.add_port(p.name().to_owned(), p.direction(), nets)?;
    }
    out.validate()?;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Simulator};
    use psm_trace::Bits;

    /// Random-vector equivalence between two netlists with one data input.
    fn assert_equiv(a: &Netlist, b: &Netlist, width: usize, cycles: usize) {
        let mut sa = Simulator::new(a).expect("acyclic");
        let mut sb = Simulator::new(b).expect("acyclic");
        let mut x = 0x2545F4914F6CDD1Du64;
        for t in 0..cycles {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = Bits::from_u64(x, width);
            sa.set_input("a", &v).expect("port");
            sb.set_input("a", &v).expect("port");
            sa.step();
            sb.step();
            for p in a.ports() {
                if p.direction() == Direction::Output {
                    assert_eq!(
                        sa.output(p.name()).expect("port"),
                        sb.output(p.name()).expect("port"),
                        "port {} at cycle {t}",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn folds_constant_cones() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a", 8);
        let k = b.const_word(0x0F, 8);
        let x = b.and_word(&a, &k); // low nibble passes, high nibble zero
        let y = b.add(&x, &k).sum;
        b.output("y", &y);
        let n = b.finish().expect("builds");
        let (opt, stats) = optimize(&n).expect("optimises");
        assert!(stats.removed() > 0);
        assert!(opt.gates().len() < n.gates().len());
        assert_equiv(&n, &opt, 8, 200);
    }

    #[test]
    fn sweeps_dead_logic() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a", 8);
        let _unused = b.mul(&a, &a); // large dead cone
        let y = b.not_word(&a);
        b.output("y", &y);
        let n = b.finish().expect("builds");
        let (opt, stats) = optimize(&n).expect("optimises");
        assert_eq!(opt.gates().len(), 8, "only the inverters remain");
        assert!(stats.dead > 100);
        assert_equiv(&n, &opt, 8, 100);
    }

    #[test]
    fn removes_stuck_flops() {
        let mut b = NetlistBuilder::new("stuck");
        let a = b.input("a", 1);
        let r = b.register("r", 1); // d tied to 0 = init
        let zero_w = crate::Word::from_nets(vec![b.const0()]);
        b.connect_register(&r, &zero_w);
        let q = r.q();
        let y = b.or_word(&a, &q); // q is always 0 → y = a
        b.output("y", &y);
        let n = b.finish().expect("builds");
        let (opt, stats) = optimize(&n).expect("optimises");
        assert_eq!(stats.const_dffs, 1);
        assert!(opt.dffs().is_empty());
        assert!(opt.gates().is_empty(), "or(a, 0) aliases to a");
        assert_equiv(&n, &opt, 1, 50);
    }

    #[test]
    fn sequential_designs_stay_equivalent() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a", 4);
        let r = b.register("r", 4);
        let q = r.q();
        let zero = b.const_word(0, 4);
        let gated = b.mux_word(a.bit(0), &q, &zero); // half-constant mux
        let sum = b.add(&gated, &a).sum;
        b.connect_register(&r, &sum);
        b.output("q", &r.q());
        let n = b.finish().expect("builds");
        let (opt, _) = optimize(&n).expect("optimises");
        assert_equiv(&n, &opt, 4, 300);
    }

    #[test]
    fn benchmark_netlists_shrink_and_stay_valid() {
        use psm_trace::Direction;
        for name in ["MultSum", "AES", "Camellia"] {
            let ip = tests_support::ip_netlist(name);
            let (opt, stats) = optimize(&ip).expect("optimises");
            assert!(opt.validate().is_ok());
            assert!(
                stats.removed() > 0,
                "{name}: expected some foldable structure"
            );
            // Interfaces unchanged.
            assert_eq!(
                ip.ports()
                    .iter()
                    .filter(|p| p.direction() == Direction::Output)
                    .count(),
                opt.ports()
                    .iter()
                    .filter(|p| p.direction() == Direction::Output)
                    .count()
            );
        }
    }
}

/// Tiny internal hook so the optimiser tests can fetch benchmark netlists
/// without a dependency cycle on `psm-ips`.
#[cfg(test)]
pub(crate) mod tests_support {
    use crate::{Netlist, NetlistBuilder};

    /// Builds stand-in netlists with benchmark-like structure.
    pub fn ip_netlist(name: &str) -> Netlist {
        let mut b = NetlistBuilder::new(name);
        match name {
            "MultSum" => {
                let a = b.input("a", 16);
                let x = b.input("b", 16);
                let acc = b.register("acc", 32);
                let p = b.mul(&a, &x);
                let q = acc.q();
                let s = b.add(&q, &p).sum;
                b.connect_register(&acc, &s);
                b.output("sum", &acc.q());
            }
            _ => {
                // A generic round-ish structure with constant-heavy muxing.
                let d = b.input("a", 32);
                let st = b.register("st", 32);
                let k = b.const_word(0xDEAD_BEEF, 32);
                let q = st.q();
                let x = b.xor_word(&q, &k);
                let zero = b.const_word(0, 32);
                let sel = d.bit(0);
                let m = b.mux_word(sel, &x, &zero);
                let nxt = b.add(&m, &d).sum;
                b.connect_register(&st, &nxt);
                b.output("o", &st.q());
            }
        }
        b.finish().expect("builds")
    }
}
