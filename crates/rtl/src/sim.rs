//! Levelized two-value gate simulation with switching-activity capture.

use crate::gate::NetId;
use crate::levelize::levelize;
use crate::netlist::{MemoryMacro, Netlist};
use crate::power::CycleActivity;
use crate::RtlError;
use psm_trace::{Bits, Direction};
use std::collections::HashMap;

/// A cheap, pre-resolved handle to a port for hot-loop stimulus application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortHandle(usize);

impl PortHandle {
    /// Builds a handle from a dense port index (shared with
    /// [`BatchSimulator`](crate::BatchSimulator), whose handles are
    /// interchangeable with the scalar simulator's).
    pub(crate) fn from_index(index: usize) -> Self {
        PortHandle(index)
    }

    /// Dense index of this port in the netlist's declaration order.
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Cycle-based gate-level simulator.
///
/// Each [`step`](Simulator::step) models one clock cycle:
///
/// 1. pending flip-flop updates from the previous cycle's clock edge are
///    applied (their output toggles belong to this cycle's activity);
/// 2. staged input values are applied;
/// 3. the combinational cone settles in levelized order, counting
///    capacitance-weighted net toggles;
/// 4. flip-flop `d` pins are sampled for the next edge.
///
/// After `step` returns, [`output`](Simulator::output) reads the settled
/// value of any output port for this cycle, and the returned
/// [`CycleActivity`] carries the switched capacitance consumed by the power
/// model.
///
/// # Examples
///
/// See the [crate-level example](crate).
///
/// The simulator is [`Clone`], so a bounded state-space search can fork an
/// in-flight simulation per input assignment instead of replaying the
/// stimulus prefix from reset.
#[derive(Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<usize>,
    /// Settled value of every net.
    values: Vec<bool>,
    /// Staged input values, applied at the next step.
    staged: Vec<(NetId, bool)>,
    /// Next flip-flop values sampled at the previous clock edge.
    pending_q: Vec<bool>,
    /// Per-macro storage (one u64 row per word).
    mem_contents: Vec<Vec<u64>>,
    /// Next read-register value per macro, sampled at the previous edge.
    mem_pending: Vec<u64>,
    /// Previous-cycle (addr, wdata) bus values per macro.
    mem_prev_bus: Vec<(usize, u64)>,
    /// Switched capacitance per power domain during the last step.
    domain_caps: Vec<f64>,
    port_index: HashMap<String, usize>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for the netlist (levelizing its logic).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalLoop`] on cyclic combinational
    /// logic.
    pub fn new(netlist: &'a Netlist) -> Result<Self, RtlError> {
        let order = levelize(netlist)?;
        let mut sim = Simulator {
            netlist,
            order,
            values: vec![false; netlist.net_count()],
            staged: Vec::new(),
            pending_q: netlist.dffs().iter().map(|d| d.init).collect(),
            mem_contents: netlist
                .memories()
                .iter()
                .map(|m| vec![0u64; m.words()])
                .collect(),
            mem_pending: vec![0; netlist.memories().len()],
            mem_prev_bus: vec![(0, 0); netlist.memories().len()],
            domain_caps: vec![0.0; netlist.domains().len()],
            port_index: netlist
                .ports()
                .iter()
                .enumerate()
                .map(|(i, p)| (p.name().to_owned(), i))
                .collect(),
            cycle: 0,
        };
        sim.reset();
        Ok(sim)
    }

    /// Returns to the post-reset state: all nets low, registers at their
    /// initial values, no staged inputs.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = false);
        self.values[Netlist::CONST1.index()] = true;
        for (d, pending) in self.netlist.dffs().iter().zip(&mut self.pending_q) {
            *pending = d.init;
            self.values[d.q.index()] = d.init;
        }
        for rows in &mut self.mem_contents {
            rows.iter_mut().for_each(|r| *r = 0);
        }
        self.mem_pending.iter_mut().for_each(|v| *v = 0);
        self.mem_prev_bus.iter_mut().for_each(|v| *v = (0, 0));
        self.staged.clear();
        self.cycle = 0;
    }

    /// Number of completed cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resolves a port name once; use with
    /// [`set_input_by_handle`](Simulator::set_input_by_handle) /
    /// [`output_by_handle`](Simulator::output_by_handle) in hot loops.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownPort`] for undeclared names.
    pub fn port_handle(&self, name: &str) -> Result<PortHandle, RtlError> {
        self.port_index
            .get(name)
            .copied()
            .map(PortHandle)
            .ok_or_else(|| RtlError::UnknownPort(name.to_owned()))
    }

    /// Stages a value on an input port; it takes effect at the next
    /// [`step`](Simulator::step).
    ///
    /// # Errors
    ///
    /// * [`RtlError::UnknownPort`] for undeclared names;
    /// * [`RtlError::PortWidthMismatch`] when the value's width differs.
    pub fn set_input(&mut self, name: &str, value: &Bits) -> Result<(), RtlError> {
        let h = self.port_handle(name)?;
        self.set_input_by_handle(h, value)
    }

    /// Handle-based variant of [`set_input`](Simulator::set_input).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::PortWidthMismatch`] when the value's width
    /// differs from the port's.
    pub fn set_input_by_handle(&mut self, h: PortHandle, value: &Bits) -> Result<(), RtlError> {
        let port = &self.netlist.ports()[h.0];
        if port.width() != value.width() {
            return Err(RtlError::PortWidthMismatch {
                port: port.name().to_owned(),
                expected: port.width(),
                actual: value.width(),
            });
        }
        for (i, &net) in port.nets().iter().enumerate() {
            self.staged.push((net, value.bit(i)));
        }
        Ok(())
    }

    /// Capacitance of one flip-flop's clock pin (fF). The clock tree
    /// switches every cycle regardless of data activity, which is what
    /// gives real designs their non-zero idle power floor.
    pub const CLOCK_PIN_CAP_FF: f64 = 0.8;

    /// Runs one clock cycle and returns its switching activity.
    ///
    /// The returned capacitance always includes the clock tree
    /// ([`Self::CLOCK_PIN_CAP_FF`] per flip-flop), so even a fully idle
    /// design draws its clock power.
    pub fn step(&mut self) -> CycleActivity {
        let mut switched_cap = 0.0f64;
        let mut toggles = 0u32;
        let dff_cap = Netlist::dff_capacitance_ff();
        self.domain_caps.iter_mut().for_each(|c| *c = 0.0);

        // Clock tree: per flip-flop / macro, attributed to its domain.
        for &dom in self.netlist.dff_domains() {
            self.domain_caps[dom] += Self::CLOCK_PIN_CAP_FF;
        }
        for &dom in self.netlist.mem_domains() {
            self.domain_caps[dom] += MemoryMacro::CLOCK_CAP_FF;
        }
        switched_cap += self.netlist.dffs().len() as f64 * Self::CLOCK_PIN_CAP_FF
            + self.netlist.memories().len() as f64 * MemoryMacro::CLOCK_CAP_FF;

        // 1. Clock edge: apply pending flip-flop and macro outputs.
        for ((dff, &q), &dom) in self
            .netlist
            .dffs()
            .iter()
            .zip(&self.pending_q)
            .zip(self.netlist.dff_domains())
        {
            let idx = dff.q.index();
            if self.values[idx] != q {
                self.values[idx] = q;
                switched_cap += dff_cap;
                self.domain_caps[dom] += dff_cap;
                toggles += 1;
            }
        }
        for (mi, mem) in self.netlist.memories().iter().enumerate() {
            let dom = self.netlist.mem_domains()[mi];
            let word = self.mem_pending[mi];
            for (bit, net) in mem.rdata.iter().enumerate() {
                let v = word >> bit & 1 == 1;
                let idx = net.index();
                if self.values[idx] != v {
                    self.values[idx] = v;
                    switched_cap += MemoryMacro::RDATA_CAP_FF;
                    self.domain_caps[dom] += MemoryMacro::RDATA_CAP_FF;
                    toggles += 1;
                }
            }
        }

        // 2. Apply staged inputs (wire capacitance per toggling input bit,
        //    attributed to the default domain).
        const INPUT_WIRE_CAP_FF: f64 = 0.5;
        for (net, v) in self.staged.drain(..) {
            let idx = net.index();
            if self.values[idx] != v {
                self.values[idx] = v;
                switched_cap += INPUT_WIRE_CAP_FF;
                self.domain_caps[0] += INPUT_WIRE_CAP_FF;
                toggles += 1;
            }
        }

        // 3. Settle combinational logic in levelized order.
        let gates = self.netlist.gates();
        let gate_domains = self.netlist.gate_domains();
        let mut input_buf: Vec<bool> = Vec::with_capacity(8);
        for &gi in &self.order {
            let gate = &gates[gi];
            input_buf.clear();
            input_buf.extend(gate.inputs.iter().map(|n| self.values[n.index()]));
            let out = gate.kind.eval(&input_buf);
            let idx = gate.output.index();
            if self.values[idx] != out {
                self.values[idx] = out;
                let cap = gate.kind.capacitance_ff();
                switched_cap += cap;
                self.domain_caps[gate_domains[gi]] += cap;
                toggles += 1;
            }
        }

        // 3b. Memory-macro accesses: the command captured at this cycle's
        // opening edge performs its access *during* the cycle, so bus,
        // word-line and cell energy all belong to this cycle; only the
        // registered read data appears at the next edge.
        for (mi, mem) in self.netlist.memories().iter().enumerate() {
            let dom = self.netlist.mem_domains()[mi];
            let read_net = |n: NetId| self.values[n.index()];
            let mut addr = 0usize;
            for (bit, net) in mem.addr.iter().enumerate() {
                if read_net(*net) {
                    addr |= 1 << bit;
                }
            }
            let we = read_net(mem.we);
            let re = read_net(mem.re);
            let clear = read_net(mem.clear);
            let stored = self.mem_contents[mi][addr];
            // Heavy input buses: charged per toggling wire.
            let mut wdata_now = 0u64;
            for (bit, net) in mem.wdata.iter().enumerate() {
                if read_net(*net) {
                    wdata_now |= 1 << bit;
                }
            }
            let (prev_addr, prev_wdata) = self.mem_prev_bus[mi];
            let mut mem_cap = 0.0;
            mem_cap += MemoryMacro::ADDR_BUS_CAP_FF * ((prev_addr ^ addr).count_ones()) as f64;
            mem_cap +=
                MemoryMacro::WDATA_BUS_CAP_FF * ((prev_wdata ^ wdata_now).count_ones()) as f64;
            self.mem_prev_bus[mi] = (addr, wdata_now);
            if re || we {
                // Word line + bitline precharge per access.
                mem_cap += MemoryMacro::WORDLINE_CAP_FF
                    + MemoryMacro::ACCESS_CAP_PER_BIT_FF * mem.width() as f64;
            }
            if we {
                let flipped = (stored ^ wdata_now).count_ones();
                mem_cap += MemoryMacro::WRITE_CELL_CAP_FF * flipped as f64;
                self.mem_contents[mi][addr] = wdata_now;
            }
            switched_cap += mem_cap;
            self.domain_caps[dom] += mem_cap;
            // Output register: read-before-write contents, clear wins.
            if clear {
                self.mem_pending[mi] = 0;
            } else if re {
                self.mem_pending[mi] = stored;
            } // else: hold the previous read value
        }

        // 4. Sample flip-flop inputs for the next edge.
        for (dff, pending) in self.netlist.dffs().iter().zip(&mut self.pending_q) {
            *pending = self.values[dff.d.index()];
        }

        self.cycle += 1;
        CycleActivity {
            switched_capacitance_ff: switched_cap,
            toggled_nets: toggles,
        }
    }

    /// Reads the settled value of an output (or any) port for the current
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownPort`] for undeclared names.
    pub fn output(&self, name: &str) -> Result<Bits, RtlError> {
        let h = self.port_handle(name)?;
        Ok(self.output_by_handle(h))
    }

    /// Handle-based variant of [`output`](Simulator::output).
    pub fn output_by_handle(&self, h: PortHandle) -> Bits {
        let port = &self.netlist.ports()[h.0];
        let mut bits = Bits::zero(port.width());
        for (i, net) in port.nets().iter().enumerate() {
            if self.values[net.index()] {
                bits.set_bit(i, true);
            }
        }
        bits
    }

    /// Reads every port (inputs and outputs) in declaration order — one
    /// functional-trace cycle.
    pub fn sample_ports(&self) -> Vec<Bits> {
        (0..self.netlist.ports().len())
            .map(|i| self.output_by_handle(PortHandle(i)))
            .collect()
    }

    /// Reads the settled value of an arbitrary net (debug aid).
    pub fn net_value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Switched capacitance per power domain during the most recent
    /// [`step`](Simulator::step) (fF), indexed like
    /// [`Netlist::domains`]. The values sum to the step's total
    /// [`CycleActivity::switched_capacitance_ff`].
    pub fn domain_activity(&self) -> &[f64] {
        &self.domain_caps
    }

    /// A packed key of the functional (clock-to-clock) state: pending
    /// flip-flop values, pending memory read registers and memory
    /// contents. Two simulators with equal keys produce identical port
    /// samples for any identical future stimulus that stages every input
    /// each cycle, so bounded reachability searches can use the key to
    /// de-duplicate states. Settled combinational values and level-held
    /// inputs are deliberately excluded — they are recomputed from the
    /// next cycle's staged inputs.
    pub fn functional_state(&self) -> Vec<u64> {
        let mut key = Vec::new();
        let mut word = 0u64;
        for (i, &q) in self.pending_q.iter().enumerate() {
            if q {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                key.push(word);
                word = 0;
            }
        }
        if !self.pending_q.len().is_multiple_of(64) || self.pending_q.is_empty() {
            key.push(word);
        }
        key.extend_from_slice(&self.mem_pending);
        for contents in &self.mem_contents {
            key.extend_from_slice(contents);
        }
        key
    }

    /// Iterates over input port handles in declaration order.
    pub fn input_handles(&self) -> Vec<(String, PortHandle)> {
        self.netlist
            .ports()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction() == Direction::Input)
            .map(|(i, p)| (p.name().to_owned(), PortHandle(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn counter(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("counter");
        let en = b.input("en", 1);
        let r = b.register("count", width);
        let q = r.q();
        let next = b.inc(&q);
        b.connect_register_en(&r, en.bit(0), &next.sum);
        b.output("q", &r.q());
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let n = counter(4);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("en", &Bits::from_u64(1, 1)).unwrap();
        for expected in 0..20u64 {
            sim.step();
            assert_eq!(
                sim.output("q").unwrap().to_u64().unwrap(),
                expected % 16,
                "cycle {expected}"
            );
            sim.set_input("en", &Bits::from_u64(1, 1)).unwrap();
        }
    }

    #[test]
    fn disabled_counter_holds() {
        let n = counter(4);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("en", &Bits::from_u64(1, 1)).unwrap();
        sim.step();
        // Inputs are level-held: drive `en` low explicitly.
        sim.set_input("en", &Bits::from_u64(0, 1)).unwrap();
        sim.step();
        let v = sim.output("q").unwrap().to_u64().unwrap();
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), v);
    }

    #[test]
    fn activity_reflects_work() {
        let n = counter(8);
        let mut sim = Simulator::new(&n).unwrap();
        // Enabled: counting produces toggles every cycle.
        let mut active_cap = 0.0;
        for _ in 0..16 {
            sim.set_input("en", &Bits::from_u64(1, 1)).unwrap();
            active_cap += sim.step().switched_capacitance_ff;
        }
        // Idle: after settling, only the clock tree switches.
        sim.set_input("en", &Bits::from_u64(0, 1)).unwrap();
        sim.step(); // transition cycle
        let mut idle_cap = 0.0;
        for _ in 0..16 {
            let a = sim.step();
            assert_eq!(a.toggled_nets, 0, "no data toggles while idle");
            idle_cap += a.switched_capacitance_ff;
        }
        let clock_floor = 16.0 * 8.0 * Simulator::CLOCK_PIN_CAP_FF;
        assert!(
            (idle_cap - clock_floor).abs() < 1e-9,
            "idle = clock tree only"
        );
        assert!(
            active_cap > 2.0 * idle_cap,
            "active {active_cap} vs idle {idle_cap}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let n = counter(4);
        let mut sim = Simulator::new(&n).unwrap();
        for _ in 0..5 {
            sim.set_input("en", &Bits::from_u64(1, 1)).unwrap();
            sim.step();
        }
        assert_ne!(sim.output("q").unwrap().to_u64().unwrap(), 0);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), 0);
    }

    #[test]
    fn unknown_port_and_width_mismatch() {
        let n = counter(4);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(matches!(
            sim.set_input("nope", &Bits::from_u64(0, 1)),
            Err(RtlError::UnknownPort(_))
        ));
        assert!(matches!(
            sim.set_input("en", &Bits::from_u64(0, 2)),
            Err(RtlError::PortWidthMismatch { .. })
        ));
        assert!(sim.output("nope").is_err());
    }

    #[test]
    fn sample_ports_covers_interface() {
        let n = counter(4);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step();
        let cycle = sim.sample_ports();
        assert_eq!(cycle.len(), 2); // en, q
        assert_eq!(cycle[0].width(), 1);
        assert_eq!(cycle[1].width(), 4);
    }

    #[test]
    fn handles_match_names() {
        let n = counter(4);
        let mut sim = Simulator::new(&n).unwrap();
        let h = sim.port_handle("en").unwrap();
        sim.set_input_by_handle(h, &Bits::from_u64(1, 1)).unwrap();
        sim.step();
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), 1);
        let inputs = sim.input_handles();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].0, "en");
    }
}
