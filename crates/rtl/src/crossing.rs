//! Power-domain crossing queries over a [`Netlist`].
//!
//! Power domains partition the *cells* of a design; a net inherits the
//! domain of its driving cell. Constant nets and input-port bits have no
//! driving cell and count as always-on. A **domain crossing** is a net
//! whose driving cell and reading cell live in different domains — exactly
//! the boundaries that need isolation cells once a domain can be powered
//! down. This module computes the per-net domain map and the full crossing
//! graph; the semantic analysis on top of it (ternary off-domain proofs,
//! PD diagnostics) lives in `psm-analyze`.

use crate::gate::NetId;
use crate::netlist::Netlist;
use std::fmt;

/// Clamp polarity of an isolation cell.
///
/// An isolation cell sits in a still-on domain, reads a net driven inside a
/// gateable domain, and forces a known constant onto its output while that
/// domain is powered down: `Clamp0` parks the boundary at 0, `Clamp1` at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationKind {
    /// Output is clamped to 0 while the source domain is off.
    Clamp0,
    /// Output is clamped to 1 while the source domain is off.
    Clamp1,
}

impl IsolationKind {
    /// The constant the cell drives while isolation is active.
    pub fn clamp_value(self) -> bool {
        matches!(self, IsolationKind::Clamp1)
    }

    /// The attribute spelling (`"clamp0"` / `"clamp1"`).
    pub fn label(self) -> &'static str {
        match self {
            IsolationKind::Clamp0 => "clamp0",
            IsolationKind::Clamp1 => "clamp1",
        }
    }

    /// Parses the attribute spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "clamp0" => Some(IsolationKind::Clamp0),
            "clamp1" => Some(IsolationKind::Clamp1),
            _ => None,
        }
    }
}

impl fmt::Display for IsolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The cell on the reading side of a crossing edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellRef {
    /// Combinational cell, by index into [`Netlist::gates`].
    Gate(usize),
    /// Flip-flop, by index into [`Netlist::dffs`].
    Dff(usize),
    /// SRAM macro, by index into [`Netlist::memories`].
    Memory(usize),
}

/// One edge of the domain-crossing graph: a net driven in `from` and read
/// by a cell in `to`, with `from != to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossingEdge {
    /// The crossing net (output of the driving cell in `from`).
    pub net: NetId,
    /// Domain index of the driving cell.
    pub from: usize,
    /// Domain index of the reading cell.
    pub to: usize,
    /// The reading cell.
    pub sink: CellRef,
}

impl Netlist {
    /// The domain of each net, derived from its driving cell.
    ///
    /// `None` marks nets with no driving cell: the two constants and
    /// input-port bits (both always-on by convention), plus any undriven
    /// nets in defective netlists.
    pub fn net_domains(&self) -> Vec<Option<usize>> {
        let mut map = vec![None; self.net_count()];
        for (g, &d) in self.gates().iter().zip(self.gate_domains()) {
            if let Some(slot) = map.get_mut(g.output.index()) {
                *slot = Some(d);
            }
        }
        for (ff, &d) in self.dffs().iter().zip(self.dff_domains()) {
            if let Some(slot) = map.get_mut(ff.q.index()) {
                *slot = Some(d);
            }
        }
        for (m, &d) in self.memories().iter().zip(self.mem_domains()) {
            for n in &m.rdata {
                if let Some(slot) = map.get_mut(n.index()) {
                    *slot = Some(d);
                }
            }
        }
        map
    }

    /// The full domain-crossing graph: every (net, sink cell) pair whose
    /// driver domain differs from the sink cell's domain.
    ///
    /// Edges are reported in cell order (gates, then flip-flops, then
    /// macros); a cell reading several crossing nets contributes one edge
    /// per net. A single-domain netlist always yields an empty graph.
    pub fn domain_crossings(&self) -> Vec<CrossingEdge> {
        let map = self.net_domains();
        let mut edges = Vec::new();
        let mut push = |net: NetId, to: usize, sink: CellRef| {
            if let Some(Some(from)) = map.get(net.index()) {
                if *from != to {
                    edges.push(CrossingEdge {
                        net,
                        from: *from,
                        to,
                        sink,
                    });
                }
            }
        };
        for (i, (g, &to)) in self.gates().iter().zip(self.gate_domains()).enumerate() {
            for &n in &g.inputs {
                push(n, to, CellRef::Gate(i));
            }
        }
        for (i, (ff, &to)) in self.dffs().iter().zip(self.dff_domains()).enumerate() {
            push(ff.d, to, CellRef::Dff(i));
        }
        for (i, (m, &to)) in self.memories().iter().zip(self.mem_domains()).enumerate() {
            for &n in m
                .addr
                .iter()
                .chain(&m.wdata)
                .chain([&m.we, &m.re, &m.clear])
            {
                push(n, to, CellRef::Memory(i));
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn isolation_kind_round_trips() {
        for k in [IsolationKind::Clamp0, IsolationKind::Clamp1] {
            assert_eq!(IsolationKind::parse(k.label()), Some(k));
            assert_eq!(k.to_string(), k.label());
        }
        assert_eq!(IsolationKind::parse("clampX"), None);
        assert!(!IsolationKind::Clamp0.clamp_value());
        assert!(IsolationKind::Clamp1.clamp_value());
    }

    #[test]
    fn single_domain_netlist_has_no_crossings() {
        let mut b = NetlistBuilder::new("flat");
        let a = b.input("a", 4);
        let r = b.register("r", 4);
        let s = b.add(&a, &r.q());
        b.connect_register(&r, &s.sum);
        b.output("y", &r.q());
        let n = b.finish().unwrap();
        assert!(n.domain_crossings().is_empty());
        assert!(!n.has_power_intent());
    }

    #[test]
    fn crossing_edges_span_distinct_domains() {
        let mut b = NetlistBuilder::new("dual");
        let a = b.input("a", 1);
        b.domain("unit");
        let inv = b.not_word(&a);
        b.domain("core");
        let back = b.not_word(&inv);
        b.output("y", &back);
        let n = b.finish().unwrap();
        let edges = n.domain_crossings();
        assert_eq!(edges.len(), 1);
        let e = edges[0];
        assert_ne!(e.from, e.to);
        assert_eq!(n.domains()[e.from], "unit");
        assert_eq!(n.domains()[e.to], "core");
        assert!(matches!(e.sink, CellRef::Gate(_)));
    }

    #[test]
    fn crossing_graph_is_complete_and_minimal() {
        // Property: against randomly generated multi-domain netlists, the
        // crossing graph equals the brute-force enumeration of every
        // (input net, reading cell) pair whose driver domain differs from
        // the cell domain — no edge missing (complete), none extra or
        // duplicated (minimal), and never a same-domain edge.
        use crate::builder::Word;
        use psm_prng::Prng;
        let names = ["core", "u0", "u1", "u2"];
        for seed in 0..50u64 {
            let mut rng = Prng::seed_from_u64(0x9e3779b97f4a7c15 ^ seed);
            let domain_count = rng.range_usize(1..names.len() + 1);
            let mut b = NetlistBuilder::new("rand");
            let a = b.input("a", 4);
            let mut pool: Vec<NetId> = (0..4).map(|i| a.bit(i)).collect();
            let mut regs = Vec::new();
            for i in 0..rng.range_usize(4..24) {
                b.domain(names[rng.range_usize(0..domain_count)]);
                if rng.chance(0.15) {
                    let r = b.register(format!("r{i}"), 1);
                    pool.push(r.q().bit(0));
                    regs.push(r);
                    continue;
                }
                let x = *rng.pick(&pool);
                let y = *rng.pick(&pool);
                let out = match rng.range_usize(0..4) {
                    0 => b.and(x, y),
                    1 => b.or(x, y),
                    2 => b.xor(x, y),
                    _ => b.not(x),
                };
                pool.push(out);
            }
            for r in &regs {
                let d = *rng.pick(&pool);
                b.connect_register(r, &Word::from_nets(vec![d]));
            }
            b.domain("core");
            let y = *rng.pick(&pool);
            b.output("y", &Word::from_nets(vec![y]));
            let n = b.finish().unwrap();

            let map = n.net_domains();
            let mut expect = Vec::new();
            for (i, (g, &to)) in n.gates().iter().zip(n.gate_domains()).enumerate() {
                for &inp in &g.inputs {
                    if let Some(from) = map[inp.index()] {
                        if from != to {
                            expect.push(CrossingEdge {
                                net: inp,
                                from,
                                to,
                                sink: CellRef::Gate(i),
                            });
                        }
                    }
                }
            }
            for (i, (ff, &to)) in n.dffs().iter().zip(n.dff_domains()).enumerate() {
                if let Some(from) = map[ff.d.index()] {
                    if from != to {
                        expect.push(CrossingEdge {
                            net: ff.d,
                            from,
                            to,
                            sink: CellRef::Dff(i),
                        });
                    }
                }
            }
            let edges = n.domain_crossings();
            assert_eq!(edges, expect, "seed {seed}");
            assert!(edges.iter().all(|e| e.from != e.to), "seed {seed}");
            if domain_count == 1 {
                assert!(edges.is_empty(), "seed {seed}");
            }
        }
    }

    #[test]
    fn input_ports_and_constants_have_no_domain() {
        let mut b = NetlistBuilder::new("io");
        let a = b.input("a", 1);
        b.domain("unit");
        let x = b.not_word(&a);
        b.output("y", &x);
        let n = b.finish().unwrap();
        let map = n.net_domains();
        assert_eq!(map[Netlist::CONST0.index()], None);
        assert_eq!(map[Netlist::CONST1.index()], None);
        assert_eq!(map[a.bit(0).index()], None);
        assert_eq!(map[x.bit(0).index()], Some(1));
        // A PI read inside a domain is not a crossing.
        assert!(n.domain_crossings().is_empty());
    }
}
