//! Word-level netlist construction ("synthesis").
//!
//! [`NetlistBuilder`] plays the role Synopsys DesignCompiler plays in the
//! paper's flow: it lowers word-level RTL operations — registers, adders,
//! multipliers, comparators, decoders, mux trees and ROM lookups — to the
//! primitive cell library of [`GateKind`]. The output is a flattened,
//! validated [`Netlist`] ready for levelized simulation and gate-level power
//! estimation.

use crate::crossing::IsolationKind;
use crate::gate::{Gate, GateKind, NetId};
use crate::levelize::levelize;
use crate::netlist::{Dff, MemoryMacro, Netlist};
use crate::RtlError;
use psm_trace::{Bits, Direction};

/// A bundle of single-bit nets, least-significant bit first.
///
/// `Word` is the value type of the builder's RTL layer: every operation
/// consumes and produces words. Cloning is cheap (a `Vec<NetId>` copy) and
/// has no structural effect on the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    nets: Vec<NetId>,
}

impl Word {
    /// Wraps raw nets as a word (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn from_nets(nets: Vec<NetId>) -> Self {
        assert!(!nets.is_empty(), "zero-width words are not representable");
        Word { nets }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// The underlying nets, LSB first.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Net of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> NetId {
        self.nets[i]
    }

    /// The sub-word `[lo, lo + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the word or `width` is zero.
    pub fn slice(&self, lo: usize, width: usize) -> Word {
        assert!(width > 0, "zero-width slice");
        assert!(lo + width <= self.nets.len(), "slice out of range");
        Word {
            nets: self.nets[lo..lo + width].to_vec(),
        }
    }

    /// Concatenates `high` above `self` (self keeps the low bits).
    pub fn concat(&self, high: &Word) -> Word {
        let mut nets = self.nets.clone();
        nets.extend_from_slice(&high.nets);
        Word { nets }
    }

    /// Rotated left by `n` bit positions (free rewiring, no gates).
    pub fn rotate_left(&self, n: usize) -> Word {
        let w = self.width();
        let n = n % w;
        // Bit i of the result is bit (i - n) mod w of the input.
        let nets = (0..w).map(|i| self.nets[(i + w - n) % w]).collect();
        Word { nets }
    }

    /// Reversed bit order (free rewiring).
    pub fn reversed(&self) -> Word {
        Word {
            nets: self.nets.iter().rev().copied().collect(),
        }
    }
}

/// A register (bank of flip-flops) created by
/// [`NetlistBuilder::register`]; its next-value must be connected with
/// [`NetlistBuilder::connect_register`] before [`NetlistBuilder::finish`].
#[derive(Debug, Clone)]
pub struct Register {
    pub(crate) index: usize,
    q: Word,
}

impl Register {
    /// The register's output word (flip-flop `q` pins).
    pub fn q(&self) -> Word {
        self.q.clone()
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.q.width()
    }
}

/// The outputs of a ripple-carry addition: sum word plus final carry.
#[derive(Debug, Clone)]
pub struct AddResult {
    /// Sum, same width as the operands.
    pub sum: Word,
    /// Carry out of the top bit.
    pub carry: NetId,
}

struct RegisterSlot {
    name: String,
    dff_start: usize,
    width: usize,
    connected: bool,
}

/// Word-level netlist builder; see the module docs above for its role.
///
/// # Examples
///
/// A 2-bit counter:
///
/// ```
/// use psm_rtl::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("counter");
/// let count = b.register("count", 2);
/// let one = b.const_word(1, 2);
/// let next = b.add(&count.q(), &one);
/// b.connect_register(&count, &next.sum);
/// b.output("q", &count.q());
/// let netlist = b.finish()?;
/// assert_eq!(netlist.stats().memory_elements, 2);
/// # Ok::<(), psm_rtl::RtlError>(())
/// ```
pub struct NetlistBuilder {
    name: String,
    next_net: usize,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    memories: Vec<MemoryMacro>,
    registers: Vec<RegisterSlot>,
    ports: Vec<(String, Direction, Vec<NetId>)>,
    domains: Vec<String>,
    current_domain: usize,
    gate_domains: Vec<usize>,
    dff_domains: Vec<usize>,
    mem_domains: Vec<usize>,
    isolation_marks: Vec<(usize, IsolationKind)>,
}

impl NetlistBuilder {
    /// Starts a new design.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            next_net: 2, // nets 0 and 1 are the constants
            gates: Vec::new(),
            dffs: Vec::new(),
            memories: Vec::new(),
            registers: Vec::new(),
            ports: Vec::new(),
            domains: vec!["core".to_owned()],
            current_domain: 0,
            gate_domains: Vec::new(),
            dff_domains: Vec::new(),
            mem_domains: Vec::new(),
            isolation_marks: Vec::new(),
        }
    }

    /// Switches the *current power domain*: every cell created afterwards is
    /// tagged with it, and the simulator reports each domain's switching
    /// activity separately. Returns the domain index (creating the name on
    /// first use); pass `"core"` to return to the default domain.
    ///
    /// Domains are the substrate of the hierarchical-PSM extension: one
    /// power trace (and one PSM set) per subcomponent.
    pub fn domain(&mut self, name: &str) -> usize {
        let idx = match self.domains.iter().position(|d| d == name) {
            Some(i) => i,
            None => {
                self.domains.push(name.to_owned());
                self.domains.len() - 1
            }
        };
        self.current_domain = idx;
        idx
    }

    fn fresh(&mut self) -> NetId {
        let id = NetId(self.next_net);
        self.next_net += 1;
        id
    }

    fn emit(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let output = self.fresh();
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        self.gate_domains.push(self.current_domain);
        output
    }

    // ------------------------------------------------------------------
    // Ports and constants
    // ------------------------------------------------------------------

    /// Declares a primary input of the given width and returns its word.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Word {
        assert!(width > 0, "zero-width port");
        let nets: Vec<NetId> = (0..width).map(|_| self.fresh()).collect();
        self.ports
            .push((name.into(), Direction::Input, nets.clone()));
        Word { nets }
    }

    /// Declares a primary output driven by `word`.
    pub fn output(&mut self, name: impl Into<String>, word: &Word) {
        self.ports
            .push((name.into(), Direction::Output, word.nets.clone()));
    }

    /// A constant word from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn const_word(&mut self, value: u64, width: usize) -> Word {
        self.const_bits(&Bits::from_u64(value, width))
    }

    /// A constant word from an arbitrary-width [`Bits`] value.
    pub fn const_bits(&mut self, value: &Bits) -> Word {
        let nets = (0..value.width())
            .map(|i| {
                if value.bit(i) {
                    Netlist::CONST1
                } else {
                    Netlist::CONST0
                }
            })
            .collect();
        Word { nets }
    }

    /// The constant-zero single net.
    pub fn const0(&self) -> NetId {
        Netlist::CONST0
    }

    /// The constant-one single net.
    pub fn const1(&self) -> NetId {
        Netlist::CONST1
    }

    // ------------------------------------------------------------------
    // Registers
    // ------------------------------------------------------------------

    /// Creates a register (bank of DFFs) resetting to all-zeros.
    pub fn register(&mut self, name: impl Into<String>, width: usize) -> Register {
        self.register_init(name, &Bits::zero(width))
    }

    /// Creates a register resetting to `init`.
    pub fn register_init(&mut self, name: impl Into<String>, init: &Bits) -> Register {
        let dff_start = self.dffs.len();
        let mut qs = Vec::with_capacity(init.width());
        for i in 0..init.width() {
            let q = self.fresh();
            // `d` temporarily points at `q` (hold); connect_register overwrites.
            self.dffs.push(Dff {
                d: q,
                q,
                init: init.bit(i),
            });
            self.dff_domains.push(self.current_domain);
            qs.push(q);
        }
        self.registers.push(RegisterSlot {
            name: name.into(),
            dff_start,
            width: init.width(),
            connected: false,
        });
        Register {
            index: self.registers.len() - 1,
            q: Word { nets: qs },
        }
    }

    /// Connects the next-value of `reg`. Calling it again overwrites the
    /// previous connection.
    ///
    /// # Panics
    ///
    /// Panics if `next` does not match the register's width or `reg` came
    /// from a different builder.
    pub fn connect_register(&mut self, reg: &Register, next: &Word) {
        let slot = &mut self.registers[reg.index];
        assert_eq!(
            slot.width,
            next.width(),
            "register `{}` is {} bit(s), next-value is {}",
            slot.name,
            slot.width,
            next.width()
        );
        for i in 0..slot.width {
            self.dffs[slot.dff_start + i].d = next.bit(i);
        }
        slot.connected = true;
    }

    /// Convenience: a register that holds its value unless `enable` is high,
    /// in which case it loads `next`.
    pub fn connect_register_en(&mut self, reg: &Register, enable: NetId, next: &Word) {
        let held = reg.q();
        let loaded = self.mux_word(enable, &held, next);
        self.connect_register(reg, &loaded);
    }

    // ------------------------------------------------------------------
    // Bit-level gates
    // ------------------------------------------------------------------

    /// `!a`
    pub fn not(&mut self, a: NetId) -> NetId {
        self.emit(GateKind::Not, vec![a])
    }

    /// `a & b`
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(GateKind::And2, vec![a, b])
    }

    /// `a | b`
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(GateKind::Or2, vec![a, b])
    }

    /// `a ^ b`
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(GateKind::Xor2, vec![a, b])
    }

    /// `!(a & b)`
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(GateKind::Nand2, vec![a, b])
    }

    /// `!(a | b)`
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(GateKind::Nor2, vec![a, b])
    }

    /// `sel ? b : a`
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.emit(GateKind::Mux2, vec![sel, a, b])
    }

    /// Instantiates an isolation cell over the boundary net `data`,
    /// controlled by `ctrl`, and marks it with the given clamp polarity.
    ///
    /// `Clamp0` lowers to `AND2(data, ctrl)` with `ctrl` as an active-low
    /// isolate (drive `ctrl` low to park the boundary at 0); `Clamp1`
    /// lowers to `OR2(data, ctrl)` with `ctrl` as an active-high isolate.
    /// The cell is created in the *current* domain, which should be the
    /// still-on side of the crossing.
    pub fn isolation_cell(&mut self, kind: IsolationKind, data: NetId, ctrl: NetId) -> NetId {
        let gate_kind = match kind {
            IsolationKind::Clamp0 => GateKind::And2,
            IsolationKind::Clamp1 => GateKind::Or2,
        };
        let out = self.emit(gate_kind, vec![data, ctrl]);
        self.isolation_marks.push((self.gates.len() - 1, kind));
        out
    }

    // ------------------------------------------------------------------
    // Word-level logic
    // ------------------------------------------------------------------

    /// Bit-wise NOT of a word.
    pub fn not_word(&mut self, a: &Word) -> Word {
        let nets = a.nets.clone();
        Word {
            nets: nets.into_iter().map(|n| self.not(n)).collect(),
        }
    }

    /// Bit-wise AND of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch (as do all two-operand word ops).
    pub fn and_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip(a, b, GateKind::And2)
    }

    /// Bit-wise OR of two equal-width words.
    pub fn or_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip(a, b, GateKind::Or2)
    }

    /// Bit-wise XOR of two equal-width words.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip(a, b, GateKind::Xor2)
    }

    fn zip(&mut self, a: &Word, b: &Word, kind: GateKind) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch in {kind:?}");
        let pairs: Vec<(NetId, NetId)> =
            a.nets.iter().copied().zip(b.nets.iter().copied()).collect();
        Word {
            nets: pairs
                .into_iter()
                .map(|(x, y)| self.emit(kind.clone(), vec![x, y]))
                .collect(),
        }
    }

    /// Word-wide 2:1 mux: `sel ? b : a`.
    pub fn mux_word(&mut self, sel: NetId, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch in mux");
        let pairs: Vec<(NetId, NetId)> =
            a.nets.iter().copied().zip(b.nets.iter().copied()).collect();
        Word {
            nets: pairs
                .into_iter()
                .map(|(x, y)| self.mux(sel, x, y))
                .collect(),
        }
    }

    /// AND-reduction of all bits.
    pub fn reduce_and(&mut self, a: &Word) -> NetId {
        self.reduce(a, GateKind::And2)
    }

    /// OR-reduction of all bits.
    pub fn reduce_or(&mut self, a: &Word) -> NetId {
        self.reduce(a, GateKind::Or2)
    }

    /// XOR-reduction (parity) of all bits.
    pub fn reduce_xor(&mut self, a: &Word) -> NetId {
        self.reduce(a, GateKind::Xor2)
    }

    fn reduce(&mut self, a: &Word, kind: GateKind) -> NetId {
        // Balanced tree for shallow logic depth.
        let mut layer = a.nets.clone();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.emit(kind.clone(), vec![pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Full adder over three bits, returning `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let t1 = self.and(axb, cin);
        let t2 = self.and(a, b);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    /// Ripple-carry addition of two equal-width words.
    pub fn add(&mut self, a: &Word, b: &Word) -> AddResult {
        self.add_with_carry(a, b, Netlist::CONST0)
    }

    /// Ripple-carry addition with an explicit carry-in.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_with_carry(&mut self, a: &Word, b: &Word, cin: NetId) -> AddResult {
        assert_eq!(a.width(), b.width(), "word width mismatch in add");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let (s, c) = self.full_adder(a.bit(i), b.bit(i), carry);
            sum.push(s);
            carry = c;
        }
        AddResult {
            sum: Word { nets: sum },
            carry,
        }
    }

    /// Two's-complement subtraction `a - b`; `carry` is the *not-borrow*.
    pub fn sub(&mut self, a: &Word, b: &Word) -> AddResult {
        let nb = self.not_word(b);
        self.add_with_carry(a, &nb, Netlist::CONST1)
    }

    /// Increment by one.
    pub fn inc(&mut self, a: &Word) -> AddResult {
        let zero = self.const_word(0, a.width());
        self.add_with_carry(a, &zero, Netlist::CONST1)
    }

    /// Unsigned array multiplication; the product has width
    /// `a.width() + b.width()`.
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        let out_w = a.width() + b.width();
        let zero = self.const_word(0, out_w);
        let mut acc = zero;
        for i in 0..b.width() {
            // Partial product: (a & b[i]) << i, zero-extended to out_w.
            let mut pp_nets = vec![Netlist::CONST0; out_w];
            for j in 0..a.width() {
                let g = self.and(a.bit(j), b.bit(i));
                pp_nets[i + j] = g;
            }
            let pp = Word { nets: pp_nets };
            acc = self.add(&acc, &pp).sum;
        }
        acc
    }

    // ------------------------------------------------------------------
    // Comparison
    // ------------------------------------------------------------------

    /// Equality of two equal-width words.
    pub fn eq(&mut self, a: &Word, b: &Word) -> NetId {
        let x = self.xor_word(a, b);
        let any = self.reduce_or(&x);
        self.not(any)
    }

    /// Equality against a constant.
    pub fn eq_const(&mut self, a: &Word, value: u64) -> NetId {
        let c = self.const_word(value, a.width());
        self.eq(a, &c)
    }

    /// Unsigned `a < b` via the subtractor's borrow.
    pub fn lt(&mut self, a: &Word, b: &Word) -> NetId {
        let r = self.sub(a, b);
        self.not(r.carry)
    }

    // ------------------------------------------------------------------
    // Structured blocks
    // ------------------------------------------------------------------

    /// Full one-hot decoder: output `i` is high iff `addr == i`.
    pub fn decoder(&mut self, addr: &Word) -> Vec<NetId> {
        let n = addr.width();
        // Precompute complemented address bits once.
        let inv: Vec<NetId> = addr.nets.clone().into_iter().map(|b| self.not(b)).collect();
        let mut outs = Vec::with_capacity(1 << n);
        for code in 0..(1usize << n) {
            let lits = Word {
                nets: (0..n)
                    .map(|b| {
                        if code >> b & 1 == 1 {
                            addr.bit(b)
                        } else {
                            inv[b]
                        }
                    })
                    .collect(),
            };
            outs.push(self.reduce_and(&lits));
        }
        outs
    }

    /// Selects `options[sel]` through a balanced mux tree.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty, the options differ in width, or
    /// `options.len()` exceeds `2^sel.width()`.
    pub fn mux_tree(&mut self, sel: &Word, options: &[Word]) -> Word {
        assert!(!options.is_empty(), "mux tree needs at least one option");
        let w = options[0].width();
        assert!(
            options.iter().all(|o| o.width() == w),
            "mux tree options must share a width"
        );
        assert!(
            options.len() <= 1usize << sel.width(),
            "selector too narrow for {} options",
            options.len()
        );
        let mut layer: Vec<Word> = options.to_vec();
        for level in 0..sel.width() {
            if layer.len() == 1 {
                break;
            }
            let s = sel.bit(level);
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut i = 0;
            while i < layer.len() {
                if i + 1 < layer.len() {
                    let a = layer[i].clone();
                    let b = layer[i + 1].clone();
                    next.push(self.mux_word(s, &a, &b));
                } else {
                    next.push(layer[i].clone());
                }
                i += 2;
            }
            layer = next;
        }
        layer.remove(0)
    }

    /// An 8-bit-in / 8-bit-out ROM lookup (e.g. a cipher S-box), lowered to
    /// eight 8-input LUT macro cells.
    ///
    /// # Panics
    ///
    /// Panics unless `addr` is 8 bits wide.
    pub fn sbox8(&mut self, addr: &Word, table: &[u8; 256]) -> Word {
        assert_eq!(addr.width(), 8, "sbox8 needs an 8-bit address");
        let mut outs = Vec::with_capacity(8);
        for bit in 0..8 {
            let mut packed = vec![0u64; 4];
            for (i, &e) in table.iter().enumerate() {
                if e >> bit & 1 == 1 {
                    packed[i / 64] |= 1 << (i % 64);
                }
            }
            outs.push(self.emit(GateKind::Lut { table: packed }, addr.nets.clone()));
        }
        Word { nets: outs }
    }

    /// A general ROM: `contents[addr]` with entries of `out_width` bits,
    /// lowered to `out_width` LUT macro cells over the address.
    ///
    /// # Panics
    ///
    /// Panics if `contents.len() != 2^addr.width()` or `out_width` is zero
    /// or wider than 64.
    pub fn rom(&mut self, addr: &Word, contents: &[u64], out_width: usize) -> Word {
        assert!(
            out_width > 0 && out_width <= 64,
            "rom entries are 1..=64 bits"
        );
        assert_eq!(
            contents.len(),
            1usize << addr.width(),
            "rom needs 2^addr_width entries"
        );
        let words = contents.len().div_ceil(64);
        let mut outs = Vec::with_capacity(out_width);
        for bit in 0..out_width {
            let mut packed = vec![0u64; words];
            for (i, &e) in contents.iter().enumerate() {
                if e >> bit & 1 == 1 {
                    packed[i / 64] |= 1 << (i % 64);
                }
            }
            outs.push(self.emit(GateKind::Lut { table: packed }, addr.nets.clone()));
        }
        Word { nets: outs }
    }

    /// Logical shift left by a constant amount (free rewiring plus constant
    /// zero fill); the width is preserved.
    pub fn shl_const(&mut self, a: &Word, n: usize) -> Word {
        let w = a.width();
        let nets = (0..w)
            .map(|i| if i < n { Netlist::CONST0 } else { a.bit(i - n) })
            .collect();
        Word { nets }
    }

    /// Logical shift right by a constant amount.
    pub fn shr_const(&mut self, a: &Word, n: usize) -> Word {
        let w = a.width();
        let nets = (0..w)
            .map(|i| {
                if i + n < w {
                    a.bit(i + n)
                } else {
                    Netlist::CONST0
                }
            })
            .collect();
        Word { nets }
    }

    /// Zero-extends a word to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn zero_extend(&mut self, a: &Word, width: usize) -> Word {
        assert!(width >= a.width(), "cannot zero-extend to a smaller width");
        let mut nets = a.nets.clone();
        nets.resize(width, Netlist::CONST0);
        Word { nets }
    }

    /// Instantiates a synchronous single-port SRAM macro (see
    /// [`MemoryMacro`]) and returns its registered read-data word.
    ///
    /// Depth is `2^addr.width()`; a read returns the word at the
    /// *pre-write* address contents (read-before-write). `clear`
    /// synchronously zeroes the read register.
    ///
    /// # Panics
    ///
    /// Panics when `wdata` is wider than 64 bits (macro storage uses one
    /// word per row) or `addr` is wider than 24 bits.
    pub fn memory(
        &mut self,
        addr: &Word,
        wdata: &Word,
        we: NetId,
        re: NetId,
        clear: NetId,
    ) -> Word {
        assert!(
            wdata.width() <= 64,
            "memory macros store at most 64-bit words"
        );
        assert!(
            addr.width() <= 24,
            "memory macros support at most 2^24 words"
        );
        let rdata: Vec<NetId> = (0..wdata.width()).map(|_| self.fresh()).collect();
        self.mem_domains.push(self.current_domain);
        self.memories.push(MemoryMacro {
            addr: addr.nets().to_vec(),
            wdata: wdata.nets().to_vec(),
            we,
            re,
            clear,
            rdata: rdata.clone(),
        });
        Word::from_nets(rdata)
    }

    // ------------------------------------------------------------------
    // Finalisation
    // ------------------------------------------------------------------

    /// Number of gates emitted so far (progress/diagnostics).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Validates and seals the design.
    ///
    /// # Errors
    ///
    /// * [`RtlError::UnconnectedRegister`] if a register never received a
    ///   next-value;
    /// * [`RtlError::DuplicatePort`] on port name collisions;
    /// * [`RtlError::MultipleDrivers`] / [`RtlError::UndrivenNet`] on
    ///   structural violations;
    /// * [`RtlError::CombinationalLoop`] if the combinational logic cycles.
    pub fn finish(self) -> Result<Netlist, RtlError> {
        for r in &self.registers {
            if !r.connected {
                return Err(RtlError::UnconnectedRegister(r.name.clone()));
            }
        }
        let mut netlist = Netlist::from_parts(
            self.name,
            self.next_net,
            self.gates,
            self.dffs,
            self.memories,
            Vec::new(),
            self.domains,
            self.gate_domains,
            self.dff_domains,
            self.mem_domains,
        );
        for (gate, kind) in self.isolation_marks {
            netlist.set_gate_isolation(gate, kind);
        }
        for (name, dir, nets) in self.ports {
            netlist.add_port(name, dir, nets)?;
        }
        netlist.validate()?;
        levelize(&netlist)?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use psm_trace::Bits;

    /// Builds a combinational design, applies inputs, returns one output.
    fn run_comb(
        build: impl FnOnce(&mut NetlistBuilder),
        inputs: &[(&str, u64, usize)],
        out: &str,
    ) -> u64 {
        let mut b = NetlistBuilder::new("dut");
        build(&mut b);
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for (name, v, w) in inputs {
            sim.set_input(name, &Bits::from_u64(*v, *w)).unwrap();
        }
        sim.step();
        sim.output(out).unwrap().to_u64().unwrap()
    }

    #[test]
    fn adder_is_correct() {
        for (a, bv) in [(0u64, 0u64), (1, 1), (7, 9), (200, 55), (255, 255)] {
            let sum = run_comb(
                |b| {
                    let x = b.input("a", 8);
                    let y = b.input("b", 8);
                    let r = b.add(&x, &y);
                    b.output("s", &r.sum);
                    let carry = Word::from_nets(vec![r.carry]);
                    b.output("c", &carry);
                },
                &[("a", a, 8), ("b", bv, 8)],
                "s",
            );
            assert_eq!(sum, (a + bv) & 0xFF, "{a} + {bv}");
        }
    }

    #[test]
    fn subtractor_is_correct() {
        for (a, bv) in [(9u64, 5u64), (5, 9), (0, 0), (255, 1)] {
            let d = run_comb(
                |b| {
                    let x = b.input("a", 8);
                    let y = b.input("b", 8);
                    let r = b.sub(&x, &y);
                    b.output("d", &r.sum);
                },
                &[("a", a, 8), ("b", bv, 8)],
                "d",
            );
            assert_eq!(d, a.wrapping_sub(bv) & 0xFF, "{a} - {bv}");
        }
    }

    #[test]
    fn multiplier_is_correct() {
        for (a, bv) in [(0u64, 7u64), (3, 5), (15, 15), (12, 11)] {
            let p = run_comb(
                |b| {
                    let x = b.input("a", 4);
                    let y = b.input("b", 4);
                    let r = b.mul(&x, &y);
                    b.output("p", &r);
                },
                &[("a", a, 4), ("b", bv, 4)],
                "p",
            );
            assert_eq!(p, a * bv, "{a} * {bv}");
        }
    }

    #[test]
    fn comparators() {
        for (a, bv) in [(3u64, 3u64), (3, 4), (4, 3), (0, 15)] {
            let bits = run_comb(
                |b| {
                    let x = b.input("a", 4);
                    let y = b.input("b", 4);
                    let eq = b.eq(&x, &y);
                    let lt = b.lt(&x, &y);
                    b.output("r", &Word::from_nets(vec![eq, lt]));
                },
                &[("a", a, 4), ("b", bv, 4)],
                "r",
            );
            assert_eq!(bits & 1 == 1, a == bv, "eq {a} {bv}");
            assert_eq!(bits >> 1 & 1 == 1, a < bv, "lt {a} {bv}");
        }
    }

    #[test]
    fn reductions() {
        let r = run_comb(
            |b| {
                let x = b.input("a", 5);
                let and = b.reduce_and(&x);
                let or = b.reduce_or(&x);
                let xor = b.reduce_xor(&x);
                b.output("r", &Word::from_nets(vec![and, or, xor]));
            },
            &[("a", 0b10110, 5)],
            "r",
        );
        assert_eq!(r & 1, 0); // not all ones
        assert_eq!(r >> 1 & 1, 1); // some one
        assert_eq!(r >> 2 & 1, 1); // odd parity
    }

    #[test]
    fn decoder_is_one_hot() {
        for addr in 0u64..8 {
            let r = run_comb(
                |b| {
                    let a = b.input("a", 3);
                    let outs = b.decoder(&a);
                    b.output("d", &Word::from_nets(outs));
                },
                &[("a", addr, 3)],
                "d",
            );
            assert_eq!(r, 1 << addr, "decode {addr}");
        }
    }

    #[test]
    fn mux_tree_selects() {
        for sel in 0u64..4 {
            let r = run_comb(
                |b| {
                    let s = b.input("s", 2);
                    let opts: Vec<Word> = (0..4).map(|i| b.const_word(10 + i, 8)).collect();
                    let o = b.mux_tree(&s, &opts);
                    b.output("o", &o);
                },
                &[("s", sel, 2)],
                "o",
            );
            assert_eq!(r, 10 + sel, "select {sel}");
        }
    }

    #[test]
    fn sbox_lookup() {
        let mut table = [0u8; 256];
        for (i, e) in table.iter_mut().enumerate() {
            *e = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
        for addr in [0u64, 1, 100, 255] {
            let r = run_comb(
                |b| {
                    let a = b.input("a", 8);
                    let o = b.sbox8(&a, &table);
                    b.output("o", &o);
                },
                &[("a", addr, 8)],
                "o",
            );
            assert_eq!(r, table[addr as usize] as u64, "sbox[{addr}]");
        }
    }

    #[test]
    fn rom_lookup() {
        let contents: Vec<u64> = (0..16).map(|i| i * 3 + 1).collect();
        for addr in [0u64, 7, 15] {
            let r = run_comb(
                |b| {
                    let a = b.input("a", 4);
                    let o = b.rom(&a, &contents, 8);
                    b.output("o", &o);
                },
                &[("a", addr, 4)],
                "o",
            );
            assert_eq!(r, contents[addr as usize], "rom[{addr}]");
        }
    }

    #[test]
    fn shifts_and_rotates() {
        let r = run_comb(
            |b| {
                let a = b.input("a", 8);
                let l = b.shl_const(&a, 2);
                let rr = b.shr_const(&a, 3);
                let rot = a.rotate_left(1);
                let cat = l.concat(&rr).concat(&rot);
                b.output("o", &cat);
            },
            &[("a", 0b1011_0110, 8)],
            "o",
        );
        let l = r & 0xFF;
        let sh = (r >> 8) & 0xFF;
        let rot = (r >> 16) & 0xFF;
        assert_eq!(l, (0b1011_0110u64 << 2) & 0xFF);
        assert_eq!(sh, 0b1011_0110u64 >> 3);
        assert_eq!(rot, 0b0110_1101);
    }

    #[test]
    fn register_holds_and_updates() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.input("d", 4);
        let en = b.input("en", 1);
        let r = b.register("r", 4);
        b.connect_register_en(&r, en.bit(0), &d);
        b.output("q", &r.q());
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();

        sim.set_input("d", &Bits::from_u64(9, 4)).unwrap();
        sim.set_input("en", &Bits::from_u64(1, 1)).unwrap();
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), 0); // pre-edge value visible during the cycle
        sim.set_input("en", &Bits::from_u64(0, 1)).unwrap();
        sim.set_input("d", &Bits::from_u64(5, 4)).unwrap();
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), 9); // captured 9, ignored 5
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), 9); // held
    }

    #[test]
    fn unconnected_register_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let _r = b.register("r", 2);
        assert!(matches!(b.finish(), Err(RtlError::UnconnectedRegister(_))));
    }

    #[test]
    fn duplicate_port_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a", 1);
        b.output("a", &a);
        assert!(matches!(b.finish(), Err(RtlError::DuplicatePort(_))));
    }

    #[test]
    fn register_init_value() {
        let mut b = NetlistBuilder::new("init");
        let r = b.register_init("r", &Bits::from_u64(0b101, 3));
        let q = r.q();
        b.connect_register(&r, &q);
        b.output("q", &r.q());
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64().unwrap(), 0b101);
    }

    #[test]
    fn word_slice_concat_reverse() {
        let w = Word::from_nets((2..10).map(NetId).collect());
        assert_eq!(w.width(), 8);
        assert_eq!(w.slice(2, 3).nets(), &[NetId(4), NetId(5), NetId(6)]);
        assert_eq!(w.reversed().bit(0), NetId(9));
        let c = w.slice(0, 1).concat(&w.slice(7, 1));
        assert_eq!(c.nets(), &[NetId(2), NetId(9)]);
        assert_eq!(w.rotate_left(0), w);
        assert_eq!(w.rotate_left(8), w);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "selector too narrow")]
    fn mux_tree_rejects_narrow_selector() {
        let mut b = NetlistBuilder::new("bad");
        let sel = b.input("s", 1);
        let opts: Vec<Word> = (0..3).map(|i| b.const_word(i, 4)).collect();
        let _ = b.mux_tree(&sel, &opts);
    }

    #[test]
    #[should_panic(expected = "share a width")]
    fn mux_tree_rejects_mixed_widths() {
        let mut b = NetlistBuilder::new("bad");
        let sel = b.input("s", 1);
        let o1 = b.const_word(0, 4);
        let o2 = b.const_word(0, 5);
        let _ = b.mux_tree(&sel, &[o1, o2]);
    }

    #[test]
    #[should_panic(expected = "2^addr_width")]
    fn rom_rejects_wrong_depth() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a", 3);
        let _ = b.rom(&a, &[0, 1, 2], 8);
    }

    #[test]
    fn domain_switch_round_trips() {
        let mut b = NetlistBuilder::new("domains");
        assert_eq!(b.domain("unit_a"), 1);
        assert_eq!(b.domain("core"), 0);
        assert_eq!(b.domain("unit_a"), 1, "existing names are reused");
        let a = b.input("x", 1);
        let y = b.not_word(&a);
        b.output("y", &y);
        let n = b.finish().unwrap();
        assert_eq!(n.domains().len(), 2);
        // the inverter was created in unit_a? No: domain("unit_a") then
        // domain("core") then domain("unit_a") — last switch wins.
        assert_eq!(n.gate_domains(), &[1]);
    }

    #[test]
    fn zero_extend_and_slice() {
        let mut b = NetlistBuilder::new("zx");
        let a = b.input("a", 3);
        let wide = b.zero_extend(&a, 8);
        assert_eq!(wide.width(), 8);
        assert_eq!(wide.bit(7), Netlist::CONST0);
        b.output("o", &wide);
        b.finish().unwrap();
    }
}
