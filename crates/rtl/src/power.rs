//! Dynamic power estimation from switching activity.
//!
//! This module is the workspace's stand-in for Synopsys PrimeTime PX: it
//! turns per-cycle capacitance-weighted toggle counts (from [`Simulator`])
//! into a dynamic power trace following the paper's Def. 2 formula
//! `δ(t) = ½ · V²dd · f · C · α(t)`.
//!
//! [`Simulator`]: crate::Simulator

use psm_prng::Prng;

/// Switching activity of one simulated clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleActivity {
    /// Sum over toggled nets of their driver's output capacitance (fF).
    /// This is the `C · α(t)` product of the paper's power formula.
    pub switched_capacitance_ff: f64,
    /// Raw number of nets that changed value.
    pub toggled_nets: u32,
}

/// Electrical parameters of the dynamic power model.
///
/// Defaults model a generic 90 nm-class part: 1.2 V supply, 500 MHz clock,
/// a 0.2 mW static baseline and 1 % multiplicative measurement noise — the
/// noise gives reference power traces the jitter visible in the paper's
/// Fig. 3 (3.349, 3.339, 3.353 …) and exercises the mergeability t-tests
/// with realistic variance.
///
/// # Examples
///
/// ```
/// use psm_rtl::{CycleActivity, PowerModel};
///
/// let model = PowerModel::default();
/// let idle = model.cycle_power(&CycleActivity::default());
/// assert!((idle - model.baseline_mw()).abs() < 1e-12);
/// let busy = model.cycle_power(&CycleActivity {
///     switched_capacitance_ff: 10_000.0,
///     toggled_nets: 4_000,
/// });
/// assert!(busy > idle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    vdd: f64,
    freq_mhz: f64,
    baseline_mw: f64,
    noise_fraction: f64,
}

impl PowerModel {
    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or `vdd`/`freq_mhz` is zero.
    pub fn new(vdd: f64, freq_mhz: f64, baseline_mw: f64, noise_fraction: f64) -> Self {
        assert!(vdd > 0.0, "vdd must be positive");
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        assert!(baseline_mw >= 0.0, "baseline cannot be negative");
        assert!(noise_fraction >= 0.0, "noise fraction cannot be negative");
        PowerModel {
            vdd,
            freq_mhz,
            baseline_mw,
            noise_fraction,
        }
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Static baseline added to every sample (mW).
    pub fn baseline_mw(&self) -> f64 {
        self.baseline_mw
    }

    /// Relative standard deviation of the multiplicative noise.
    pub fn noise_fraction(&self) -> f64 {
        self.noise_fraction
    }

    /// Returns a copy with a different noise fraction (0.0 disables noise).
    pub fn with_noise_fraction(mut self, noise_fraction: f64) -> Self {
        assert!(noise_fraction >= 0.0, "noise fraction cannot be negative");
        self.noise_fraction = noise_fraction;
        self
    }

    /// Noise-free dynamic power of one cycle, in mW:
    /// `½ · V²dd · f · Cα + baseline`.
    pub fn cycle_power(&self, activity: &CycleActivity) -> f64 {
        // fF → F is 1e-15; MHz → Hz is 1e6; W → mW is 1e3.
        let dynamic_mw = 0.5
            * self.vdd
            * self.vdd
            * (self.freq_mhz * 1e6)
            * (activity.switched_capacitance_ff * 1e-15)
            * 1e3;
        self.baseline_mw + dynamic_mw
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new(1.2, 500.0, 0.2, 0.01)
    }
}

/// Streaming golden power estimator: applies the [`PowerModel`] to a
/// sequence of cycle activities, adding seeded Gaussian measurement noise.
///
/// Determinism: the same seed and the same activity sequence always produce
/// the same trace, so the benchmark tables are reproducible bit-for-bit.
///
/// # Examples
///
/// ```
/// use psm_rtl::{CycleActivity, PowerEstimator, PowerModel};
///
/// let mut est = PowerEstimator::new(PowerModel::default(), 42);
/// let a = CycleActivity { switched_capacitance_ff: 5_000.0, toggled_nets: 2_000 };
/// let p1 = est.next_sample(&a);
/// let p2 = est.next_sample(&a);
/// // Noise differs between samples but stays near the deterministic value.
/// assert_ne!(p1, p2);
/// let clean = PowerModel::default().cycle_power(&a);
/// assert!((p1 - clean).abs() / clean < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct PowerEstimator {
    model: PowerModel,
    rng: Prng,
    spare_normal: Option<f64>,
}

impl PowerEstimator {
    /// Creates an estimator with the given model and noise seed.
    pub fn new(model: PowerModel, seed: u64) -> Self {
        PowerEstimator {
            model,
            rng: Prng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// The underlying electrical model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Produces the next (noisy) power sample in mW for one cycle.
    pub fn next_sample(&mut self, activity: &CycleActivity) -> f64 {
        let clean = self.model.cycle_power(activity);
        if self.model.noise_fraction() == 0.0 {
            return clean;
        }
        let z = self.standard_normal();
        // Multiplicative noise, clamped so power never goes negative.
        (clean * (1.0 + self.model.noise_fraction() * z)).max(0.0)
    }

    /// Box–Muller standard normal over the workspace's own generator (the
    /// registry is unreachable offline, so no external distributions crate).
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u1: f64 = self.rng.next_f64();
            let u2: f64 = self.rng.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            return r * theta.cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_scales_linearly_with_capacitance() {
        let m = PowerModel::new(1.0, 1000.0, 0.0, 0.0);
        let p1 = m.cycle_power(&CycleActivity {
            switched_capacitance_ff: 100.0,
            toggled_nets: 0,
        });
        let p2 = m.cycle_power(&CycleActivity {
            switched_capacitance_ff: 200.0,
            toggled_nets: 0,
        });
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
        // ½ · 1² · 1 GHz · 100 fF = 50 µW = 0.05 mW.
        assert!((p1 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn baseline_floor() {
        let m = PowerModel::new(1.2, 500.0, 0.3, 0.0);
        assert_eq!(m.cycle_power(&CycleActivity::default()), 0.3);
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let a = CycleActivity {
            switched_capacitance_ff: 1234.0,
            toggled_nets: 99,
        };
        let run = |seed| {
            let mut e = PowerEstimator::new(PowerModel::default(), seed);
            (0..10).map(|_| e.next_sample(&a)).collect::<Vec<f64>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn zero_noise_is_exact() {
        let m = PowerModel::default().with_noise_fraction(0.0);
        let mut e = PowerEstimator::new(m, 1);
        let a = CycleActivity {
            switched_capacitance_ff: 777.0,
            toggled_nets: 3,
        };
        assert_eq!(e.next_sample(&a), m.cycle_power(&a));
        assert_eq!(e.next_sample(&a), m.cycle_power(&a));
    }

    #[test]
    fn noise_statistics_are_plausible() {
        let m = PowerModel::new(1.2, 500.0, 0.0, 0.05);
        let mut e = PowerEstimator::new(m, 99);
        let a = CycleActivity {
            switched_capacitance_ff: 10_000.0,
            toggled_nets: 100,
        };
        let clean = m.cycle_power(&a);
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| e.next_sample(&a)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(
            (mean - clean).abs() / clean < 0.01,
            "mean {mean} vs {clean}"
        );
        let rel_std = var.sqrt() / clean;
        assert!((rel_std - 0.05).abs() < 0.01, "rel std {rel_std}");
    }

    #[test]
    fn samples_never_negative() {
        let m = PowerModel::new(1.2, 500.0, 0.0, 5.0); // absurd noise
        let mut e = PowerEstimator::new(m, 3);
        let a = CycleActivity {
            switched_capacitance_ff: 10.0,
            toggled_nets: 1,
        };
        for _ in 0..1000 {
            assert!(e.next_sample(&a) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn rejects_zero_vdd() {
        let _ = PowerModel::new(0.0, 500.0, 0.0, 0.0);
    }
}
