//! Bit-parallel (64-lane) gate-level simulation and capture.
//!
//! The scalar [`Simulator`](crate::Simulator) settles one stimulus per run,
//! one `bool` per net per cycle. Training, however, captures *many
//! independent stimuli over the same netlist* — a workload that is
//! embarrassingly parallel at the bit level. [`BatchSimulator`] packs up to
//! 64 independent stimuli into one `u64` **lane word** per net
//! (struct-of-arrays: `values[net]` holds lane `l`'s value in bit `l`) and
//! evaluates the levelized netlist with whole-word bitwise operations, so
//! one AND instruction advances a gate for all lanes at once.
//!
//! Switching-activity accounting stays *per lane* and **bit-identical** to
//! the scalar engine: every capacitance contribution is scattered to the
//! toggling lanes in exactly the order the scalar simulator would have
//! accumulated it, so the resulting [`CycleActivity`] values — and every
//! model trained from them — are byte-for-byte the same. The equivalence is
//! pinned by `tests/batch_equivalence.rs`.
//!
//! The scalar engine remains the independent reference implementation (and
//! the substrate of the exhaustive bounded-model-checking search in
//! `psm-analyze`, which forks simulators per input assignment); the batch
//! engine is the capture hot path. See `DESIGN.md` §3 for the lane layout.

use crate::gate::{GateKind, NetId};
use crate::harness::{CaptureResult, HierarchicalCapture, Stimulus};
use crate::levelize::levelize;
use crate::netlist::{MemoryMacro, Netlist};
use crate::power::{CycleActivity, PowerEstimator, PowerModel};
use crate::sim::{PortHandle, Simulator};
use crate::RtlError;
use psm_trace::{Bits, Direction, FunctionalTrace, PowerTrace};
use std::collections::HashMap;

/// One compiled combinational cell, packed into a fixed 32 bytes so the
/// levelized tape stays cache-dense: opcode, power domain, output net,
/// three operand slots and the output capacitance. Two-input cells use
/// `a`/`b` as net indices; a mux adds `c`; a LUT reads its input list and
/// table from the shared pools (`a` = input-pool offset, `b` = input
/// count, `c` = table-pool offset), keeping the tape free of pointers.
struct Op {
    cap: f64,
    out: u32,
    a: u32,
    b: u32,
    c: u32,
    kind: u8,
    dom: u16,
}

/// Opcodes below 16 ARE the cell's 4-bit truth table over `(a, b)` —
/// bit index `a | b << 1` — so every one/two-input cell evaluates through
/// one branchless mask-expansion path and the only data-dependent branch
/// in the hot loop is the rare "is this a mux or LUT" test.
const OP_TT_BUF: u8 = 0b1010;
const OP_TT_NOT: u8 = 0b0101;
const OP_TT_AND2: u8 = 0b1000;
const OP_TT_OR2: u8 = 0b1110;
const OP_TT_XOR2: u8 = 0b0110;
const OP_TT_NAND2: u8 = 0b0111;
const OP_TT_NOR2: u8 = 0b0001;
/// `out = sel ? b : a`, lane-wise; `a`=sel, `b`=low input, `c`=high input.
const OP_MUX2: u8 = 16;
/// Per-lane table lookup (ROMs, S-boxes) out of the LUT pools.
const OP_LUT: u8 = 17;

/// A primary-input net staged for the next step: the new value and the
/// lanes that staged it, in the scalar engine's staging order.
struct StagedNet {
    net: u32,
    value: u64,
    care: u64,
}

/// Cycle-based gate-level simulator over up to 64 independent stimulus
/// lanes.
///
/// Each lane is a fully independent simulation of the same netlist: lane
/// `l` of every net word carries that lane's value, flip-flop state,
/// memory contents and activity accounting. [`step`](BatchSimulator::step)
/// advances all lanes by one clock cycle using whole-word bitwise
/// evaluation of the levelized logic; the per-lane [`CycleActivity`]
/// results are bit-identical to what the scalar
/// [`Simulator`](crate::Simulator) produces for each stimulus on its own.
///
/// # Examples
///
/// Two lanes of a 4-bit accumulator, stepped together:
///
/// ```
/// use psm_rtl::{BatchSimulator, NetlistBuilder};
/// use psm_trace::Bits;
///
/// let mut b = NetlistBuilder::new("acc4");
/// let d = b.input("d", 4);
/// let acc = b.register("acc", 4);
/// let sum = b.add(&acc.q(), &d);
/// b.connect_register(&acc, &sum.sum);
/// b.output("q", &acc.q());
/// let netlist = b.finish()?;
///
/// let mut sim = BatchSimulator::new(&netlist, 2)?;
/// let d = sim.port_handle("d")?;
/// for _ in 0..3 {
///     sim.set_input(0, d, &Bits::from_u64(1, 4))?; // lane 0 adds 1
///     sim.set_input(1, d, &Bits::from_u64(2, 4))?; // lane 1 adds 2
///     sim.step();
/// }
/// let q = sim.port_handle("q")?;
/// assert_eq!(sim.output_by_handle(0, q).to_u64()?, 2);
/// assert_eq!(sim.output_by_handle(1, q).to_u64()?, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BatchSimulator<'a> {
    netlist: &'a Netlist,
    ops: Vec<Op>,
    /// Flattened LUT input lists, referenced by [`Op::a`]/[`Op::b`].
    lut_inputs: Vec<u32>,
    /// Flattened LUT truth tables, referenced by [`Op::c`].
    lut_tables: Vec<u64>,
    lanes: usize,
    /// Mask with one bit set per active lane.
    active: u64,
    /// Lane word per net (struct-of-arrays layout).
    values: Vec<u64>,
    /// Lane word per flip-flop: next `q`, sampled at the previous edge.
    pending_q: Vec<u64>,
    /// Per-macro, lane-major storage: `mem_base[mi] + lane * words + addr`.
    mem_contents: Vec<u64>,
    mem_base: Vec<usize>,
    /// Next read-register value, `[mi * 64 + lane]`.
    mem_pending: Vec<u64>,
    /// Previous-cycle bus values, `[mi * 64 + lane]`.
    mem_prev_addr: Vec<usize>,
    mem_prev_wdata: Vec<u64>,
    staged: Vec<StagedNet>,
    /// Per net: 1 + index into `staged`, or 0 when not staged this cycle.
    staged_slot: Vec<u32>,
    /// Per-lane switched capacitance of the last step.
    caps: Vec<f64>,
    /// Per-lane toggle count of the last step.
    toggles: Vec<u32>,
    /// Per-domain, per-lane switched capacitance: `[dom * 64 + lane]`.
    /// Empty when domain tracking is disabled (total-only captures skip
    /// the extra accumulate per toggling lane).
    dom_caps: Vec<f64>,
    /// Step-scoped toggle compaction buffer, one slot per op. The eval
    /// loop appends `(cap, toggle mask, domain)` branch-free; the scatter
    /// pass then walks only the compacted prefix, in op order.
    toggled: Vec<(f64, u64, u16)>,
    /// Clock-tree capacitance added to every lane every cycle, computed
    /// with the scalar engine's exact expression.
    clock_cap_total: f64,
    /// Per-domain clock-tree base, accumulated in the scalar engine's
    /// exact per-cell order.
    clock_dom_base: Vec<f64>,
    activities: Vec<CycleActivity>,
    port_index: HashMap<String, usize>,
    cycle: u64,
}

impl<'a> BatchSimulator<'a> {
    /// The lane capacity of one batch: the width of the `u64` lane word.
    pub const MAX_LANES: usize = 64;

    /// Prepares a batch simulator for `lanes` independent stimuli
    /// (levelizing and compiling the netlist's logic).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalLoop`] on cyclic combinational
    /// logic.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero or exceeds
    /// [`MAX_LANES`](Self::MAX_LANES).
    pub fn new(netlist: &'a Netlist, lanes: usize) -> Result<Self, RtlError> {
        Self::with_domain_tracking(netlist, lanes, true)
    }

    /// Like [`new`](Self::new), but optionally without per-domain
    /// accounting: total-only capture paths skip one accumulate per
    /// toggling lane per cell. With tracking off,
    /// [`domain_activity`](Self::domain_activity) panics.
    pub(crate) fn with_domain_tracking(
        netlist: &'a Netlist,
        lanes: usize,
        track_domains: bool,
    ) -> Result<Self, RtlError> {
        assert!(
            (1..=Self::MAX_LANES).contains(&lanes),
            "lanes must be in 1..={}, got {lanes}",
            Self::MAX_LANES
        );
        let order = levelize(netlist)?;
        let gates = netlist.gates();
        let gate_domains = netlist.gate_domains();
        let mut lut_inputs: Vec<u32> = Vec::new();
        let mut lut_tables: Vec<u64> = Vec::new();
        let ops: Vec<Op> = order
            .iter()
            .map(|&gi| {
                let g = &gates[gi];
                let pin = |k: usize| g.inputs[k].index() as u32;
                let (kind, a, b, c) = match &g.kind {
                    // One-input cells repeat `a` in the `b` slot so the
                    // uniform two-load path stays in bounds; their tables
                    // ignore the second operand.
                    GateKind::Buf => (OP_TT_BUF, pin(0), pin(0), 0),
                    GateKind::Not => (OP_TT_NOT, pin(0), pin(0), 0),
                    GateKind::And2 => (OP_TT_AND2, pin(0), pin(1), 0),
                    GateKind::Or2 => (OP_TT_OR2, pin(0), pin(1), 0),
                    GateKind::Xor2 => (OP_TT_XOR2, pin(0), pin(1), 0),
                    GateKind::Nand2 => (OP_TT_NAND2, pin(0), pin(1), 0),
                    GateKind::Nor2 => (OP_TT_NOR2, pin(0), pin(1), 0),
                    GateKind::Mux2 => (OP_MUX2, pin(0), pin(1), pin(2)),
                    GateKind::Lut { table } => {
                        let in_off = lut_inputs.len() as u32;
                        lut_inputs.extend(g.inputs.iter().map(|n| n.index() as u32));
                        let tab_off = lut_tables.len() as u32;
                        lut_tables.extend_from_slice(table);
                        (OP_LUT, in_off, g.inputs.len() as u32, tab_off)
                    }
                };
                Op {
                    cap: g.kind.capacitance_ff(),
                    out: g.output.index() as u32,
                    a,
                    b,
                    c,
                    kind,
                    dom: gate_domains[gi] as u16,
                }
            })
            .collect();

        // The scalar engine's per-step clock constants, reproduced with the
        // same expressions so per-lane accounting starts from identical
        // floating-point values.
        let clock_cap_total = netlist.dffs().len() as f64 * Simulator::CLOCK_PIN_CAP_FF
            + netlist.memories().len() as f64 * MemoryMacro::CLOCK_CAP_FF;
        let mut clock_dom_base = vec![0.0f64; netlist.domains().len()];
        for &dom in netlist.dff_domains() {
            clock_dom_base[dom] += Simulator::CLOCK_PIN_CAP_FF;
        }
        for &dom in netlist.mem_domains() {
            clock_dom_base[dom] += MemoryMacro::CLOCK_CAP_FF;
        }

        let mut mem_base = Vec::with_capacity(netlist.memories().len());
        let mut mem_words = 0usize;
        for m in netlist.memories() {
            mem_base.push(mem_words);
            mem_words += m.words() * lanes;
        }

        let toggled: Vec<(f64, u64, u16)> = vec![(0.0, 0, 0); ops.len()];
        let mut sim = BatchSimulator {
            netlist,
            ops,
            toggled,
            lut_inputs,
            lut_tables,
            lanes,
            active: if lanes == Self::MAX_LANES {
                !0
            } else {
                (1u64 << lanes) - 1
            },
            values: vec![0; netlist.net_count()],
            pending_q: vec![0; netlist.dffs().len()],
            mem_contents: vec![0; mem_words],
            mem_base,
            mem_pending: vec![0; netlist.memories().len() * 64],
            mem_prev_addr: vec![0; netlist.memories().len() * 64],
            mem_prev_wdata: vec![0; netlist.memories().len() * 64],
            staged: Vec::new(),
            staged_slot: vec![0; netlist.net_count()],
            caps: vec![0.0; 64],
            toggles: vec![0; 64],
            dom_caps: if track_domains {
                vec![0.0; netlist.domains().len() * 64]
            } else {
                Vec::new()
            },
            clock_cap_total,
            clock_dom_base,
            activities: vec![CycleActivity::default(); lanes],
            port_index: netlist
                .ports()
                .iter()
                .enumerate()
                .map(|(i, p)| (p.name().to_owned(), i))
                .collect(),
            cycle: 0,
        };
        sim.reset();
        Ok(sim)
    }

    /// Number of active lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of completed cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns every lane to the post-reset state: all nets low, registers
    /// at their initial values, memories zeroed, no staged inputs.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
        self.values[Netlist::CONST1.index()] = !0;
        for (d, pending) in self.netlist.dffs().iter().zip(&mut self.pending_q) {
            let word = if d.init { !0 } else { 0 };
            *pending = word;
            self.values[d.q.index()] = word;
        }
        self.mem_contents.iter_mut().for_each(|v| *v = 0);
        self.mem_pending.iter_mut().for_each(|v| *v = 0);
        self.mem_prev_addr.iter_mut().for_each(|v| *v = 0);
        self.mem_prev_wdata.iter_mut().for_each(|v| *v = 0);
        for s in self.staged.drain(..) {
            self.staged_slot[s.net as usize] = 0;
        }
        self.cycle = 0;
    }

    /// Resolves a port name once, for hot-loop stimulus application.
    /// Handles are interchangeable with the scalar
    /// [`Simulator`](crate::Simulator)'s.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownPort`] for undeclared names.
    pub fn port_handle(&self, name: &str) -> Result<PortHandle, RtlError> {
        self.port_index
            .get(name)
            .copied()
            .map(PortHandle::from_index)
            .ok_or_else(|| RtlError::UnknownPort(name.to_owned()))
    }

    /// Iterates over input port handles in declaration order.
    pub fn input_handles(&self) -> Vec<(String, PortHandle)> {
        self.netlist
            .ports()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction() == Direction::Input)
            .map(|(i, p)| (p.name().to_owned(), PortHandle::from_index(i)))
            .collect()
    }

    /// Stages a value on an input port of one lane; it takes effect at the
    /// next [`step`](BatchSimulator::step).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::PortWidthMismatch`] when the value's width
    /// differs from the port's.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn set_input(&mut self, lane: usize, h: PortHandle, value: &Bits) -> Result<(), RtlError> {
        assert!(lane < self.lanes, "lane {lane} of {}", self.lanes);
        let port = &self.netlist.ports()[h.index()];
        if port.width() != value.width() {
            return Err(RtlError::PortWidthMismatch {
                port: port.name().to_owned(),
                expected: port.width(),
                actual: value.width(),
            });
        }
        let lane_bit = 1u64 << lane;
        for (i, &net) in port.nets().iter().enumerate() {
            let idx = net.index();
            let slot = self.staged_slot[idx];
            let entry = if slot == 0 {
                self.staged.push(StagedNet {
                    net: idx as u32,
                    value: 0,
                    care: 0,
                });
                self.staged_slot[idx] = self.staged.len() as u32;
                self.staged.last_mut().expect("just pushed")
            } else {
                &mut self.staged[slot as usize - 1]
            };
            entry.care |= lane_bit;
            if value.bit(i) {
                entry.value |= lane_bit;
            } else {
                entry.value &= !lane_bit;
            }
        }
        Ok(())
    }

    /// Scatters one capacitance contribution to every toggling lane, in
    /// lane order — the per-lane equivalent of the scalar engine's single
    /// `+=`, so each lane sees the same f64 addition sequence.
    ///
    /// Only lanes whose mask bit is set are touched (a `trailing_zeros`
    /// walk), so the cost scales with how many lanes actually toggled,
    /// not with the batch width. `dom_caps` is empty when domain tracking
    /// is off, which removes one accumulate per toggling lane.
    #[inline]
    fn scatter(
        caps: &mut [f64],
        dom_caps: &mut [f64],
        toggles: &mut [u32],
        dom: usize,
        mut mask: u64,
        cap: f64,
    ) {
        if dom_caps.is_empty() {
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                caps[l] += cap;
                toggles[l] += 1;
                mask &= mask - 1;
            }
        } else {
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                caps[l] += cap;
                dom_caps[dom * 64 + l] += cap;
                toggles[l] += 1;
                mask &= mask - 1;
            }
        }
    }

    /// Runs one clock cycle on every lane.
    ///
    /// The phase order matches the scalar engine exactly: clock tree,
    /// flip-flop/macro edge, staged inputs, levelized combinational
    /// settle, memory-access accounting, flip-flop sampling. Per-lane
    /// activity is then available from
    /// [`activities`](BatchSimulator::activities) and
    /// [`domain_activity`](BatchSimulator::domain_activity).
    pub fn step(&mut self) {
        let active = self.active;
        let lanes = self.lanes;
        let dff_cap = Netlist::dff_capacitance_ff();

        // Clock tree: identical constants for every lane, accumulated with
        // the scalar engine's expressions.
        for l in 0..lanes {
            self.caps[l] = self.clock_cap_total;
            self.toggles[l] = 0;
        }
        if !self.dom_caps.is_empty() {
            for (d, &base) in self.clock_dom_base.iter().enumerate() {
                for l in 0..lanes {
                    self.dom_caps[d * 64 + l] = base;
                }
            }
        }

        // 1. Clock edge: apply pending flip-flop and macro outputs.
        for ((dff, &q), &dom) in self
            .netlist
            .dffs()
            .iter()
            .zip(&self.pending_q)
            .zip(self.netlist.dff_domains())
        {
            let idx = dff.q.index();
            let old = self.values[idx];
            let mask = (old ^ q) & active;
            if mask != 0 {
                self.values[idx] = (old & !active) | (q & active);
                Self::scatter(
                    &mut self.caps,
                    &mut self.dom_caps,
                    &mut self.toggles,
                    dom,
                    mask,
                    dff_cap,
                );
            }
        }
        for (mi, mem) in self.netlist.memories().iter().enumerate() {
            let dom = self.netlist.mem_domains()[mi];
            for (bit, net) in mem.rdata.iter().enumerate() {
                let mut word = 0u64;
                for l in 0..self.lanes {
                    word |= (self.mem_pending[mi * 64 + l] >> bit & 1) << l;
                }
                let idx = net.index();
                let old = self.values[idx];
                let mask = (old ^ word) & active;
                if mask != 0 {
                    self.values[idx] = (old & !active) | (word & active);
                    Self::scatter(
                        &mut self.caps,
                        &mut self.dom_caps,
                        &mut self.toggles,
                        dom,
                        mask,
                        MemoryMacro::RDATA_CAP_FF,
                    );
                }
            }
        }

        // 2. Apply staged inputs in staging order (port-major, LSB-first —
        //    the order every lane's scalar run would use).
        const INPUT_WIRE_CAP_FF: f64 = 0.5;
        for s in &self.staged {
            let idx = s.net as usize;
            let old = self.values[idx];
            let new = (old & !s.care) | (s.value & s.care);
            let mask = old ^ new;
            if mask != 0 {
                self.values[idx] = new;
                Self::scatter(
                    &mut self.caps,
                    &mut self.dom_caps,
                    &mut self.toggles,
                    0,
                    mask,
                    INPUT_WIRE_CAP_FF,
                );
            }
            self.staged_slot[idx] = 0;
        }
        self.staged.clear();

        // 3. Settle combinational logic in levelized order, whole words at
        //    a time — one dispatch per packed op, straight-line bitwise
        //    evaluation over the lane words. Whether a cell toggled is
        //    data-dependent and unpredictable, so instead of branching
        //    into the accounting per op, every op unconditionally writes
        //    its `(cap, mask, domain)` record to the compaction buffer and
        //    a flag-add advances the cursor only when the mask is nonzero;
        //    the scatter pass below then walks just the toggled prefix.
        //    Stable compaction keeps per-lane cap sums in exact op order,
        //    preserving bit-identity with the scalar engine.
        let mut n_toggled = 0usize;
        for op in &self.ops {
            let a = op.a as usize;
            let b = op.b as usize;
            let v = &self.values;
            let new = if op.kind < 16 {
                // Truth-table cell: expand each table bit to a full lane
                // mask and select — no data-dependent branch on the kind.
                let va = v[a];
                let vb = v[b];
                let t = op.kind as u64;
                ((t & 1).wrapping_neg() & !va & !vb)
                    | ((t >> 1 & 1).wrapping_neg() & va & !vb)
                    | ((t >> 2 & 1).wrapping_neg() & !va & vb)
                    | ((t >> 3 & 1).wrapping_neg() & va & vb)
            } else {
                match op.kind {
                    OP_MUX2 => {
                        let s = v[a];
                        (s & v[op.c as usize]) | (!s & v[b])
                    }
                    _ => {
                        let inputs = &self.lut_inputs[a..a + op.b as usize];
                        let table = &self.lut_tables[op.c as usize..];
                        let mut word = 0u64;
                        for l in 0..self.lanes {
                            let mut idx = 0usize;
                            for (k, &input) in inputs.iter().enumerate() {
                                idx |= ((v[input as usize] >> l & 1) as usize) << k;
                            }
                            word |= (table[idx / 64] >> (idx % 64) & 1) << l;
                        }
                        word
                    }
                }
            };
            let out = op.out as usize;
            let old = self.values[out];
            let mask = (old ^ new) & active;
            self.toggled[n_toggled] = (op.cap, mask, op.dom);
            n_toggled += usize::from(mask != 0);
            self.values[out] = (old & !active) | (new & active);
        }
        for i in 0..n_toggled {
            let (cap, mask, dom) = self.toggled[i];
            Self::scatter(
                &mut self.caps,
                &mut self.dom_caps,
                &mut self.toggles,
                dom as usize,
                mask,
                cap,
            );
        }

        // 3b. Memory-macro accesses, per macro then per lane so each
        //     lane's additions arrive in the scalar engine's order.
        for (mi, mem) in self.netlist.memories().iter().enumerate() {
            let dom = self.netlist.mem_domains()[mi];
            let words = mem.words();
            for l in 0..self.lanes {
                let lane_bit = |net: NetId| self.values[net.index()] >> l & 1;
                let mut addr = 0usize;
                for (bit, net) in mem.addr.iter().enumerate() {
                    addr |= (lane_bit(*net) as usize) << bit;
                }
                let we = lane_bit(mem.we) == 1;
                let re = lane_bit(mem.re) == 1;
                let clear = lane_bit(mem.clear) == 1;
                let cell = self.mem_base[mi] + l * words + addr;
                let stored = self.mem_contents[cell];
                let mut wdata_now = 0u64;
                for (bit, net) in mem.wdata.iter().enumerate() {
                    wdata_now |= lane_bit(*net) << bit;
                }
                let prev_addr = self.mem_prev_addr[mi * 64 + l];
                let prev_wdata = self.mem_prev_wdata[mi * 64 + l];
                let mut mem_cap = 0.0;
                mem_cap += MemoryMacro::ADDR_BUS_CAP_FF * ((prev_addr ^ addr).count_ones()) as f64;
                mem_cap +=
                    MemoryMacro::WDATA_BUS_CAP_FF * ((prev_wdata ^ wdata_now).count_ones()) as f64;
                self.mem_prev_addr[mi * 64 + l] = addr;
                self.mem_prev_wdata[mi * 64 + l] = wdata_now;
                if re || we {
                    mem_cap += MemoryMacro::WORDLINE_CAP_FF
                        + MemoryMacro::ACCESS_CAP_PER_BIT_FF * mem.width() as f64;
                }
                if we {
                    let flipped = (stored ^ wdata_now).count_ones();
                    mem_cap += MemoryMacro::WRITE_CELL_CAP_FF * flipped as f64;
                    self.mem_contents[cell] = wdata_now;
                }
                self.caps[l] += mem_cap;
                if !self.dom_caps.is_empty() {
                    self.dom_caps[dom * 64 + l] += mem_cap;
                }
                if clear {
                    self.mem_pending[mi * 64 + l] = 0;
                } else if re {
                    self.mem_pending[mi * 64 + l] = stored;
                }
            }
        }

        // 4. Sample flip-flop inputs for the next edge.
        for (dff, pending) in self.netlist.dffs().iter().zip(&mut self.pending_q) {
            *pending = self.values[dff.d.index()];
        }

        self.cycle += 1;
        for l in 0..self.lanes {
            self.activities[l] = CycleActivity {
                switched_capacitance_ff: self.caps[l],
                toggled_nets: self.toggles[l],
            };
        }
    }

    /// Per-lane switching activity of the most recent
    /// [`step`](BatchSimulator::step), indexed by lane.
    pub fn activities(&self) -> &[CycleActivity] {
        &self.activities
    }

    /// Switched capacitance per power domain of one lane during the most
    /// recent [`step`](BatchSimulator::step) (fF), indexed like
    /// [`Netlist::domains`].
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn domain_activity(&self, lane: usize) -> Vec<f64> {
        assert!(lane < self.lanes, "lane {lane} of {}", self.lanes);
        assert!(
            self.dom_caps.len() >= self.netlist.domains().len() * 64,
            "domain tracking is disabled for this batch"
        );
        (0..self.netlist.domains().len())
            .map(|d| self.dom_caps[d * 64 + lane])
            .collect()
    }

    /// Reads the settled value of a port on one lane for the current
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn output_by_handle(&self, lane: usize, h: PortHandle) -> Bits {
        assert!(lane < self.lanes, "lane {lane} of {}", self.lanes);
        let port = &self.netlist.ports()[h.index()];
        let nets = port.nets();
        let mut words = [0u64; 4];
        let mut spill: Vec<u64>;
        let words: &mut [u64] = if nets.len() <= 256 {
            &mut words[..nets.len().div_ceil(64)]
        } else {
            spill = vec![0; nets.len().div_ceil(64)];
            &mut spill
        };
        for (i, net) in nets.iter().enumerate() {
            words[i / 64] |= (self.values[net.index()] >> lane & 1) << (i % 64);
        }
        Bits::from_words(words, nets.len())
    }

    /// Reads every port of one lane in declaration order — one
    /// functional-trace cycle, identical to the scalar engine's
    /// [`sample_ports`](crate::Simulator::sample_ports).
    pub fn sample_ports(&self, lane: usize) -> Vec<Bits> {
        (0..self.netlist.ports().len())
            .map(|i| self.output_by_handle(lane, PortHandle::from_index(i)))
            .collect()
    }
}

/// Captures paired functional + power traces for many stimuli in one
/// bit-parallel run — the batch twin of
/// [`capture_traces`](crate::capture_traces).
///
/// Stimuli are packed 64 to a lane word; result `i` is byte-identical to
/// `capture_traces(netlist, model, &stimuli[i], seeds[i])`. Stimuli of
/// different lengths may share a batch: each lane stops recording at its
/// own length.
///
/// # Errors
///
/// Same conditions as [`capture_traces`](crate::capture_traces). A
/// malformed stimulus fails the whole call (the lowest lane's error wins),
/// not just its own lane.
///
/// # Panics
///
/// Panics when `seeds.len() != stimuli.len()`.
///
/// # Examples
///
/// ```
/// use psm_rtl::{capture_traces, capture_traces_batch, NetlistBuilder, PowerModel, Stimulus};
/// use psm_trace::Bits;
///
/// let mut b = NetlistBuilder::new("inv");
/// let a = b.input("a", 1);
/// let y = b.not_word(&a);
/// b.output("y", &y);
/// let n = b.finish()?;
///
/// let stimuli: Vec<Stimulus> = (0..3)
///     .map(|k| (0..4).map(|i| vec![Bits::from_u64((i + k) % 2, 1)]).collect())
///     .collect();
/// let batch = capture_traces_batch(&n, &PowerModel::default(), &stimuli, &[7, 8, 9])?;
/// for (k, result) in batch.iter().enumerate() {
///     let scalar = capture_traces(&n, &PowerModel::default(), &stimuli[k], 7 + k as u64)?;
///     assert_eq!(result.power, scalar.power);
///     assert_eq!(result.functional, scalar.functional);
/// }
/// # Ok::<(), psm_rtl::RtlError>(())
/// ```
pub fn capture_traces_batch(
    netlist: &Netlist,
    model: &PowerModel,
    stimuli: &[Stimulus],
    seeds: &[u64],
) -> Result<Vec<CaptureResult>, RtlError> {
    assert_eq!(
        stimuli.len(),
        seeds.len(),
        "one noise seed per stimulus is required"
    );
    let mut out = Vec::with_capacity(stimuli.len());
    for (chunk, chunk_seeds) in stimuli
        .chunks(BatchSimulator::MAX_LANES)
        .zip(seeds.chunks(BatchSimulator::MAX_LANES))
    {
        // Total-only capture: skip the per-domain accounting entirely —
        // the per-lane total is unaffected (see `scatter`).
        capture_group(netlist, model, chunk, chunk_seeds, false, &mut out)?;
    }
    Ok(out
        .into_iter()
        .map(|h| CaptureResult {
            functional: h.functional,
            power: h.total,
        })
        .collect())
}

/// Like [`capture_traces_batch`], additionally recording one golden power
/// trace per power domain — the batch twin of
/// [`capture_traces_by_domain`](crate::capture_traces_by_domain), with the
/// same per-domain estimator seeding (`seed ^ (0xD00D + domain)`).
///
/// # Errors
///
/// Same conditions as [`capture_traces_batch`].
///
/// # Panics
///
/// Panics when `seeds.len() != stimuli.len()`.
pub fn capture_traces_by_domain_batch(
    netlist: &Netlist,
    model: &PowerModel,
    stimuli: &[Stimulus],
    seeds: &[u64],
) -> Result<Vec<HierarchicalCapture>, RtlError> {
    assert_eq!(
        stimuli.len(),
        seeds.len(),
        "one noise seed per stimulus is required"
    );
    let mut out = Vec::with_capacity(stimuli.len());
    for (chunk, chunk_seeds) in stimuli
        .chunks(BatchSimulator::MAX_LANES)
        .zip(seeds.chunks(BatchSimulator::MAX_LANES))
    {
        capture_group(netlist, model, chunk, chunk_seeds, true, &mut out)?;
    }
    Ok(out)
}

/// Captures one lane group (≤ 64 stimuli) in a single batch run. With
/// `track_domains` off, the per-domain traces are left empty and the
/// engine skips domain accounting altogether.
fn capture_group(
    netlist: &Netlist,
    model: &PowerModel,
    stimuli: &[Stimulus],
    seeds: &[u64],
    track_domains: bool,
    out: &mut Vec<HierarchicalCapture>,
) -> Result<(), RtlError> {
    let lanes = stimuli.len();
    if lanes == 0 {
        return Ok(());
    }
    let mut sim = BatchSimulator::with_domain_tracking(netlist, lanes, track_domains)?;
    let n_domains = if track_domains {
        netlist.domains().len()
    } else {
        0
    };
    // Per-lane estimators, seeded exactly as the scalar capture seeds its
    // per-stimulus estimators: the baseline lives in domain 0 only.
    let zero_base = PowerModel::new(
        model.vdd(),
        model.freq_mhz(),
        f64::MIN_POSITIVE,
        model.noise_fraction(),
    );
    let mut estimators: Vec<PowerEstimator> = seeds
        .iter()
        .map(|&seed| PowerEstimator::new(*model, seed))
        .collect();
    let mut domain_estimators: Vec<Vec<PowerEstimator>> = seeds
        .iter()
        .map(|&seed| {
            (0..n_domains)
                .map(|d| {
                    let m = if d == 0 { *model } else { zero_base };
                    PowerEstimator::new(m, seed ^ (0xD0_0D + d as u64))
                })
                .collect()
        })
        .collect();

    let input_handles = sim.input_handles();
    let rows: Vec<Vec<&[Bits]>> = stimuli.iter().map(|s| s.iter().collect()).collect();
    let mut functional: Vec<FunctionalTrace> = stimuli
        .iter()
        .map(|s| FunctionalTrace::with_capacity(netlist.signal_set(), s.len()))
        .collect();
    let mut total: Vec<PowerTrace> = stimuli
        .iter()
        .map(|s| PowerTrace::with_capacity(s.len()))
        .collect();
    let mut by_domain: Vec<Vec<PowerTrace>> = stimuli
        .iter()
        .map(|s| {
            (0..n_domains)
                .map(|_| PowerTrace::with_capacity(s.len()))
                .collect()
        })
        .collect();

    let max_len = stimuli.iter().map(Stimulus::len).max().unwrap_or(0);
    for t in 0..max_len {
        for lane_rows in &rows {
            let Some(cycle_inputs) = lane_rows.get(t) else {
                continue;
            };
            if cycle_inputs.len() != input_handles.len() {
                return Err(RtlError::Trace(psm_trace::TraceError::CycleShapeMismatch {
                    expected: input_handles.len(),
                    actual: cycle_inputs.len(),
                }));
            }
        }
        // Port-major, lane-minor staging keeps each lane's staged-net
        // order identical to its scalar run.
        for (p, (_, handle)) in input_handles.iter().enumerate() {
            for (l, lane_rows) in rows.iter().enumerate() {
                if let Some(cycle_inputs) = lane_rows.get(t) {
                    sim.set_input(l, *handle, &cycle_inputs[p])?;
                }
            }
        }
        sim.step();
        for (l, stim) in stimuli.iter().enumerate() {
            if t >= stim.len() {
                continue;
            }
            let activity = sim.activities()[l];
            functional[l].push_cycle(sim.sample_ports(l))?;
            total[l].push(estimators[l].next_sample(&activity));
            if track_domains {
                let lane_domains = sim.domain_activity(l);
                for (d, trace) in by_domain[l].iter_mut().enumerate() {
                    let a = CycleActivity {
                        switched_capacitance_ff: lane_domains[d],
                        toggled_nets: 0,
                    };
                    trace.push(domain_estimators[l][d].next_sample(&a));
                }
            }
        }
    }

    let domains = if track_domains {
        netlist.domains().to_vec()
    } else {
        Vec::new()
    };
    for ((functional, total), by_domain) in functional.into_iter().zip(total).zip(by_domain) {
        out.push(HierarchicalCapture {
            functional,
            total,
            domains: domains.clone(),
            by_domain,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{capture_traces, capture_traces_by_domain};
    use crate::NetlistBuilder;

    fn counter(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("counter");
        let en = b.input("en", 1);
        let r = b.register("count", width);
        let q = r.q();
        let next = b.inc(&q);
        b.connect_register_en(&r, en.bit(0), &next.sum);
        b.output("q", &r.q());
        b.finish().unwrap()
    }

    #[test]
    fn lanes_run_independently() {
        let n = counter(8);
        let mut sim = BatchSimulator::new(&n, 3).unwrap();
        let en = sim.port_handle("en").unwrap();
        let q = sim.port_handle("q").unwrap();
        for t in 0..10u64 {
            sim.set_input(0, en, &Bits::from_u64(1, 1)).unwrap();
            sim.set_input(1, en, &Bits::from_u64(t % 2, 1)).unwrap();
            sim.set_input(2, en, &Bits::from_u64(0, 1)).unwrap();
            sim.step();
        }
        assert_eq!(sim.output_by_handle(0, q).to_u64().unwrap(), 9);
        assert_eq!(sim.output_by_handle(1, q).to_u64().unwrap(), 4);
        assert_eq!(sim.output_by_handle(2, q).to_u64().unwrap(), 0);
    }

    #[test]
    fn per_lane_activity_matches_scalar() {
        let n = counter(6);
        let mut batch = BatchSimulator::new(&n, 2).unwrap();
        let ben = batch.port_handle("en").unwrap();
        let mut scalars = [Simulator::new(&n).unwrap(), Simulator::new(&n).unwrap()];
        for t in 0..32u64 {
            let drive = [t % 3 != 0, t % 2 == 0];
            for (l, sim) in scalars.iter_mut().enumerate() {
                sim.set_input("en", &Bits::from_bool(drive[l])).unwrap();
            }
            batch.set_input(0, ben, &Bits::from_bool(drive[0])).unwrap();
            batch.set_input(1, ben, &Bits::from_bool(drive[1])).unwrap();
            let expected = [scalars[0].step(), scalars[1].step()];
            batch.step();
            for l in 0..2 {
                assert_eq!(batch.activities()[l], expected[l], "lane {l} cycle {t}");
                assert_eq!(
                    batch.domain_activity(l),
                    scalars[l].domain_activity(),
                    "lane {l} cycle {t}"
                );
                assert_eq!(batch.sample_ports(l), scalars[l].sample_ports());
            }
        }
    }

    #[test]
    fn batch_capture_matches_scalar_capture() {
        let n = counter(5);
        let stimuli: Vec<Stimulus> = (0..5)
            .map(|k| {
                (0..40)
                    .map(|t| vec![Bits::from_u64((t + k) % 2, 1)])
                    .collect()
            })
            .collect();
        let seeds: Vec<u64> = (0..5).map(|k| 11 + k).collect();
        let batch =
            capture_traces_by_domain_batch(&n, &PowerModel::default(), &stimuli, &seeds).unwrap();
        for (k, got) in batch.iter().enumerate() {
            let want = capture_traces_by_domain(&n, &PowerModel::default(), &stimuli[k], seeds[k])
                .unwrap();
            assert_eq!(got.functional, want.functional, "stimulus {k}");
            assert_eq!(got.total, want.total, "stimulus {k}");
            assert_eq!(got.by_domain, want.by_domain, "stimulus {k}");
        }
    }

    #[test]
    fn ragged_lengths_share_a_batch() {
        let n = counter(4);
        let stimuli: Vec<Stimulus> = [13usize, 4, 29]
            .iter()
            .map(|&len| {
                (0..len)
                    .map(|t| vec![Bits::from_u64((t % 2) as u64, 1)])
                    .collect()
            })
            .collect();
        let batch = capture_traces_batch(&n, &PowerModel::default(), &stimuli, &[1, 2, 3]).unwrap();
        for (k, got) in batch.iter().enumerate() {
            assert_eq!(got.functional.len(), stimuli[k].len());
            let want =
                capture_traces(&n, &PowerModel::default(), &stimuli[k], 1 + k as u64).unwrap();
            assert_eq!(got.power, want.power, "stimulus {k}");
            assert_eq!(got.functional, want.functional, "stimulus {k}");
        }
    }

    #[test]
    fn more_than_64_stimuli_chunk_transparently() {
        let n = counter(3);
        let stimuli: Vec<Stimulus> = (0..67u64)
            .map(|k| {
                (0..6)
                    .map(|t| vec![Bits::from_u64((t + k) % 2, 1)])
                    .collect()
            })
            .collect();
        let seeds: Vec<u64> = (0..67).collect();
        let batch = capture_traces_batch(&n, &PowerModel::default(), &stimuli, &seeds).unwrap();
        assert_eq!(batch.len(), 67);
        for (k, got) in batch.iter().enumerate() {
            let want = capture_traces(&n, &PowerModel::default(), &stimuli[k], k as u64).unwrap();
            assert_eq!(got.power, want.power, "stimulus {k}");
        }
    }

    #[test]
    fn malformed_cycle_fails_the_group() {
        let n = counter(4);
        let good: Stimulus = (0..4).map(|_| vec![Bits::from_u64(1, 1)]).collect();
        let mut bad = Stimulus::new();
        bad.push_cycle(vec![]);
        let err = capture_traces_batch(&n, &PowerModel::default(), &[good, bad], &[0, 1]);
        assert!(matches!(
            err,
            Err(RtlError::Trace(
                psm_trace::TraceError::CycleShapeMismatch { .. }
            ))
        ));
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=64")]
    fn rejects_zero_lanes() {
        let n = counter(2);
        let _ = BatchSimulator::new(&n, 0);
    }

    #[test]
    fn reset_restores_every_lane() {
        let n = counter(4);
        let mut sim = BatchSimulator::new(&n, 2).unwrap();
        let en = sim.port_handle("en").unwrap();
        let q = sim.port_handle("q").unwrap();
        for _ in 0..5 {
            sim.set_input(0, en, &Bits::from_u64(1, 1)).unwrap();
            sim.set_input(1, en, &Bits::from_u64(1, 1)).unwrap();
            sim.step();
        }
        assert_ne!(sim.output_by_handle(0, q).to_u64().unwrap(), 0);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        sim.step();
        assert_eq!(sim.output_by_handle(0, q).to_u64().unwrap(), 0);
        assert_eq!(sim.output_by_handle(1, q).to_u64().unwrap(), 0);
    }
}
