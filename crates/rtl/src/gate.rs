//! Primitive cells of the netlist IR.

use std::fmt;

/// Identifier of a single-bit net.
///
/// Nets are dense indices into the netlist's value arrays; `NetId(0)` is the
/// constant-zero net and `NetId(1)` the constant-one net in every netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

impl NetId {
    /// Dense index of this net.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a combinational cell.
///
/// The cell library is deliberately small — two-input gates, a 2:1 mux and
/// an n-input LUT macro (used for ROM lookups such as cipher S-boxes). This
/// mirrors the standard-cell + macro mix a real synthesis netlist would
/// contain and is all the power model needs: a capacitance per cell kind
/// and per-cycle output toggles.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Buffer: `out = a`.
    Buf,
    /// Inverter: `out = !a`.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// 2:1 multiplexer: `out = sel ? b : a` with inputs `[sel, a, b]`.
    Mux2,
    /// An n-input lookup-table macro cell.
    ///
    /// `table` packs 2ⁿ output bits little-endian into `u64` words; input 0
    /// is the least-significant index bit. Used for S-boxes and other ROMs
    /// whose gate-level expansion would be enormous while contributing only
    /// a lumped capacitance to the power model.
    Lut {
        /// Packed truth table, bit `i` of the table at word `i / 64`.
        table: Vec<u64>,
    },
}

impl GateKind {
    /// Number of input pins this kind expects (`None` for variadic LUTs).
    pub fn arity(&self) -> Option<usize> {
        match self {
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::And2 | GateKind::Or2 | GateKind::Xor2 | GateKind::Nand2 | GateKind::Nor2 => {
                Some(2)
            }
            GateKind::Mux2 => Some(3),
            GateKind::Lut { .. } => None,
        }
    }

    /// Evaluates the cell over its input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the cell's arity, or if a LUT's
    /// table is too small for its input count.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And2 => inputs[0] & inputs[1],
            GateKind::Or2 => inputs[0] | inputs[1],
            GateKind::Xor2 => inputs[0] ^ inputs[1],
            GateKind::Nand2 => !(inputs[0] & inputs[1]),
            GateKind::Nor2 => !(inputs[0] | inputs[1]),
            GateKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            GateKind::Lut { table } => {
                let mut idx = 0usize;
                for (i, &v) in inputs.iter().enumerate() {
                    if v {
                        idx |= 1 << i;
                    }
                }
                (table[idx / 64] >> (idx % 64)) & 1 == 1
            }
        }
    }

    /// Output-node switched capacitance of this cell kind, in femtofarads.
    ///
    /// Values are loosely scaled from a generic 90 nm standard-cell library;
    /// absolute accuracy is irrelevant (the paper compares *relative* error
    /// against the same golden model), but the relative ordering — LUT
    /// macros ≫ mux ≳ xor > simple gates — shapes realistic power traces.
    pub fn capacitance_ff(&self) -> f64 {
        match self {
            GateKind::Buf => 1.0,
            GateKind::Not => 0.8,
            GateKind::And2 | GateKind::Or2 => 1.4,
            GateKind::Nand2 | GateKind::Nor2 => 1.1,
            GateKind::Xor2 => 2.2,
            GateKind::Mux2 => 2.0,
            // A LUT macro lumps a whole ROM column: scale with address width.
            GateKind::Lut { table } => 6.0 + 1.5 * (table.len() as f64).log2().max(1.0),
        }
    }

    /// Short cell-library name (for reports and netlist stats).
    pub fn name(&self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "INV",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::Mux2 => "MUX2",
            GateKind::Lut { .. } => "LUT",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One combinational cell instance: kind, input nets and output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Cell kind.
    pub kind: GateKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_truth_tables() {
        let t = true;
        let f = false;
        assert!(GateKind::And2.eval(&[t, t]) && !GateKind::And2.eval(&[t, f]));
        assert!(GateKind::Or2.eval(&[f, t]) && !GateKind::Or2.eval(&[f, f]));
        assert!(GateKind::Xor2.eval(&[t, f]) && !GateKind::Xor2.eval(&[t, t]));
        assert!(GateKind::Nand2.eval(&[t, f]) && !GateKind::Nand2.eval(&[t, t]));
        assert!(GateKind::Nor2.eval(&[f, f]) && !GateKind::Nor2.eval(&[t, f]));
        assert!(!GateKind::Not.eval(&[t]) && GateKind::Not.eval(&[f]));
        assert!(GateKind::Buf.eval(&[t]) && !GateKind::Buf.eval(&[f]));
    }

    #[test]
    fn mux_selects() {
        // inputs = [sel, a, b]
        assert!(!GateKind::Mux2.eval(&[false, false, true]));
        assert!(GateKind::Mux2.eval(&[true, false, true]));
        assert!(GateKind::Mux2.eval(&[false, true, false]));
    }

    #[test]
    fn lut_indexes_little_endian() {
        // 2-input LUT implementing XOR: table bits 0110 → 0x6.
        let lut = GateKind::Lut { table: vec![0x6] };
        assert!(!lut.eval(&[false, false]));
        assert!(lut.eval(&[true, false]));
        assert!(lut.eval(&[false, true]));
        assert!(!lut.eval(&[true, true]));
    }

    #[test]
    fn lut_wide_table() {
        // 8-input LUT: identity of input 7 (table bit i set iff bit 7 of i).
        let mut table = vec![0u64; 4];
        for i in 0..256 {
            if i & 0x80 != 0 {
                table[i / 64] |= 1 << (i % 64);
            }
        }
        let lut = GateKind::Lut { table };
        let mut ins = [false; 8];
        assert!(!lut.eval(&ins));
        ins[7] = true;
        assert!(lut.eval(&ins));
    }

    #[test]
    fn capacitance_ordering() {
        let lut = GateKind::Lut {
            table: vec![0u64; 4],
        };
        assert!(lut.capacitance_ff() > GateKind::Mux2.capacitance_ff());
        assert!(GateKind::Xor2.capacitance_ff() > GateKind::And2.capacitance_ff());
        assert!(GateKind::And2.capacitance_ff() > GateKind::Not.capacitance_ff());
    }

    #[test]
    fn arity() {
        assert_eq!(GateKind::Not.arity(), Some(1));
        assert_eq!(GateKind::Mux2.arity(), Some(3));
        assert_eq!(GateKind::Lut { table: vec![0] }.arity(), None);
    }
}
