//! One-pass capture of paired functional + power training traces.
//!
//! The paper's methodology needs, for every benchmark IP, a functional trace
//! and a *corresponding* power trace over the same stimuli. This module runs
//! a gate-level simulation once and records both, playing the role of the
//! paper's "simulate the IP with its verification testbenches, then run
//! PrimeTime PX on the same traces" step.

use crate::netlist::Netlist;
use crate::power::{PowerEstimator, PowerModel};
use crate::sim::Simulator;
use crate::RtlError;
use psm_trace::{Bits, FunctionalTrace, PowerTrace};

/// A cycle-by-cycle input stimulus: for every cycle, one value per input
/// port in the netlist's declaration order.
///
/// # Examples
///
/// ```
/// use psm_rtl::Stimulus;
/// use psm_trace::Bits;
///
/// let mut s = Stimulus::new();
/// s.push_cycle(vec![Bits::from_u64(1, 1)]);
/// s.push_cycle(vec![Bits::from_u64(0, 1)]);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stimulus {
    cycles: Vec<Vec<Bits>>,
}

impl Stimulus {
    /// Creates an empty stimulus.
    pub fn new() -> Self {
        Stimulus::default()
    }

    /// Appends the input values for one cycle (input-port declaration
    /// order).
    pub fn push_cycle(&mut self, inputs: Vec<Bits>) {
        self.cycles.push(inputs);
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Returns `true` when no cycle has been added.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Iterates over per-cycle input vectors.
    pub fn iter(&self) -> impl Iterator<Item = &[Bits]> {
        self.cycles.iter().map(|c| c.as_slice())
    }
}

impl FromIterator<Vec<Bits>> for Stimulus {
    fn from_iter<I: IntoIterator<Item = Vec<Bits>>>(iter: I) -> Self {
        Stimulus {
            cycles: iter.into_iter().collect(),
        }
    }
}

/// Paired training traces captured from one gate-level run.
#[derive(Debug, Clone)]
pub struct CaptureResult {
    /// Functional trace over all ports (PIs and POs), one row per cycle.
    pub functional: FunctionalTrace,
    /// Golden dynamic power trace over the same cycles, in mW.
    pub power: PowerTrace,
}

/// Training traces with per-power-domain golden power — the substrate of
/// the hierarchical-PSM extension (the paper's future work: "a power model
/// based on hierarchical PSMs that distinguishes among IP subcomponents").
#[derive(Debug, Clone)]
pub struct HierarchicalCapture {
    /// Functional trace over all ports.
    pub functional: FunctionalTrace,
    /// Whole-design golden power, in mW.
    pub total: PowerTrace,
    /// Domain names, indexed like [`by_domain`](Self::by_domain).
    pub domains: Vec<String>,
    /// One golden power trace per power domain; per instant they sum to
    /// [`total`](Self::total) (up to the independently drawn noise).
    pub by_domain: Vec<PowerTrace>,
}

/// Simulates `netlist` under `stimulus`, recording the functional trace of
/// all ports and the golden power trace of the same cycles.
///
/// `seed` drives the power estimator's measurement noise only; the
/// functional behaviour is fully deterministic.
///
/// # Errors
///
/// * [`RtlError::CombinationalLoop`] if the netlist cannot be levelized;
/// * [`RtlError::PortWidthMismatch`] / [`RtlError::Trace`] when a stimulus
///   cycle does not match the input interface.
///
/// # Examples
///
/// ```
/// use psm_rtl::{capture_traces, NetlistBuilder, PowerModel, Stimulus};
/// use psm_trace::Bits;
///
/// let mut b = NetlistBuilder::new("inv");
/// let a = b.input("a", 1);
/// let y = b.not_word(&a);
/// b.output("y", &y);
/// let n = b.finish()?;
///
/// let stim: Stimulus = (0..4)
///     .map(|i| vec![Bits::from_u64(i % 2, 1)])
///     .collect();
/// let result = capture_traces(&n, &PowerModel::default(), &stim, 1)?;
/// assert_eq!(result.functional.len(), 4);
/// assert_eq!(result.power.len(), 4);
/// # Ok::<(), psm_rtl::RtlError>(())
/// ```
pub fn capture_traces(
    netlist: &Netlist,
    model: &PowerModel,
    stimulus: &Stimulus,
    seed: u64,
) -> Result<CaptureResult, RtlError> {
    let h = capture_traces_by_domain(netlist, model, stimulus, seed)?;
    Ok(CaptureResult {
        functional: h.functional,
        power: h.total,
    })
}

/// Like [`capture_traces`], additionally recording one golden power trace
/// per power domain of the netlist (see
/// [`NetlistBuilder::domain`](crate::NetlistBuilder::domain)).
///
/// The static baseline of the power model is attributed to domain 0; each
/// domain's measurement noise is drawn independently (seeded), so domain
/// traces sum to the total only up to noise.
///
/// # Errors
///
/// Same conditions as [`capture_traces`].
pub fn capture_traces_by_domain(
    netlist: &Netlist,
    model: &PowerModel,
    stimulus: &Stimulus,
    seed: u64,
) -> Result<HierarchicalCapture, RtlError> {
    let mut sim = Simulator::new(netlist)?;
    let mut estimator = PowerEstimator::new(*model, seed);
    let n_domains = netlist.domains().len();
    // Domain estimators: the baseline lives in domain 0 only.
    let zero_base = PowerModel::new(
        model.vdd(),
        model.freq_mhz(),
        f64::MIN_POSITIVE,
        model.noise_fraction(),
    );
    let mut domain_estimators: Vec<PowerEstimator> = (0..n_domains)
        .map(|d| {
            let m = if d == 0 { *model } else { zero_base };
            PowerEstimator::new(m, seed ^ (0xD0_0D + d as u64))
        })
        .collect();

    let signals = netlist.signal_set();
    let input_handles: Vec<_> = sim.input_handles();
    let mut functional = FunctionalTrace::with_capacity(signals, stimulus.len());
    let mut total = PowerTrace::with_capacity(stimulus.len());
    let mut by_domain: Vec<PowerTrace> = (0..n_domains)
        .map(|_| PowerTrace::with_capacity(stimulus.len()))
        .collect();

    for cycle_inputs in stimulus.iter() {
        if cycle_inputs.len() != input_handles.len() {
            return Err(RtlError::Trace(psm_trace::TraceError::CycleShapeMismatch {
                expected: input_handles.len(),
                actual: cycle_inputs.len(),
            }));
        }
        for ((_, handle), value) in input_handles.iter().zip(cycle_inputs) {
            sim.set_input_by_handle(*handle, value)?;
        }
        let activity = sim.step();
        functional.push_cycle(sim.sample_ports())?;
        total.push(estimator.next_sample(&activity));
        for (d, trace) in by_domain.iter_mut().enumerate() {
            let a = crate::power::CycleActivity {
                switched_capacitance_ff: sim.domain_activity()[d],
                toggled_nets: 0,
            };
            trace.push(domain_estimators[d].next_sample(&a));
        }
    }

    Ok(HierarchicalCapture {
        functional,
        total,
        domains: netlist.domains().to_vec(),
        by_domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn accumulator() -> Netlist {
        let mut b = NetlistBuilder::new("acc");
        let d = b.input("d", 8);
        let acc = b.register("acc", 8);
        let q = acc.q();
        let sum = b.add(&q, &d);
        b.connect_register(&acc, &sum.sum);
        b.output("q", &acc.q());
        b.finish().unwrap()
    }

    #[test]
    fn captures_matching_lengths() {
        let n = accumulator();
        let stim: Stimulus = (0..50).map(|i| vec![Bits::from_u64(i % 7, 8)]).collect();
        let r = capture_traces(&n, &PowerModel::default(), &stim, 11).unwrap();
        assert_eq!(r.functional.len(), 50);
        assert_eq!(r.power.len(), 50);
        // The functional trace covers both ports.
        assert_eq!(r.functional.signals().len(), 2);
    }

    #[test]
    fn functional_values_match_direct_simulation() {
        let n = accumulator();
        let stim: Stimulus = (0..10).map(|i| vec![Bits::from_u64(i, 8)]).collect();
        let r = capture_traces(&n, &PowerModel::default(), &stim, 0).unwrap();
        let q = r.functional.signals().by_name("q").unwrap();
        // Accumulator: q at cycle t equals sum of inputs 0..t (one-cycle lag).
        let mut expected = 0u64;
        for t in 0..10 {
            assert_eq!(
                r.functional.value(q, t).to_u64().unwrap(),
                expected,
                "cycle {t}"
            );
            expected = (expected + t as u64) & 0xFF;
        }
    }

    #[test]
    fn same_seed_same_power() {
        let n = accumulator();
        let stim: Stimulus = (0..20).map(|i| vec![Bits::from_u64(i * 3, 8)]).collect();
        let a = capture_traces(&n, &PowerModel::default(), &stim, 5).unwrap();
        let b = capture_traces(&n, &PowerModel::default(), &stim, 5).unwrap();
        assert_eq!(a.power, b.power);
        let c = capture_traces(&n, &PowerModel::default(), &stim, 6).unwrap();
        assert_ne!(a.power, c.power);
    }

    #[test]
    fn rejects_malformed_cycles() {
        let n = accumulator();
        let mut stim = Stimulus::new();
        stim.push_cycle(vec![]);
        assert!(capture_traces(&n, &PowerModel::default(), &stim, 0).is_err());
    }

    #[test]
    fn busy_cycles_draw_more_power() {
        let n = accumulator();
        // 100 busy cycles with changing data, then 100 idle cycles (d = 0,
        // accumulator saturated at a fixed point: q + 0 = q).
        let mut stim = Stimulus::new();
        for i in 0..100u64 {
            stim.push_cycle(vec![Bits::from_u64(0x55 ^ (i * 37), 8)]);
        }
        for _ in 0..100 {
            stim.push_cycle(vec![Bits::from_u64(0, 8)]);
        }
        // Zero baseline so the comparison sees only the dynamic component.
        let model = PowerModel::new(1.2, 500.0, 0.0, 0.0);
        let r = capture_traces(&n, &model, &stim, 0).unwrap();
        let busy: f64 = r.power.as_slice()[10..100].iter().sum::<f64>() / 90.0;
        let idle: f64 = r.power.as_slice()[110..].iter().sum::<f64>() / 90.0;
        assert!(busy > 2.0 * idle, "busy {busy} vs idle {idle}");
    }
}

#[cfg(test)]
mod domain_tests {
    use super::*;
    use crate::NetlistBuilder;
    use psm_trace::Bits;

    /// Two registers in two domains; only one is active per phase.
    fn two_domain_design() -> Netlist {
        let mut b = NetlistBuilder::new("duo");
        let d = b.input("d", 8);
        let sel = b.input("sel", 1).bit(0);
        let a = b.register("a", 8);
        b.domain("unit_b");
        let c = b.register("c", 8);
        b.domain("core");
        b.connect_register_en(&a, sel, &d);
        let nsel = b.not(sel);
        // The enable mux of `c` lives in unit_b.
        b.domain("unit_b");
        b.connect_register_en(&c, nsel, &d);
        b.domain("core");
        let aq = a.q();
        let cq = c.q();
        let x = b.xor_word(&aq, &cq);
        b.output("x", &x);
        b.finish().unwrap()
    }

    #[test]
    fn domain_traces_follow_the_active_unit() {
        let n = two_domain_design();
        assert_eq!(n.domains(), &["core".to_string(), "unit_b".to_string()]);
        let mut stim = Stimulus::new();
        // Phase 1: sel=1 → register `a` (core) loads changing data.
        for k in 0..40u64 {
            stim.push_cycle(vec![Bits::from_u64(k * 37, 8), Bits::from_bool(true)]);
        }
        // Phase 2: sel=0 → register `c` (unit_b) loads changing data.
        for k in 0..40u64 {
            stim.push_cycle(vec![Bits::from_u64(k * 53, 8), Bits::from_bool(false)]);
        }
        let model = PowerModel::new(1.2, 500.0, 0.0, 0.0);
        let cap = capture_traces_by_domain(&n, &model, &stim, 0).unwrap();
        assert_eq!(cap.by_domain.len(), 2);
        let core_p1: f64 = cap.by_domain[0].as_slice()[5..35].iter().sum();
        let core_p2: f64 = cap.by_domain[0].as_slice()[45..75].iter().sum();
        let unit_p1: f64 = cap.by_domain[1].as_slice()[5..35].iter().sum();
        let unit_p2: f64 = cap.by_domain[1].as_slice()[45..75].iter().sum();
        assert!(core_p1 > core_p2, "core is busier in phase 1");
        assert!(unit_p2 > unit_p1, "unit_b is busier in phase 2");
    }

    #[test]
    fn domain_activity_sums_to_total() {
        let n = two_domain_design();
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("d", &Bits::from_u64(0xA5, 8)).unwrap();
        sim.set_input("sel", &Bits::from_bool(true)).unwrap();
        for _ in 0..10 {
            let activity = sim.step();
            let by_domain: f64 = sim.domain_activity().iter().sum();
            assert!(
                (by_domain - activity.switched_capacitance_ff).abs() < 1e-9,
                "domains must partition the total"
            );
            sim.set_input("d", &Bits::from_u64(0x5A, 8)).unwrap();
        }
    }
}
