//! Randomised tests: the synthesised arithmetic blocks against native
//! integer arithmetic, and structural invariants of the simulator. Driven
//! by the workspace PRNG so runs are deterministic and offline.

use psm_prng::Prng;
use psm_rtl::{NetlistBuilder, Simulator, Word};
use psm_trace::Bits;

const CASES: usize = 64;

/// Builds a two-operand combinational design and evaluates it.
fn eval2(
    width: usize,
    a: u64,
    b: u64,
    build: impl FnOnce(&mut NetlistBuilder, &Word, &Word) -> Word,
) -> u64 {
    let mut nb = NetlistBuilder::new("dut");
    let x = nb.input("a", width);
    let y = nb.input("b", width);
    let out = build(&mut nb, &x, &y);
    nb.output("o", &out);
    let netlist = nb.finish().expect("valid design");
    let mut sim = Simulator::new(&netlist).expect("acyclic");
    sim.set_input("a", &Bits::from_u64(a, width))
        .expect("width ok");
    sim.set_input("b", &Bits::from_u64(b, width))
        .expect("width ok");
    sim.step();
    sim.output("o")
        .expect("port exists")
        .to_u64()
        .expect("fits")
}

fn mask(w: usize) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

#[test]
fn adder_matches_wrapping_add() {
    let mut rng = Prng::seed_from_u64(0x271C_0001);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..32);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let m = mask(w);
        let got = eval2(w, a, b, |nb, x, y| nb.add(x, y).sum);
        assert_eq!(got, (a & m).wrapping_add(b & m) & m);
    }
}

#[test]
fn subtractor_matches_wrapping_sub() {
    let mut rng = Prng::seed_from_u64(0x271C_0002);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..32);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let m = mask(w);
        let got = eval2(w, a, b, |nb, x, y| nb.sub(x, y).sum);
        assert_eq!(got, (a & m).wrapping_sub(b & m) & m);
    }
}

#[test]
fn multiplier_matches_native() {
    let mut rng = Prng::seed_from_u64(0x271C_0003);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..16);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let m = mask(w);
        let mut nb = NetlistBuilder::new("mul");
        let x = nb.input("a", w);
        let y = nb.input("b", w);
        let p = nb.mul(&x, &y);
        nb.output("o", &p);
        let netlist = nb.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("acyclic");
        sim.set_input("a", &Bits::from_u64(a, w)).expect("ok");
        sim.set_input("b", &Bits::from_u64(b, w)).expect("ok");
        sim.step();
        let got = sim.output("o").expect("port").to_u64().expect("fits");
        assert_eq!(got, (a & m) * (b & m));
    }
}

#[test]
fn comparators_match_native() {
    let mut rng = Prng::seed_from_u64(0x271C_0004);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..24);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let m = mask(w);
        let got = eval2(w, a, b, |nb, x, y| {
            let eq = nb.eq(x, y);
            let lt = nb.lt(x, y);
            Word::from_nets(vec![eq, lt])
        });
        assert_eq!(got & 1 == 1, (a & m) == (b & m));
        assert_eq!(got >> 1 & 1 == 1, (a & m) < (b & m));
    }
}

#[test]
fn reductions_match_native() {
    let mut rng = Prng::seed_from_u64(0x271C_0005);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..32);
        let a = rng.next_u64();
        let m = mask(w);
        let got = eval2(w, a, 0, |nb, x, _| {
            let and = nb.reduce_and(x);
            let or = nb.reduce_or(x);
            let xor = nb.reduce_xor(x);
            Word::from_nets(vec![and, or, xor])
        });
        assert_eq!(got & 1 == 1, (a & m) == m);
        assert_eq!(got >> 1 & 1 == 1, (a & m) != 0);
        assert_eq!(got >> 2 & 1 == 1, (a & m).count_ones() % 2 == 1);
    }
}

#[test]
fn rom_returns_its_contents() {
    let mut rng = Prng::seed_from_u64(0x271C_0006);
    for _ in 0..CASES {
        let addr_w = 1 + rng.range_usize(0..6);
        let a = rng.next_u64();
        let seed = rng.next_u64();
        let entries = 1usize << addr_w;
        let contents: Vec<u64> = (0..entries)
            .map(|i| (seed.wrapping_mul(i as u64 + 1)) & 0xFF)
            .collect();
        let addr = a & mask(addr_w);
        let mut nb = NetlistBuilder::new("rom");
        let x = nb.input("a", addr_w);
        let contents2 = contents.clone();
        let o = nb.rom(&x, &contents2, 8);
        nb.output("o", &o);
        let netlist = nb.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("acyclic");
        sim.set_input("a", &Bits::from_u64(addr, addr_w))
            .expect("ok");
        sim.step();
        let got = sim.output("o").expect("port").to_u64().expect("fits");
        assert_eq!(got, contents[addr as usize]);
    }
}

#[test]
fn memory_macro_behaves_like_an_array() {
    let mut rng = Prng::seed_from_u64(0x271C_0007);
    for _ in 0..CASES {
        // 4-bit address space so collisions are frequent.
        let mut nb = NetlistBuilder::new("mem");
        let addr = nb.input("addr", 4);
        let wdata = nb.input("wdata", 32);
        let we = nb.input("we", 1).bit(0);
        let re = nb.input("re", 1).bit(0);
        let z = nb.const0();
        let rdata = nb.memory(&addr, &wdata, we, re, z);
        nb.output("rdata", &rdata);
        let netlist = nb.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("acyclic");

        let mut model = [0u32; 16];
        let mut model_out = 0u32;
        let ops = 1 + rng.range_usize(0..119);
        for _ in 0..ops {
            let a = rng.range_usize(0..16);
            let d = rng.next_u32();
            let we_v = rng.chance(0.5);
            let re_v = rng.chance(0.5);
            sim.set_input("addr", &Bits::from_u64(a as u64, 4))
                .expect("ok");
            sim.set_input("wdata", &Bits::from_u64(d as u64, 32))
                .expect("ok");
            sim.set_input("we", &Bits::from_bool(we_v)).expect("ok");
            sim.set_input("re", &Bits::from_bool(re_v)).expect("ok");
            sim.step();
            // The settled output shows the *previous* cycle's read.
            let got = sim.output("rdata").expect("port").to_u64().expect("fits") as u32;
            assert_eq!(got, model_out);
            // Model the edge: read-before-write, registered output.
            if re_v {
                model_out = model[a];
            }
            if we_v {
                model[a] = d;
            }
        }
    }
}

#[test]
fn idle_design_draws_only_clock_power() {
    let mut rng = Prng::seed_from_u64(0x271C_0008);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..16);
        let v = rng.next_u64();
        let mut nb = NetlistBuilder::new("idle");
        let d = nb.input("d", w);
        let r = nb.register("r", w);
        nb.connect_register(&r, &d);
        nb.output("q", &r.q());
        let netlist = nb.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("acyclic");
        sim.set_input("d", &Bits::from_u64(v, w)).expect("ok");
        sim.step();
        sim.step();
        // Input held: after settling, only the clock tree switches.
        let idle = sim.step();
        assert_eq!(idle.toggled_nets, 0);
        let clock = w as f64 * Simulator::CLOCK_PIN_CAP_FF;
        assert!((idle.switched_capacitance_ff - clock).abs() < 1e-9);
    }
}
