//! Hidden-Markov-Model simulation of combined power state machines —
//! §V of Danese et al. (DATE 2016).
//!
//! After `join`, a PSM may be **non-deterministic**: a state can carry
//! several alternative assertion chains with the same entry proposition,
//! and several initial states may compete at time zero. The paper resolves
//! every such choice statistically with an HMM λ = (A, B, π):
//!
//! * hidden states **Q** — the states of all generated PSMs
//!   ([`build_hmm`] maps them 1:1 from the joined [`Psm`](psm_core::Psm));
//! * observable events **E** — the mined propositions observed each
//!   instant;
//! * `A[i][j]` — from the PSM's transition structure, with self-loop
//!   probabilities matching each state's expected dwell time (geometric
//!   approximation of its mean training-run length);
//! * `B[j][k]` — how often proposition `k` characterises state `j`,
//!   counting the multiplicity introduced by `join` (the paper's b_jk);
//! * `π` — how many training traces started in each initial state.
//!
//! [`HmmSimulator`] then replays fresh observations with the **filtering**
//! approach: the belief over hidden states is propagated through A and
//! conditioned on each observation; the maximum-likelihood state supplies
//! the power estimate. When the belief collapses to zero mass the previous
//! prediction was wrong — a **wrong-state prediction** (the paper's WSP
//! column) — and the simulator re-synchronises from the emission model
//! alone; if even that fails the behaviour is unknown and the simulator
//! holds the last valid state until a known behaviour reappears.
//!
//! # Examples
//!
//! ```
//! use psm_core::{generate_psm, join, MergePolicy};
//! use psm_hmm::{build_hmm, HmmSimulator};
//! use psm_mining::PropositionTrace;
//! use psm_trace::PowerTrace;
//!
//! // Train on an alternating idle/busy workload.
//! let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0]);
//! let delta: PowerTrace = [3.0, 3.0, 3.0, 9.0, 9.0, 3.0, 3.0, 3.0, 9.0, 9.0, 3.0, 3.0]
//!     .into_iter()
//!     .collect();
//! let psm = generate_psm(&gamma, &delta, 0)?;
//! let joined = join(&[psm], &MergePolicy::default());
//!
//! let hmm = build_hmm(&joined, 2);
//! let sim = HmmSimulator::new(&joined, hmm);
//! let obs: Vec<_> = gamma.iter().map(Some).collect();
//! let outcome = sim.run(&obs, &vec![0; obs.len()]);
//! assert_eq!(outcome.wrong_state_predictions, 0);
//! assert!((outcome.estimate[0] - 3.0).abs() < 0.1);
//! assert!((outcome.estimate[3] - 9.0).abs() < 0.1);
//! # Ok::<(), psm_core::CoreError>(())
//! ```

#![deny(missing_docs)]

mod build;
mod model;
mod simulate;

pub use build::build_hmm;
pub use model::{ForwardCache, Hmm};
pub use simulate::{ForwardPass, ForwardState, HmmOutcome, HmmSimulator};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing an HMM.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HmmError {
    /// A probability matrix had inconsistent dimensions.
    DimensionMismatch(&'static str),
    /// A probability row summed to zero and cannot be normalised.
    DegenerateDistribution {
        /// Which matrix ("A", "B" or "pi").
        matrix: &'static str,
        /// Offending row.
        row: usize,
    },
    /// The observation sequence referenced an out-of-range symbol.
    UnknownSymbol {
        /// The symbol index.
        symbol: usize,
        /// Number of symbols the model knows.
        known: usize,
    },
}

impl fmt::Display for HmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmmError::DimensionMismatch(what) => write!(f, "dimension mismatch: {what}"),
            HmmError::DegenerateDistribution { matrix, row } => {
                write!(f, "row {row} of {matrix} sums to zero")
            }
            HmmError::UnknownSymbol { symbol, known } => {
                write!(
                    f,
                    "observation symbol {symbol} out of range (model knows {known})"
                )
            }
        }
    }
}

impl Error for HmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs = [
            HmmError::DimensionMismatch("B rows"),
            HmmError::DegenerateDistribution {
                matrix: "A",
                row: 2,
            },
            HmmError::UnknownSymbol {
                symbol: 9,
                known: 4,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
