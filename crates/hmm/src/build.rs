//! Constructing the HMM λ = (A, B, π) from a joined PSM (paper §V).

use crate::model::Hmm;
use psm_core::Psm;

/// Maps a (joined, possibly non-deterministic) PSM onto an HMM:
///
/// * one hidden state per PSM state;
/// * `A[i][j]`: the PSM's transition structure. Self-loop mass models the
///   state's dwell time — a state entered `w` times covering `n` training
///   instants dwells `n/w` instants on average, so `A[i][i] = 1 − w/n`
///   (the geometric-dwell approximation; exactly 0 for `next` states).
///   The remaining mass is split evenly over the distinct outgoing
///   transitions, following the paper's transition counting. States with
///   no successor are absorbing.
/// * `B[j][k]`: how often proposition `k` appears as the *observed* (left)
///   proposition of an assertion characterising state `j`, counting the
///   multiplicity added by `join` — the paper's b_jk;
/// * `π`: the number of training traces that started in each initial
///   state.
///
/// `num_symbols` is the total proposition count of the mining table (so
/// that symbols never emitted by any state still index valid, zero
/// columns).
///
/// # Panics
///
/// Panics if the PSM has no states or `num_symbols` is zero.
///
/// # Examples
///
/// Derive the HMM of a two-state idle/busy PSM generated from a short
/// training trace:
///
/// ```
/// use psm_core::{generate_psm, join, MergePolicy};
/// use psm_hmm::build_hmm;
/// use psm_mining::PropositionTrace;
/// use psm_trace::PowerTrace;
///
/// // Six idle cycles (proposition 0), four busy ones (proposition 1), twice.
/// let props = [0u32, 0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
/// let power: PowerTrace = props.iter().map(|&p| if p == 0 { 3.0 } else { 9.0 }).collect();
/// let psm = generate_psm(&PropositionTrace::from_indices(&props), &power, 0)?;
/// let joined = join(&[psm], &MergePolicy::default());
///
/// let hmm = build_hmm(&joined, 2);
/// assert_eq!(hmm.num_states(), joined.state_count());
/// assert_eq!(hmm.num_symbols(), 2);
/// // Long dwell times become strong self-loops.
/// assert!(hmm.a()[0][0] > 0.5);
/// # Ok::<(), psm_core::CoreError>(())
/// ```
pub fn build_hmm(psm: &Psm, num_symbols: usize) -> Hmm {
    let m = psm.state_count();
    assert!(m > 0, "cannot build an HMM from an empty PSM");
    assert!(num_symbols > 0, "need at least one observation symbol");

    // --- A ---------------------------------------------------------------
    let mut a = vec![vec![0.0f64; m]; m];
    for (id, state) in psm.states() {
        let i = id.index();
        let n = state.attrs().n() as f64;
        let entries = state.windows().len().max(1) as f64;
        let self_prob = if n > entries { 1.0 - entries / n } else { 0.0 };
        let succ: Vec<usize> = psm.successors(id).map(|t| t.to.index()).collect();
        if succ.is_empty() {
            a[i][i] = 1.0; // absorbing
            continue;
        }
        a[i][i] += self_prob;
        let share = (1.0 - self_prob) / succ.len() as f64;
        for j in succ {
            a[i][j] += share;
        }
    }

    // --- B ---------------------------------------------------------------
    let mut b = vec![vec![0.0f64; num_symbols]; m];
    for (id, state) in psm.states() {
        let i = id.index();
        for chain in state.chains() {
            for part in chain.parts() {
                let k = part.left().index();
                if k < num_symbols {
                    b[i][k] += 1.0;
                }
            }
        }
        // A state whose propositions all fall outside the symbol range
        // would have a zero row; emit uniformly as a safe fallback.
        if b[i].iter().sum::<f64>() <= 0.0 {
            b[i].iter_mut().for_each(|v| *v = 1.0);
        }
    }

    // --- π ---------------------------------------------------------------
    let mut pi = vec![0.0f64; m];
    for (s, count) in psm.initials() {
        pi[s.index()] += *count as f64;
    }
    if pi.iter().sum::<f64>() <= 0.0 {
        pi.iter_mut().for_each(|v| *v = 1.0);
    }

    Hmm::new(a, b, pi).expect("PSM-derived matrices are well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_core::{generate_psm, join, MergePolicy};
    use psm_mining::PropositionTrace;
    use psm_trace::PowerTrace;

    fn alternating_psm() -> Psm {
        // idle(6) busy(4) idle(6) busy(4) idle(2, dropped tail)
        let mut props = Vec::new();
        let mut power = Vec::new();
        for &(id, mw, len) in &[
            (0u32, 3.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 2),
        ] {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        join(&[psm], &MergePolicy::default())
    }

    #[test]
    fn dimensions_match_psm() {
        let psm = alternating_psm();
        let hmm = build_hmm(&psm, 3);
        assert_eq!(hmm.num_states(), psm.state_count());
        assert_eq!(hmm.num_symbols(), 3);
    }

    #[test]
    fn dwell_probabilities_follow_run_lengths() {
        let psm = alternating_psm();
        let hmm = build_hmm(&psm, 3);
        let idle = psm
            .states()
            .find(|(_, s)| (s.attrs().mu() - 3.0).abs() < 0.1)
            .unwrap()
            .0
            .index();
        let busy = psm
            .states()
            .find(|(_, s)| (s.attrs().mu() - 9.0).abs() < 0.1)
            .unwrap()
            .0
            .index();
        // Idle dwells 6 instants per entry → self prob 1 - 2/12 ≈ 0.833.
        assert!((hmm.a()[idle][idle] - (1.0 - 2.0 / 12.0)).abs() < 1e-9);
        // Busy dwells 4 instants per entry → 1 - 2/8 = 0.75.
        assert!((hmm.a()[busy][busy] - 0.75).abs() < 1e-9);
        // Off-diagonal mass flows to the other state.
        assert!(hmm.a()[idle][busy] > 0.0);
        assert!(hmm.a()[busy][idle] > 0.0);
    }

    #[test]
    fn emissions_reflect_join_multiplicity() {
        let psm = alternating_psm();
        let hmm = build_hmm(&psm, 3);
        let idle = psm
            .states()
            .find(|(_, s)| (s.attrs().mu() - 3.0).abs() < 0.1)
            .unwrap()
            .0
            .index();
        // The idle state emits only proposition 0.
        assert!((hmm.b()[idle][0] - 1.0).abs() < 1e-12);
        assert_eq!(hmm.b()[idle][1], 0.0);
    }

    #[test]
    fn pi_counts_initial_traces() {
        let a = alternating_psm();
        let hmm = build_hmm(&a, 3);
        // A single training trace: π is concentrated on its initial state.
        let init = a.initials()[0].0.index();
        assert!((hmm.pi()[init] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn terminal_states_are_absorbing() {
        // A pure chain (no join): the last state has no successor.
        let gamma = PropositionTrace::from_indices(&[0, 0, 1, 1, 2, 2, 3]);
        let delta: PowerTrace = [1.0, 1.0, 5.0, 5.0, 9.0, 9.0, 2.0].into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        let hmm = build_hmm(&psm, 4);
        let last = psm.state_count() - 1;
        assert!((hmm.a()[last][last] - 1.0).abs() < 1e-12);
    }
}
