//! Concurrent simulation of the combined PSMs through the HMM (paper §V).
//!
//! The simulation is **assertion-driven**: the simulator walks the current
//! state's characterising chain exactly like the deterministic simulator of
//! `psm-core` (§III-C), and consults the HMM's filtered belief only where
//! the paper says to — when a choice is non-deterministic (several
//! alternative chains or transitions match the observation) and when a
//! wrong prediction forces a revert/resynchronisation.

use crate::model::{ForwardCache, Hmm};
use psm_core::{Psm, StateId};
use psm_mining::{PropositionId, TemporalPattern};
use psm_trace::PowerTrace;

/// Result of an HMM-driven power estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmOutcome {
    /// Per-instant power estimate (mW).
    pub estimate: PowerTrace,
    /// Instants where the current state's assertion failed and the model
    /// recovered onto a different path — the paper's *wrong-state
    /// predictions*.
    pub wrong_state_predictions: usize,
    /// Instants of behaviour unknown to the model (no state can accept the
    /// observation); the simulator holds the last valid state there.
    pub unknown_instants: usize,
}

impl HmmOutcome {
    /// WSP as a fraction of the trace (Table III's *WSP* column).
    pub fn wsp_rate(&self) -> f64 {
        if self.estimate.is_empty() {
            0.0
        } else {
            self.wrong_state_predictions as f64 / self.estimate.len() as f64
        }
    }

    /// Unknown-behaviour instants as a fraction of the trace.
    pub fn unknown_rate(&self) -> f64 {
        if self.estimate.is_empty() {
            0.0
        } else {
            self.unknown_instants as f64 / self.estimate.len() as f64
        }
    }
}

/// One live alternative inside a state: which chain, which part, and
/// whether a `next` part already consumed its single left-instant.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Alt {
    chain: usize,
    part: usize,
    next_consumed: bool,
}

/// Where the walk currently sits: a state plus the set of its alternative
/// chains still compatible with the observations since entry (paper §V:
/// a joined state is characterised by concurrent assertions, and the
/// simulation watches which of them is being satisfied).
#[derive(Debug, Clone, PartialEq)]
struct Cursor {
    state: StateId,
    alts: Vec<Alt>,
}

/// Resumable state of an assertion-driven estimation run.
///
/// Captures everything [`HmmSimulator::run`] keeps between instants — the
/// filtered belief, the chain cursor, the last valid state and the
/// wrong/unknown counters — so a long trace can be estimated chunk by
/// chunk through [`ForwardPass::resume`] with results bit-identical to a
/// single [`HmmSimulator::run`] over the concatenated observations. The
/// internal buffers are reused across chunks; feeding a chunk allocates
/// nothing inside the state itself.
#[derive(Debug, Clone)]
pub struct ForwardState {
    belief: Vec<f64>,
    scratch: Vec<f64>,
    cursor: Option<Cursor>,
    last_state: StateId,
    wrong: usize,
    unknown: usize,
    instants: usize,
}

impl ForwardState {
    /// Wrong-state predictions accumulated over every resumed chunk.
    pub fn wrong_state_predictions(&self) -> usize {
        self.wrong
    }

    /// Unknown instants accumulated over every resumed chunk.
    pub fn unknown_instants(&self) -> usize {
        self.unknown
    }

    /// Total instants fed through this state so far.
    pub fn instants(&self) -> usize {
        self.instants
    }
}

/// A borrowed view over a PSM/HMM pair that drives the assertion-based
/// walker without owning either — the resumable core behind
/// [`HmmSimulator::run`].
///
/// Where [`HmmSimulator`] owns its HMM (convenient for one-shot runs),
/// `ForwardPass` borrows `(psm, hmm, cache)` so long-lived owners (for
/// example a model registry serving streaming sessions) can drive many
/// concurrent [`ForwardState`]s against one loaded model without cloning
/// per chunk.
#[derive(Debug, Clone, Copy)]
pub struct ForwardPass<'a> {
    psm: &'a Psm,
    hmm: &'a Hmm,
    cache: &'a ForwardCache,
}

impl<'a> ForwardPass<'a> {
    /// Borrows a PSM, its HMM and a [`ForwardCache`] built from that HMM
    /// (see [`Hmm::forward_cache`]).
    ///
    /// # Panics
    ///
    /// Panics when the HMM's state count does not match the PSM's or the
    /// cache was built for a different state space.
    pub fn new(psm: &'a Psm, hmm: &'a Hmm, cache: &'a ForwardCache) -> Self {
        assert_eq!(
            psm.state_count(),
            hmm.num_states(),
            "HMM and PSM must agree on the state space"
        );
        assert_eq!(
            cache.num_states(),
            hmm.num_states(),
            "forward cache must be built from this HMM"
        );
        ForwardPass { psm, hmm, cache }
    }

    /// A fresh [`ForwardState`] positioned before the first instant —
    /// uniform belief, no cursor, the PSM's initial state as the holder.
    ///
    /// # Panics
    ///
    /// Panics when the PSM has no states.
    pub fn begin(&self) -> ForwardState {
        assert!(self.psm.state_count() > 0, "cannot simulate an empty PSM");
        let m = self.psm.state_count();
        ForwardState {
            belief: vec![1.0 / m as f64; m],
            scratch: vec![0.0; m],
            cursor: None,
            last_state: self
                .psm
                .initials()
                .first()
                .map(|(s, _)| *s)
                .unwrap_or(StateId::from_index(0)),
            wrong: 0,
            unknown: 0,
            instants: 0,
        }
    }

    /// Feeds one chunk of observations through `state`, appending one
    /// power estimate per instant to `estimate`.
    ///
    /// Splitting a trace into chunks and resuming each through the same
    /// `ForwardState` produces estimates and counters bit-identical to a
    /// single call over the concatenated slices: the loop body is the
    /// one-shot walker's, and all carried state lives in `state`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn resume(
        &self,
        state: &mut ForwardState,
        observations: &[Option<PropositionId>],
        input_hamming: &[u32],
        estimate: &mut PowerTrace,
    ) {
        assert_eq!(
            observations.len(),
            input_hamming.len(),
            "observations and hamming series must align"
        );
        for (t, obs) in observations.iter().enumerate() {
            match obs {
                None => {
                    state.unknown += 1;
                    state.cursor = None;
                }
                Some(o) => {
                    // Keep the statistical belief in sync with the
                    // evidence; fall back to the emission model when the
                    // transition-constrained update collapses.
                    let sym = o.index();
                    if sym < self.hmm.num_symbols() {
                        let like = self
                            .hmm
                            .filter_step_cached(
                                self.cache,
                                &mut state.belief,
                                sym,
                                &mut state.scratch,
                            )
                            .unwrap_or(0.0);
                        if like <= 0.0 {
                            if let Some(nb) = self.hmm.emission_belief(sym) {
                                state.belief = nb;
                            }
                        }
                    }

                    match state.cursor.as_ref() {
                        Some(cur) => match self.advance(cur, *o, &state.belief) {
                            Some(next) => {
                                state.last_state = next.state;
                                state.cursor = Some(next);
                            }
                            None => {
                                // The chosen state's assertion failed.
                                match self.resync(*o, &state.belief) {
                                    Some(next) => {
                                        state.wrong += 1;
                                        state.last_state = next.state;
                                        state.cursor = Some(next);
                                    }
                                    None => {
                                        state.unknown += 1;
                                        state.cursor = None;
                                    }
                                }
                            }
                        },
                        None => {
                            // (Re-)synchronise on the first acceptable
                            // behaviour; missing targets stay unknown but
                            // are only counted once per instant.
                            if let Some(next) = self.resync(*o, &state.belief) {
                                state.last_state = next.state;
                                state.cursor = Some(next);
                            } else {
                                state.unknown += 1;
                            }
                        }
                    }
                }
            }
            let holder = self.psm.state(state.last_state);
            estimate.push(holder.output().evaluate(input_hamming[t] as f64));
        }
        state.instants += observations.len();
    }

    /// Enters `state`, activating every alternative chain whose entry
    /// proposition is `o` (they stay live concurrently and narrow as
    /// observations arrive).
    fn enter(&self, state: StateId, o: PropositionId) -> Option<Cursor> {
        let alts: Vec<Alt> = self
            .psm
            .state(state)
            .chains()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.entry_proposition() == o)
            .map(|(ci, c)| Alt {
                chain: ci,
                part: 0,
                next_consumed: c.parts()[0].pattern() == TemporalPattern::Next,
            })
            .collect();
        if alts.is_empty() {
            None
        } else {
            Some(Cursor { state, alts })
        }
    }

    /// One step from `cursor` on observation `o`. Every live alternative
    /// either continues (the until run repeats, or the sequence cascades)
    /// or requests an exit; continuing wins over exiting unless the belief
    /// clearly prefers an exit target, and ambiguous exits are ranked by
    /// the belief. `None` signals that no alternative accepts `o`.
    fn advance(&self, cursor: &Cursor, o: PropositionId, belief: &[f64]) -> Option<Cursor> {
        let state = self.psm.state(cursor.state);
        let mut stays: Vec<Alt> = Vec::new();
        let mut wants_exit = false;
        for alt in &cursor.alts {
            let chain = &state.chains()[alt.chain];
            let part = chain.parts()[alt.part];
            if o == part.left() && !alt.next_consumed && part.pattern() == TemporalPattern::Until {
                stays.push(*alt);
                continue;
            }
            if o == part.right() {
                if alt.part + 1 < chain.len() {
                    // Cascade into the next part of the sequence.
                    let next_part = chain.parts()[alt.part + 1];
                    stays.push(Alt {
                        chain: alt.chain,
                        part: alt.part + 1,
                        next_consumed: next_part.pattern() == TemporalPattern::Next,
                    });
                } else {
                    wants_exit = true;
                }
            }
        }

        let exit_target = if wants_exit {
            self.best_exit(cursor.state, o, belief)
        } else {
            None
        };
        match (stays.is_empty(), exit_target) {
            (false, None) => Some(Cursor {
                state: cursor.state,
                alts: stays,
            }),
            (true, Some(c)) => Some(c),
            (false, Some(c)) => {
                // Both staying and exiting are possible: a genuine
                // non-deterministic choice, resolved by the belief.
                if belief[c.state.index()] > belief[cursor.state.index()] {
                    Some(c)
                } else {
                    Some(Cursor {
                        state: cursor.state,
                        alts: stays,
                    })
                }
            }
            (true, None) => None,
        }
    }

    /// The belief-preferred exit of `from` through a transition guarded by
    /// `o`.
    fn best_exit(&self, from: StateId, o: PropositionId, belief: &[f64]) -> Option<Cursor> {
        let mut best: Option<(f64, Cursor)> = None;
        for tr in self.psm.successors(from) {
            if tr.guard != o {
                continue;
            }
            if let Some(c) = self.enter(tr.to, o) {
                let score = belief[tr.to.index()];
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, c));
                }
            }
        }
        best.map(|(_, c)| c)
    }

    /// Finds the best state accepting `o` as an entry, ranked by the
    /// belief — the paper's revert-and-follow-a-different-path.
    fn resync(&self, o: PropositionId, belief: &[f64]) -> Option<Cursor> {
        let mut best: Option<(f64, Cursor)> = None;
        for (id, _) in self.psm.states() {
            if let Some(c) = self.enter(id, o) {
                let score = belief[id.index()];
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, c));
                }
            }
        }
        best.map(|(_, c)| c)
    }
}

/// Simulates a (possibly non-deterministic) joined PSM: chain-cursor
/// walking with HMM-ranked choices.
///
/// Per instant, in order:
///
/// 1. the cursor advances deterministically within its chain (an `until`
///    part repeats on its left proposition, cascades or exits on its right
///    one);
/// 2. an exit with several matching transitions/alternative chains is
///    resolved by the **filtered belief** — the paper's use of the HMM for
///    non-deterministic choices;
/// 3. a failing assertion is a **wrong-state prediction**: the simulator
///    reverts and re-enters the best-ranked state accepting the
///    observation (zeroing nothing permanently — the belief already
///    down-weights the wrong path);
/// 4. if no state accepts the observation the behaviour is **unknown**:
///    the simulator holds the last valid state until a known behaviour
///    reappears.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct HmmSimulator<'a> {
    psm: &'a Psm,
    hmm: Hmm,
    /// Transposed transition/emission layout for the per-instant filter
    /// steps of [`HmmSimulator::run`]; built once at construction.
    cache: ForwardCache,
}

impl<'a> HmmSimulator<'a> {
    /// Pairs a joined PSM with its HMM (usually from
    /// [`build_hmm`](crate::build_hmm)).
    ///
    /// # Panics
    ///
    /// Panics when the HMM's state count does not match the PSM's.
    pub fn new(psm: &'a Psm, hmm: Hmm) -> Self {
        assert_eq!(
            psm.state_count(),
            hmm.num_states(),
            "HMM and PSM must agree on the state space"
        );
        let cache = hmm.forward_cache();
        HmmSimulator { psm, hmm, cache }
    }

    /// The underlying HMM.
    pub fn hmm(&self) -> &Hmm {
        &self.hmm
    }

    /// A [`ForwardPass`] borrowing this simulator's PSM, HMM and cache —
    /// the entry point for resumable, chunked estimation.
    pub fn forward_pass(&self) -> ForwardPass<'_> {
        ForwardPass {
            psm: self.psm,
            hmm: &self.hmm,
            cache: &self.cache,
        }
    }

    /// Replays an observation stream, producing per-instant power
    /// estimates.
    ///
    /// `observations[t]` is the proposition classified at instant `t`
    /// (`None` = behaviour unseen in training); `input_hamming[t]` feeds
    /// regression-calibrated output functions.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the PSM has no states.
    ///
    /// # Examples
    ///
    /// Estimate a fresh workload against a PSM trained on idle/busy runs:
    ///
    /// ```
    /// use psm_core::{generate_psm, join, MergePolicy};
    /// use psm_hmm::{build_hmm, HmmSimulator};
    /// use psm_mining::{PropositionId, PropositionTrace};
    /// use psm_trace::PowerTrace;
    ///
    /// let props = [0u32, 0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
    /// let power: PowerTrace = props.iter().map(|&p| if p == 0 { 3.0 } else { 9.0 }).collect();
    /// let psm = generate_psm(&PropositionTrace::from_indices(&props), &power, 0)?;
    /// let joined = join(&[psm], &MergePolicy::default());
    /// let sim = HmmSimulator::new(&joined, build_hmm(&joined, 2));
    ///
    /// // A workload with different run lengths than training.
    /// let obs: Vec<_> = [0u32, 0, 0, 1, 1, 0, 0, 0]
    ///     .iter()
    ///     .map(|&i| Some(PropositionId::from_index(i)))
    ///     .collect();
    /// let out = sim.run(&obs, &[0; 8]);
    /// assert_eq!(out.estimate.len(), obs.len());
    /// assert!((out.estimate[0] - 3.0).abs() < 0.1, "idle instants near 3 mW");
    /// assert!((out.estimate[3] - 9.0).abs() < 0.1, "busy instants near 9 mW");
    /// # Ok::<(), psm_core::CoreError>(())
    /// ```
    pub fn run(&self, observations: &[Option<PropositionId>], input_hamming: &[u32]) -> HmmOutcome {
        let pass = self.forward_pass();
        let mut state = pass.begin();
        let mut estimate = PowerTrace::with_capacity(observations.len());
        pass.resume(&mut state, observations, input_hamming, &mut estimate);
        HmmOutcome {
            estimate,
            wrong_state_predictions: state.wrong,
            unknown_instants: state.unknown,
        }
    }

    /// Offline (smoothed) power estimation: the posterior state
    /// distribution given the *entire* observation sequence weights each
    /// state's output function — `E[power(t)] = Σ_s γ_t(s) · ω_s(h_t)`.
    ///
    /// Unknown observations are skipped by estimating those stretches with
    /// the neighbouring posterior (the sequence is split at unknowns).
    ///
    /// A note on accuracy: the assertion-driven walker of
    /// [`run`](HmmSimulator::run) exploits the *chain structure* of the
    /// states (cascade positions, entry/exit propositions) that the flat
    /// HMM matrices cannot encode, so on models whose states share
    /// observables the walker is usually sharper than this posterior
    /// average — measured in the workspace's integration tests. Smoothing
    /// shines when states have distinctive emissions and the trace is
    /// analysed after the fact.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn run_smoothed(
        &self,
        observations: &[Option<PropositionId>],
        input_hamming: &[u32],
    ) -> PowerTrace {
        assert_eq!(
            observations.len(),
            input_hamming.len(),
            "observations and hamming series must align"
        );
        let mut estimate = PowerTrace::with_capacity(observations.len());
        let k = self.hmm.num_symbols();
        // Split into maximal known segments; smooth each independently.
        let mut t = 0usize;
        while t < observations.len() {
            match observations[t] {
                None => {
                    // Hold the previous estimate (or the stationary mean).
                    let v = estimate.get(t.wrapping_sub(1)).unwrap_or_else(|| {
                        self.psm.states().map(|(_, s)| s.attrs().mu()).sum::<f64>()
                            / self.psm.state_count() as f64
                    });
                    estimate.push(v);
                    t += 1;
                }
                Some(_) => {
                    let start = t;
                    let mut symbols = Vec::new();
                    while t < observations.len() {
                        match observations[t] {
                            Some(o) if o.index() < k => symbols.push(o.index()),
                            _ => break,
                        }
                        t += 1;
                    }
                    match self.hmm.smooth(&symbols) {
                        Ok(gamma) => {
                            for (off, dist) in gamma.iter().enumerate() {
                                let h = input_hamming[start + off] as f64;
                                let p: f64 = self
                                    .psm
                                    .states()
                                    .map(|(id, s)| dist[id.index()] * s.output().evaluate(h))
                                    .sum();
                                estimate.push(p);
                            }
                        }
                        Err(_) => {
                            // Impossible segment under the model: fall back
                            // to the causal walker for these instants.
                            let seg_obs: Vec<_> = observations[start..t].to_vec();
                            let seg_h = &input_hamming[start..t];
                            let causal = self.run(&seg_obs, seg_h);
                            estimate.extend(causal.estimate.iter());
                        }
                    }
                    // `t` now points at an unknown or the end; the loop
                    // handles it.
                }
            }
        }
        estimate
    }

    /// Offline Viterbi estimation: decodes the single most likely hidden
    /// state path for each known segment of the observation sequence and
    /// reads the power from that path.
    ///
    /// Compared with [`run_smoothed`](HmmSimulator::run_smoothed) this
    /// commits to one path (no posterior blurring); compared with
    /// [`run`](HmmSimulator::run) it is offline and ignores the chain
    /// structure. Unknown stretches hold the previous estimate.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn run_viterbi(
        &self,
        observations: &[Option<PropositionId>],
        input_hamming: &[u32],
    ) -> PowerTrace {
        assert_eq!(
            observations.len(),
            input_hamming.len(),
            "observations and hamming series must align"
        );
        let mut estimate = PowerTrace::with_capacity(observations.len());
        let k = self.hmm.num_symbols();
        let mut t = 0usize;
        while t < observations.len() {
            match observations[t] {
                None => {
                    let v = estimate.get(t.wrapping_sub(1)).unwrap_or(0.0);
                    estimate.push(v);
                    t += 1;
                }
                Some(_) => {
                    let start = t;
                    let mut symbols = Vec::new();
                    while t < observations.len() {
                        match observations[t] {
                            Some(o) if o.index() < k => symbols.push(o.index()),
                            _ => break,
                        }
                        t += 1;
                    }
                    let path = self.hmm.viterbi(&symbols).ok().flatten();
                    match path {
                        Some(states) => {
                            for (off, &s) in states.iter().enumerate() {
                                let h = input_hamming[start + off] as f64;
                                let state = self.psm.state(StateId::from_index(s));
                                estimate.push(state.output().evaluate(h));
                            }
                        }
                        None => {
                            let seg_obs: Vec<_> = observations[start..t].to_vec();
                            let causal = self.run(&seg_obs, &input_hamming[start..t]);
                            estimate.extend(causal.estimate.iter());
                        }
                    }
                }
            }
        }
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hmm;
    use psm_core::{generate_psm, join, MergePolicy};
    use psm_mining::PropositionTrace;

    fn obs(ids: &[u32]) -> Vec<Option<PropositionId>> {
        ids.iter()
            .map(|&i| Some(PropositionId::from_index(i)))
            .collect()
    }

    fn looped_model() -> (Psm, usize) {
        let mut props = Vec::new();
        let mut power = Vec::new();
        for &(id, mw, len) in &[
            (0u32, 3.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 2),
        ] {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        (join(&[psm], &MergePolicy::default()), 2)
    }

    #[test]
    fn tracks_alternating_workload() {
        let (psm, syms) = looped_model();
        let hmm = build_hmm(&psm, syms);
        let sim = HmmSimulator::new(&psm, hmm);
        let o = obs(&[0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0]);
        let out = sim.run(&o, &vec![0; o.len()]);
        assert_eq!(out.wrong_state_predictions, 0);
        assert_eq!(out.unknown_instants, 0);
        for (t, &expect) in [3.0, 3.0, 3.0, 9.0, 9.0, 3.0, 3.0, 9.0, 9.0, 9.0, 3.0, 3.0]
            .iter()
            .enumerate()
        {
            assert!(
                (out.estimate[t] - expect).abs() < 0.1,
                "t={t}: {} vs {expect}",
                out.estimate[t]
            );
        }
    }

    #[test]
    fn unknown_proposition_holds_last_state() {
        let (psm, syms) = looped_model();
        let hmm = build_hmm(&psm, syms);
        let sim = HmmSimulator::new(&psm, hmm);
        let mut o = obs(&[0, 0, 1, 1, 0, 0]);
        o[3] = None;
        let out = sim.run(&o, &vec![0; o.len()]);
        assert_eq!(out.unknown_instants, 1);
        // Held the busy state through the unknown instant.
        assert!((out.estimate[3] - 9.0).abs() < 0.1);
        assert!(out.unknown_rate() > 0.0);
    }

    #[test]
    fn wrong_state_prediction_detected_and_recovered() {
        // Train idle→busy→low→busy→idle…; stimulate with a jump the
        // transition structure does not allow (idle → low directly).
        let mut props = Vec::new();
        let mut power = Vec::new();
        for &(id, mw, len) in &[
            (0u32, 3.0, 6),
            (1, 9.0, 4),
            (2, 1.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 6),
            (1, 9.0, 2),
        ] {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        let joined = join(&[psm], &MergePolicy::default());
        let hmm = build_hmm(&joined, 3);
        let sim = HmmSimulator::new(&joined, hmm);
        // Training never saw p0 followed directly by p2.
        let o = obs(&[0, 0, 0, 2, 2, 2]);
        let out = sim.run(&o, &vec![0; o.len()]);
        assert_eq!(out.wrong_state_predictions, 1);
        assert!(out.wsp_rate() > 0.0);
        // After resynchronisation the low state is tracked correctly.
        assert!((out.estimate[4] - 1.0).abs() < 0.1);
    }

    #[test]
    fn ambiguous_exit_resolved_by_context() {
        // Two behaviours share the "busy" proposition but are reached
        // through different markers, like a key-load vs a block-start:
        //   idle →(lk)→ lk-cycle →(busy)→ keyexp(2 mW) →(idle)→ idle
        //   idle →(st)→ st-cycle →(busy)→ rounds(9 mW) →(idle)→ idle
        // Symbols: 0 idle, 1 lk, 2 st, 3 busy.
        let mut props = Vec::new();
        let mut power = Vec::new();
        let phases: &[(u32, f64, usize)] = &[
            (0, 0.5, 6),
            (1, 0.8, 1),
            (3, 2.0, 8),
            (0, 0.5, 6),
            (2, 0.9, 1),
            (3, 9.0, 8),
            (0, 0.5, 6),
            (1, 0.8, 1),
            (3, 2.0, 8),
            (0, 0.5, 6),
            (2, 0.9, 1),
            (3, 9.0, 8),
            (0, 0.5, 4),
            (1, 0.8, 1),
        ];
        for &(id, mw, len) in phases {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        let joined = join(&[psm], &MergePolicy::default());
        let hmm = build_hmm(&joined, 4);
        let sim = HmmSimulator::new(&joined, hmm);
        // Fresh workload, different run lengths.
        let o = obs(&[0, 0, 0, 2, 3, 3, 3, 3, 0, 0, 1, 3, 3, 3, 0, 0]);
        let out = sim.run(&o, &vec![0; o.len()]);
        assert_eq!(out.wrong_state_predictions, 0, "markers disambiguate");
        // Busy after `st` marker is the 9 mW behaviour…
        assert!((out.estimate[5] - 9.0).abs() < 0.2, "{}", out.estimate[5]);
        // …busy after `lk` marker is the 2 mW behaviour.
        assert!((out.estimate[12] - 2.0).abs() < 0.2, "{}", out.estimate[12]);
    }

    #[test]
    fn chunked_resume_is_bit_identical_to_one_shot() {
        let (psm, syms) = looped_model();
        let hmm = build_hmm(&psm, syms);
        let sim = HmmSimulator::new(&psm, hmm);
        let mut o = obs(&[0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0]);
        o[6] = None; // exercise the unknown path across a chunk boundary
        let h: Vec<u32> = (0..o.len() as u32).collect();
        let oneshot = sim.run(&o, &h);

        // Every split point, including degenerate empty chunks.
        for cut in 0..=o.len() {
            let pass = sim.forward_pass();
            let mut state = pass.begin();
            let mut estimate = PowerTrace::with_capacity(o.len());
            pass.resume(&mut state, &o[..cut], &h[..cut], &mut estimate);
            pass.resume(&mut state, &o[cut..], &h[cut..], &mut estimate);
            let got: Vec<u64> = estimate.iter().map(f64::to_bits).collect();
            let want: Vec<u64> = oneshot.estimate.iter().map(f64::to_bits).collect();
            assert_eq!(got, want, "split at {cut} must not change the estimate");
            assert_eq!(
                state.wrong_state_predictions(),
                oneshot.wrong_state_predictions
            );
            assert_eq!(state.unknown_instants(), oneshot.unknown_instants);
            assert_eq!(state.instants(), o.len());
        }
    }

    #[test]
    fn forward_pass_borrows_an_external_cache() {
        let (psm, syms) = looped_model();
        let hmm = build_hmm(&psm, syms);
        let cache = hmm.forward_cache();
        let pass = ForwardPass::new(&psm, &hmm, &cache);
        let o = obs(&[0, 0, 1, 1, 0]);
        let mut state = pass.begin();
        let mut estimate = PowerTrace::new();
        pass.resume(&mut state, &o, &[0; 5], &mut estimate);
        let sim = HmmSimulator::new(&psm, hmm);
        let oneshot = sim.run(&o, &[0; 5]);
        assert_eq!(estimate.as_slice(), oneshot.estimate.as_slice());
    }

    #[test]
    fn initial_nondeterminism_resolved_by_pi() {
        let mk = |first: u32, idx| {
            let mut props = Vec::new();
            let mut power = Vec::new();
            let other = 1 - first;
            for &(id, mw, len) in &[
                (first, if first == 0 { 3.0 } else { 9.0 }, 5),
                (other, if other == 0 { 3.0 } else { 9.0 }, 5),
                (2u32, 1.0, 2),
            ] {
                for k in 0..len {
                    props.push(id);
                    power.push(mw + 0.002 * (k % 3) as f64);
                }
            }
            let gamma = PropositionTrace::from_indices(&props);
            let delta: PowerTrace = power.into_iter().collect();
            generate_psm(&gamma, &delta, idx).unwrap()
        };
        let joined = join(&[mk(0, 0), mk(0, 1), mk(1, 2)], &MergePolicy::default());
        let hmm = build_hmm(&joined, 3);
        let idle = joined
            .states()
            .find(|(_, s)| (s.attrs().mu() - 3.0).abs() < 0.3)
            .unwrap()
            .0
            .index();
        assert!(hmm.pi()[idle] > 0.5);
    }
}

#[cfg(test)]
mod smoothing_tests {
    use super::*;
    use crate::build::build_hmm;
    use psm_core::{generate_psm, join, MergePolicy};
    use psm_mining::PropositionTrace;

    fn obs(ids: &[u32]) -> Vec<Option<PropositionId>> {
        ids.iter()
            .map(|&i| Some(PropositionId::from_index(i)))
            .collect()
    }

    fn model() -> Psm {
        let mut props = Vec::new();
        let mut power = Vec::new();
        for &(id, mw, len) in &[
            (0u32, 3.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 6),
            (1, 9.0, 4),
            (0, 3.0, 2),
        ] {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        join(&[psm], &MergePolicy::default())
    }

    #[test]
    fn smoothing_matches_the_obvious_workload() {
        let psm = model();
        let hmm = build_hmm(&psm, 2);
        let sim = HmmSimulator::new(&psm, hmm);
        let o = obs(&[0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0]);
        let smoothed = sim.run_smoothed(&o, &vec![0; o.len()]);
        for (t, &expect) in [3.0, 3.0, 3.0, 9.0, 9.0, 3.0, 3.0, 9.0, 9.0, 9.0, 3.0, 3.0]
            .iter()
            .enumerate()
        {
            assert!(
                (smoothed[t] - expect).abs() < 0.2,
                "t={t}: {} vs {expect}",
                smoothed[t]
            );
        }
    }

    #[test]
    fn smoothing_handles_unknown_stretches() {
        let psm = model();
        let hmm = build_hmm(&psm, 2);
        let sim = HmmSimulator::new(&psm, hmm);
        let mut o = obs(&[0, 0, 1, 1, 0, 0]);
        o[3] = None;
        let smoothed = sim.run_smoothed(&o, &vec![0; o.len()]);
        assert_eq!(smoothed.len(), o.len());
        // The unknown instant holds the previous estimate.
        assert!((smoothed[3] - smoothed[2]).abs() < 1e-9);
    }

    #[test]
    fn viterbi_estimation_tracks_the_obvious_workload() {
        let psm = model();
        let hmm = build_hmm(&psm, 2);
        let sim = HmmSimulator::new(&psm, hmm);
        let o = obs(&[0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0]);
        let est = sim.run_viterbi(&o, &vec![0; o.len()]);
        for (t, &expect) in [3.0, 3.0, 3.0, 9.0, 9.0, 3.0, 3.0, 9.0, 9.0, 9.0, 3.0, 3.0]
            .iter()
            .enumerate()
        {
            assert!(
                (est[t] - expect).abs() < 0.2,
                "t={t}: {} vs {expect}",
                est[t]
            );
        }
    }

    #[test]
    fn viterbi_holds_through_unknowns() {
        let psm = model();
        let hmm = build_hmm(&psm, 2);
        let sim = HmmSimulator::new(&psm, hmm);
        let mut o = obs(&[0, 0, 1, 1, 0, 0]);
        o[3] = None;
        let est = sim.run_viterbi(&o, &vec![0; o.len()]);
        assert_eq!(est.len(), o.len());
        assert!((est[3] - est[2]).abs() < 1e-9);
    }

    #[test]
    fn smoothed_estimate_is_at_least_as_good_as_causal_on_replay() {
        let psm = model();
        let hmm = build_hmm(&psm, 2);
        let sim = HmmSimulator::new(&psm, hmm);
        let o = obs(&[0, 0, 0, 0, 1, 1, 1, 0, 0, 1, 1, 0]);
        let reference: Vec<f64> =
            [3.0, 3.0, 3.0, 3.0, 9.0, 9.0, 9.0, 3.0, 3.0, 9.0, 9.0, 3.0].to_vec();
        let causal = sim.run(&o, &vec![0; o.len()]);
        let smoothed = sim.run_smoothed(&o, &vec![0; o.len()]);
        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&reference)
                .map(|(e, r)| (e - r).abs() / r)
                .sum::<f64>()
        };
        assert!(err(smoothed.as_slice()) <= err(causal.estimate.as_slice()) + 1e-9);
    }
}

#[cfg(test)]
mod outcome_tests {
    use super::*;

    #[test]
    fn rates_on_empty_outcomes() {
        let o = HmmOutcome {
            estimate: PowerTrace::new(),
            wrong_state_predictions: 0,
            unknown_instants: 0,
        };
        assert_eq!(o.wsp_rate(), 0.0);
        assert_eq!(o.unknown_rate(), 0.0);
    }

    #[test]
    fn rates_scale_with_counts() {
        let o = HmmOutcome {
            estimate: PowerTrace::from_samples(vec![1.0; 10]),
            wrong_state_predictions: 2,
            unknown_instants: 5,
        };
        assert!((o.wsp_rate() - 0.2).abs() < 1e-12);
        assert!((o.unknown_rate() - 0.5).abs() < 1e-12);
    }
}
