//! A generic discrete hidden Markov model with filtering, Viterbi decoding
//! and Baum–Welch re-estimation.

// The α/β/δ recurrences below keep Rabiner's index notation (α_t(i)·a_ij)
// on purpose; iterator rewrites obscure which matrix axis each loop walks.
#![allow(clippy::needless_range_loop)]

use crate::HmmError;

/// A discrete HMM λ = (A, B, π) over `m` hidden states and `k` observation
/// symbols (paper §V, after Baum & Petrie, 1966).
///
/// Rows of A, B and π are normalised on construction; a zero row is
/// rejected rather than silently patched.
///
/// # Examples
///
/// A two-state weather model:
///
/// ```
/// use psm_hmm::Hmm;
///
/// let hmm = Hmm::new(
///     vec![vec![0.7, 0.3], vec![0.4, 0.6]],        // A
///     vec![vec![0.9, 0.1], vec![0.2, 0.8]],        // B
///     vec![0.5, 0.5],                              // π
/// )?;
/// // After observing symbol 0, state 0 is the better explanation.
/// let mut belief = hmm.initial_belief(0).expect("symbol in range");
/// assert!(belief[0] > belief[1]);
/// hmm.filter_step(&mut belief, 0)?;
/// assert!(belief[0] > 0.8);
/// # Ok::<(), psm_hmm::HmmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    a: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
    pi: Vec<f64>,
}

fn normalize(row: &mut [f64]) -> bool {
    let sum: f64 = row.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return false;
    }
    for v in row {
        *v /= sum;
    }
    true
}

impl Hmm {
    /// Builds a model from raw (non-negative) weight matrices, normalising
    /// every row.
    ///
    /// # Errors
    ///
    /// * [`HmmError::DimensionMismatch`] when shapes disagree;
    /// * [`HmmError::DegenerateDistribution`] when a row sums to zero.
    pub fn new(
        mut a: Vec<Vec<f64>>,
        mut b: Vec<Vec<f64>>,
        mut pi: Vec<f64>,
    ) -> Result<Self, HmmError> {
        let m = pi.len();
        if a.len() != m || b.len() != m {
            return Err(HmmError::DimensionMismatch(
                "A and B need one row per state",
            ));
        }
        if a.iter().any(|r| r.len() != m) {
            return Err(HmmError::DimensionMismatch("A must be square"));
        }
        let k = b.first().map_or(0, Vec::len);
        if b.iter().any(|r| r.len() != k) || k == 0 {
            return Err(HmmError::DimensionMismatch("B rows must share a width"));
        }
        for (i, row) in a.iter_mut().enumerate() {
            if !normalize(row) {
                return Err(HmmError::DegenerateDistribution {
                    matrix: "A",
                    row: i,
                });
            }
        }
        for (i, row) in b.iter_mut().enumerate() {
            if !normalize(row) {
                return Err(HmmError::DegenerateDistribution {
                    matrix: "B",
                    row: i,
                });
            }
        }
        if !normalize(&mut pi) {
            return Err(HmmError::DegenerateDistribution {
                matrix: "pi",
                row: 0,
            });
        }
        Ok(Hmm { a, b, pi })
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.pi.len()
    }

    /// Number of observation symbols.
    pub fn num_symbols(&self) -> usize {
        self.b.first().map_or(0, Vec::len)
    }

    /// Transition matrix.
    pub fn a(&self) -> &[Vec<f64>] {
        &self.a
    }

    /// Emission matrix.
    pub fn b(&self) -> &[Vec<f64>] {
        &self.b
    }

    /// Initial distribution.
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Belief after observing `symbol` at time zero:
    /// `α_i ∝ π_i · b_i(symbol)`. Returns `None` when no state can emit
    /// the symbol from the initial distribution.
    pub fn initial_belief(&self, symbol: usize) -> Option<Vec<f64>> {
        let mut alpha: Vec<f64> = self
            .pi
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.b[i].get(symbol).copied().unwrap_or(0.0))
            .collect();
        normalize(&mut alpha).then_some(alpha)
    }

    /// Belief from the emission model alone (no transition constraint):
    /// `α_i ∝ b_i(symbol)` — the resynchronisation fallback.
    pub fn emission_belief(&self, symbol: usize) -> Option<Vec<f64>> {
        let mut alpha: Vec<f64> = self
            .b
            .iter()
            .map(|row| row.get(symbol).copied().unwrap_or(0.0))
            .collect();
        normalize(&mut alpha).then_some(alpha)
    }

    /// One forward-filtering step in place:
    /// `α'_j ∝ (Σ_i α_i A_ij) · b_j(symbol)`.
    ///
    /// Returns the (pre-normalisation) likelihood of the observation; a
    /// zero return means the previous belief cannot explain the symbol
    /// (the wrong-state-prediction trigger) and leaves `belief` unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::UnknownSymbol`] for out-of-range symbols, and
    /// [`HmmError::DimensionMismatch`] when `belief` has the wrong length.
    pub fn filter_step(&self, belief: &mut [f64], symbol: usize) -> Result<f64, HmmError> {
        let mut scratch = vec![0.0; self.num_states()];
        self.filter_step_scratch(belief, symbol, &mut scratch)
    }

    /// Allocation-free variant of [`Hmm::filter_step`] for hot loops:
    /// `scratch` must have one slot per state and is clobbered.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hmm::filter_step`], plus a dimension error when
    /// `scratch` has the wrong length.
    pub fn filter_step_scratch(
        &self,
        belief: &mut [f64],
        symbol: usize,
        scratch: &mut [f64],
    ) -> Result<f64, HmmError> {
        let m = self.num_states();
        if belief.len() != m || scratch.len() != m {
            return Err(HmmError::DimensionMismatch("belief length"));
        }
        if symbol >= self.num_symbols() {
            return Err(HmmError::UnknownSymbol {
                symbol,
                known: self.num_symbols(),
            });
        }
        for (j, nj) in scratch.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..m {
                acc += belief[i] * self.a[i][j];
            }
            *nj = acc * self.b[j][symbol];
        }
        let likelihood: f64 = scratch.iter().sum();
        if likelihood > 0.0 {
            for (dst, src) in belief.iter_mut().zip(scratch.iter()) {
                *dst = src / likelihood;
            }
        }
        Ok(likelihood)
    }

    /// Precomputes the cache-friendly forward-pass layout of this model:
    /// A transposed into one flat column-major block and B transposed per
    /// symbol, so [`Hmm::filter_step_cached`] reads both contiguously.
    ///
    /// The cache holds exactly the same `f64` values as the matrices —
    /// no reassociation, no log transform — so a cached filter step is
    /// bit-for-bit identical to [`Hmm::filter_step_scratch`] (the
    /// equivalence suite asserts this). Build it once per simulation and
    /// reuse it across steps; it is invalidated by nothing (an [`Hmm`] is
    /// immutable after construction).
    ///
    /// # Examples
    ///
    /// ```
    /// use psm_hmm::Hmm;
    ///
    /// let hmm = Hmm::new(
    ///     vec![vec![0.7, 0.3], vec![0.4, 0.6]],
    ///     vec![vec![0.9, 0.1], vec![0.2, 0.8]],
    ///     vec![0.5, 0.5],
    /// )?;
    /// let cache = hmm.forward_cache();
    ///
    /// // The cached step reproduces the reference step bit-for-bit.
    /// let mut reference = hmm.initial_belief(0).expect("symbol in range");
    /// let mut cached = reference.clone();
    /// let mut scratch = vec![0.0; hmm.num_states()];
    /// let l1 = hmm.filter_step_scratch(&mut reference, 1, &mut scratch)?;
    /// let l2 = hmm.filter_step_cached(&cache, &mut cached, 1, &mut scratch)?;
    /// assert_eq!(l1.to_bits(), l2.to_bits());
    /// assert_eq!(reference[0].to_bits(), cached[0].to_bits());
    /// # Ok::<(), psm_hmm::HmmError>(())
    /// ```
    pub fn forward_cache(&self) -> ForwardCache {
        let m = self.num_states();
        let k = self.num_symbols();
        let mut at = vec![0.0f64; m * m];
        for (i, row) in self.a.iter().enumerate() {
            for (j, &aij) in row.iter().enumerate() {
                at[j * m + i] = aij;
            }
        }
        let mut bt = vec![0.0f64; k * m];
        for (j, row) in self.b.iter().enumerate() {
            for (s, &bjs) in row.iter().enumerate() {
                bt[s * m + j] = bjs;
            }
        }
        ForwardCache { at, bt, m, k }
    }

    /// One forward-filtering step through a [`ForwardCache`] — the hot
    /// loop of [`crate::HmmSimulator`]. Semantically identical to
    /// [`Hmm::filter_step_scratch`] (same summation order over the same
    /// values, hence bitwise-equal results), but the inner product walks
    /// one contiguous cache column instead of striding across `m` row
    /// vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hmm::filter_step_scratch`], plus a dimension
    /// error when `cache` was built from a different-shaped model.
    pub fn filter_step_cached(
        &self,
        cache: &ForwardCache,
        belief: &mut [f64],
        symbol: usize,
        scratch: &mut [f64],
    ) -> Result<f64, HmmError> {
        let m = self.num_states();
        if belief.len() != m || scratch.len() != m {
            return Err(HmmError::DimensionMismatch("belief length"));
        }
        if cache.m != m || cache.k != self.num_symbols() {
            return Err(HmmError::DimensionMismatch(
                "forward cache built from a different model",
            ));
        }
        if symbol >= self.num_symbols() {
            return Err(HmmError::UnknownSymbol {
                symbol,
                known: self.num_symbols(),
            });
        }
        let bcol = &cache.bt[symbol * m..(symbol + 1) * m];
        for (j, nj) in scratch.iter_mut().enumerate() {
            let col = &cache.at[j * m..(j + 1) * m];
            let mut acc = 0.0;
            // Same i-order as filter_step_scratch: the sum reassociates
            // nothing, keeping the byte-identity contract.
            for i in 0..m {
                acc += belief[i] * col[i];
            }
            *nj = acc * bcol[j];
        }
        let likelihood: f64 = scratch.iter().sum();
        if likelihood > 0.0 {
            for (dst, src) in belief.iter_mut().zip(scratch.iter()) {
                *dst = src / likelihood;
            }
        }
        Ok(likelihood)
    }

    /// Log-likelihood of a full observation sequence under the model.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::UnknownSymbol`] for out-of-range symbols.
    /// Sequences impossible under the model yield `-inf`.
    pub fn log_likelihood(&self, observations: &[usize]) -> Result<f64, HmmError> {
        let Some((&first, rest)) = observations.split_first() else {
            return Ok(0.0);
        };
        if first >= self.num_symbols() {
            return Err(HmmError::UnknownSymbol {
                symbol: first,
                known: self.num_symbols(),
            });
        }
        let mut alpha: Vec<f64> = self
            .pi
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.b[i][first])
            .collect();
        let mut log_like = {
            let s: f64 = alpha.iter().sum();
            if s <= 0.0 {
                return Ok(f64::NEG_INFINITY);
            }
            for v in &mut alpha {
                *v /= s;
            }
            s.ln()
        };
        let mut scratch = vec![0.0f64; self.num_states()];
        for &o in rest {
            let l = self.filter_step_scratch(&mut alpha, o, &mut scratch)?;
            if l <= 0.0 {
                return Ok(f64::NEG_INFINITY);
            }
            log_like += l.ln();
        }
        Ok(log_like)
    }

    /// Most likely hidden-state sequence (Viterbi decoding), or `None` when
    /// the sequence is impossible under the model.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::UnknownSymbol`] for out-of-range symbols.
    pub fn viterbi(&self, observations: &[usize]) -> Result<Option<Vec<usize>>, HmmError> {
        if observations.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let m = self.num_states();
        for &o in observations {
            if o >= self.num_symbols() {
                return Err(HmmError::UnknownSymbol {
                    symbol: o,
                    known: self.num_symbols(),
                });
            }
        }
        // Log-space to avoid underflow on long traces.
        let log = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };
        // The recurrence reads log(a[i][j]) and log(b[j][o]) once per
        // instant; on long traces that is n·m² (resp. n·m) `ln` calls for
        // matrices that never change. Cache both log matrices up front —
        // log_at column-major so the inner max walks contiguously — and
        // ping-pong two delta rows instead of allocating per instant.
        // Each element is transformed by the same single `ln`, so scores
        // and ties are bit-identical to the uncached recurrence.
        let k = self.num_symbols();
        let mut log_at = vec![f64::NEG_INFINITY; m * m];
        for i in 0..m {
            for j in 0..m {
                log_at[j * m + i] = log(self.a[i][j]);
            }
        }
        let mut log_bt = vec![f64::NEG_INFINITY; k * m];
        for j in 0..m {
            for s in 0..k {
                log_bt[s * m + j] = log(self.b[j][s]);
            }
        }
        let mut delta: Vec<f64> = (0..m)
            .map(|i| log(self.pi[i]) + log_bt[observations[0] * m + i])
            .collect();
        let mut next = vec![f64::NEG_INFINITY; m];
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(observations.len());
        for &o in &observations[1..] {
            let mut arg = vec![0usize; m];
            let log_b_col = &log_bt[o * m..(o + 1) * m];
            for j in 0..m {
                let col = &log_at[j * m..(j + 1) * m];
                let mut best = f64::NEG_INFINITY;
                for i in 0..m {
                    let cand = delta[i] + col[i];
                    if cand > best {
                        best = cand;
                        arg[j] = i;
                    }
                }
                next[j] = best + log_b_col[j];
            }
            back.push(arg);
            std::mem::swap(&mut delta, &mut next);
        }
        let (mut best, score) = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .expect("m > 0 by construction");
        if score == f64::NEG_INFINITY {
            return Ok(None);
        }
        let mut path = vec![best; observations.len()];
        for (t, arg) in back.iter().enumerate().rev() {
            best = arg[best];
            path[t] = best;
        }
        Ok(Some(path))
    }

    /// Forward–backward smoothing: the posterior distribution over hidden
    /// states at every instant, given the *whole* observation sequence.
    ///
    /// Filtering (the paper's §V choice) is causal and suits live
    /// co-simulation; smoothing is the natural offline upgrade when the
    /// full trace is available — each instant's state estimate also uses
    /// the future observations.
    ///
    /// # Errors
    ///
    /// * [`HmmError::UnknownSymbol`] for out-of-range symbols;
    /// * [`HmmError::DegenerateDistribution`] when the sequence is
    ///   impossible under the model.
    pub fn smooth(&self, observations: &[usize]) -> Result<Vec<Vec<f64>>, HmmError> {
        let m = self.num_states();
        let n = observations.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        for &o in observations {
            if o >= self.num_symbols() {
                return Err(HmmError::UnknownSymbol {
                    symbol: o,
                    known: self.num_symbols(),
                });
            }
        }
        // Scaled forward pass.
        let mut alpha = vec![vec![0.0f64; m]; n];
        let mut scale = vec![0.0f64; n];
        for i in 0..m {
            alpha[0][i] = self.pi[i] * self.b[i][observations[0]];
        }
        scale[0] = alpha[0].iter().sum();
        if scale[0] <= 0.0 {
            return Err(HmmError::DegenerateDistribution {
                matrix: "A",
                row: 0,
            });
        }
        alpha[0].iter_mut().for_each(|v| *v /= scale[0]);
        for t in 1..n {
            for j in 0..m {
                let mut acc = 0.0;
                for i in 0..m {
                    acc += alpha[t - 1][i] * self.a[i][j];
                }
                alpha[t][j] = acc * self.b[j][observations[t]];
            }
            scale[t] = alpha[t].iter().sum();
            if scale[t] <= 0.0 {
                return Err(HmmError::DegenerateDistribution {
                    matrix: "A",
                    row: t,
                });
            }
            alpha[t].iter_mut().for_each(|v| *v /= scale[t]);
        }
        // Scaled backward pass and posterior.
        let mut beta = vec![1.0f64; m];
        let mut gamma = vec![vec![0.0f64; m]; n];
        for i in 0..m {
            gamma[n - 1][i] = alpha[n - 1][i];
        }
        for t in (0..n - 1).rev() {
            let mut next_beta = vec![0.0f64; m];
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..m {
                    acc += self.a[i][j] * self.b[j][observations[t + 1]] * beta[j];
                }
                next_beta[i] = acc / scale[t + 1];
            }
            beta = next_beta;
            let mut norm = 0.0;
            for i in 0..m {
                gamma[t][i] = alpha[t][i] * beta[i];
                norm += gamma[t][i];
            }
            if norm > 0.0 {
                gamma[t].iter_mut().for_each(|v| *v /= norm);
            }
        }
        Ok(gamma)
    }

    /// One Baum–Welch re-estimation pass over an observation sequence,
    /// returning the updated model and the sequence log-likelihood under
    /// the *old* model. Iterating this is the classic EM training loop —
    /// provided as an extension for refining PSM-derived models on held-out
    /// traces.
    ///
    /// # Errors
    ///
    /// * [`HmmError::UnknownSymbol`] for out-of-range symbols;
    /// * [`HmmError::DegenerateDistribution`] when the sequence is
    ///   impossible under the model.
    pub fn baum_welch_step(&self, observations: &[usize]) -> Result<(Hmm, f64), HmmError> {
        let m = self.num_states();
        let k = self.num_symbols();
        let n = observations.len();
        if n == 0 {
            return Ok((self.clone(), 0.0));
        }
        for &o in observations {
            if o >= k {
                return Err(HmmError::UnknownSymbol {
                    symbol: o,
                    known: k,
                });
            }
        }
        // Scaled forward pass.
        let mut alpha = vec![vec![0.0f64; m]; n];
        let mut scale = vec![0.0f64; n];
        for i in 0..m {
            alpha[0][i] = self.pi[i] * self.b[i][observations[0]];
        }
        scale[0] = alpha[0].iter().sum();
        if scale[0] <= 0.0 {
            return Err(HmmError::DegenerateDistribution {
                matrix: "A",
                row: 0,
            });
        }
        for v in &mut alpha[0] {
            *v /= scale[0];
        }
        for t in 1..n {
            for j in 0..m {
                let mut acc = 0.0;
                for i in 0..m {
                    acc += alpha[t - 1][i] * self.a[i][j];
                }
                alpha[t][j] = acc * self.b[j][observations[t]];
            }
            scale[t] = alpha[t].iter().sum();
            if scale[t] <= 0.0 {
                return Err(HmmError::DegenerateDistribution {
                    matrix: "A",
                    row: t,
                });
            }
            for v in &mut alpha[t] {
                *v /= scale[t];
            }
        }
        // Scaled backward pass.
        let mut beta = vec![vec![1.0f64; m]; n];
        for t in (0..n - 1).rev() {
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..m {
                    acc += self.a[i][j] * self.b[j][observations[t + 1]] * beta[t + 1][j];
                }
                beta[t][i] = acc / scale[t + 1];
            }
        }
        // Re-estimate.
        let mut new_a = vec![vec![0.0f64; m]; m];
        let mut new_b = vec![vec![0.0f64; k]; m];
        let mut gamma0 = vec![0.0f64; m];
        for t in 0..n {
            for i in 0..m {
                let g = alpha[t][i] * beta[t][i];
                new_b[i][observations[t]] += g;
                if t == 0 {
                    gamma0[i] = g;
                }
            }
        }
        for t in 0..n - 1 {
            for i in 0..m {
                for j in 0..m {
                    new_a[i][j] += alpha[t][i]
                        * self.a[i][j]
                        * self.b[j][observations[t + 1]]
                        * beta[t + 1][j]
                        / scale[t + 1];
                }
            }
        }
        // Rows that were never visited keep their previous distribution.
        for i in 0..m {
            if new_a[i].iter().sum::<f64>() <= 0.0 {
                new_a[i] = self.a[i].clone();
            }
            if new_b[i].iter().sum::<f64>() <= 0.0 {
                new_b[i] = self.b[i].clone();
            }
        }
        if gamma0.iter().sum::<f64>() <= 0.0 {
            gamma0 = self.pi.clone();
        }
        let log_like: f64 = scale.iter().map(|s| s.ln()).sum();
        Ok((Hmm::new(new_a, new_b, gamma0)?, log_like))
    }
}

/// Precomputed read-only layout for the forward pass, built by
/// [`Hmm::forward_cache`].
///
/// Holds the transition matrix transposed into one flat column-major
/// block (`at[j*m + i] = a[i][j]`) and the emission matrix transposed per
/// symbol (`bt[s*m + j] = b[j][s]`). A filter step then reads exactly one
/// contiguous column per destination state plus one contiguous emission
/// slice, instead of striding across `m` separately-boxed row vectors.
/// The values are copied verbatim, so cached and uncached filtering are
/// bit-for-bit equal.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Column-major transition matrix: `at[j*m + i] = a[i][j]`.
    at: Vec<f64>,
    /// Symbol-major emission matrix: `bt[s*m + j] = b[j][s]`.
    bt: Vec<f64>,
    /// Number of hidden states the cache was built for.
    m: usize,
    /// Number of observation symbols the cache was built for.
    k: usize,
}

impl ForwardCache {
    /// Number of hidden states of the originating model.
    pub fn num_states(&self) -> usize {
        self.m
    }

    /// Number of observation symbols of the originating model.
    pub fn num_symbols(&self) -> usize {
        self.k
    }
}

/// The serialised model stores the already-normalised matrices. Loading
/// validates shapes and row sums directly instead of renormalising through
/// [`Hmm::new`], so a save/load cycle reproduces the stored probabilities
/// bit-for-bit (renormalising an already-normalised row can perturb the
/// last ulp).
impl psm_persist::Persist for Hmm {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        JsonValue::obj([
            ("a", self.a.to_json()),
            ("b", self.b.to_json()),
            ("pi", self.pi.to_json()),
        ])
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        use psm_persist::PersistError;
        let a: Vec<Vec<f64>> = Vec::from_json(v.field("a")?)?;
        let b: Vec<Vec<f64>> = Vec::from_json(v.field("b")?)?;
        let pi: Vec<f64> = Vec::from_json(v.field("pi")?)?;
        let m = pi.len();
        if a.len() != m || b.len() != m || a.iter().any(|r| r.len() != m) {
            return Err(PersistError::schema("HMM matrix shapes disagree"));
        }
        let k = b.first().map_or(0, Vec::len);
        if k == 0 || b.iter().any(|r| r.len() != k) {
            return Err(PersistError::schema("HMM emission rows must share a width"));
        }
        let is_distribution = |row: &[f64]| {
            let sum: f64 = row.iter().sum();
            row.iter().all(|&p| (0.0..=1.0).contains(&p)) && (sum - 1.0).abs() < 1e-6
        };
        if !a.iter().all(|r| is_distribution(r))
            || !b.iter().all(|r| is_distribution(r))
            || !is_distribution(&pi)
        {
            return Err(PersistError::schema(
                "HMM rows must be probability distributions",
            ));
        }
        Ok(Hmm { a, b, pi })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Hmm {
        Hmm::new(
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.9, 0.1], vec![0.2, 0.8]],
            vec![0.6, 0.4],
        )
        .unwrap()
    }

    #[test]
    fn construction_normalises() {
        let h = Hmm::new(
            vec![vec![2.0, 2.0], vec![1.0, 3.0]],
            vec![vec![3.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!((h.a()[0][0] - 0.5).abs() < 1e-12);
        assert!((h.b()[0][0] - 0.75).abs() < 1e-12);
        assert!((h.pi()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_shapes_and_zero_rows() {
        assert!(matches!(
            Hmm::new(vec![vec![1.0]], vec![vec![1.0]], vec![1.0, 1.0]),
            Err(HmmError::DimensionMismatch(_))
        ));
        assert!(matches!(
            Hmm::new(
                vec![vec![0.0, 0.0], vec![1.0, 1.0]],
                vec![vec![1.0], vec![1.0]],
                vec![1.0, 1.0]
            ),
            Err(HmmError::DegenerateDistribution {
                matrix: "A",
                row: 0
            })
        ));
    }

    #[test]
    fn filtering_tracks_evidence() {
        let h = toy();
        let mut belief = h.initial_belief(0).unwrap();
        for _ in 0..5 {
            h.filter_step(&mut belief, 0).unwrap();
        }
        assert!(belief[0] > 0.85, "state 0 explains a run of symbol 0");
        for _ in 0..5 {
            h.filter_step(&mut belief, 1).unwrap();
        }
        assert!(belief[1] > 0.8, "state 1 explains a run of symbol 1");
        let s: f64 = belief.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "belief stays normalised");
    }

    #[test]
    fn filter_zero_likelihood_leaves_belief() {
        // State 1 cannot emit symbol 0 at all.
        let h = Hmm::new(
            vec![vec![0.0, 1.0], vec![0.0, 1.0]], // everything moves to state 1
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 0.0],
        )
        .unwrap();
        let mut belief = h.initial_belief(0).unwrap();
        let before = belief.clone();
        let like = h.filter_step(&mut belief, 0).unwrap();
        assert_eq!(like, 0.0);
        assert_eq!(belief, before);
    }

    #[test]
    fn viterbi_decodes_obvious_runs() {
        let h = toy();
        let path = h.viterbi(&[0, 0, 0, 1, 1, 1]).unwrap().unwrap();
        assert_eq!(path, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn viterbi_impossible_sequence() {
        let h = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 0.0],
        )
        .unwrap();
        // Starting in state 0 (emitting 0) can never emit symbol 1.
        assert_eq!(h.viterbi(&[0, 1]).unwrap(), None);
    }

    #[test]
    fn log_likelihood_ranks_sequences() {
        let h = toy();
        let typical = h.log_likelihood(&[0, 0, 0, 1, 1, 1]).unwrap();
        let atypical = h.log_likelihood(&[1, 0, 1, 0, 1, 0]).unwrap();
        assert!(typical > atypical);
        assert_eq!(h.log_likelihood(&[]).unwrap(), 0.0);
    }

    #[test]
    fn unknown_symbol_rejected() {
        let h = toy();
        assert!(matches!(
            h.log_likelihood(&[5]),
            Err(HmmError::UnknownSymbol {
                symbol: 5,
                known: 2
            })
        ));
        let mut b = h.initial_belief(0).unwrap();
        assert!(h.filter_step(&mut b, 9).is_err());
    }

    #[test]
    fn hmm_round_trips_bit_for_bit() {
        use psm_persist::{JsonValue, Persist};
        let h = Hmm::new(
            vec![
                vec![1.0, 2.0, 0.5],
                vec![0.1, 0.2, 0.3],
                vec![5.0, 1.0, 1.0],
            ],
            vec![vec![0.3, 0.7], vec![0.9, 0.1], vec![0.5, 0.5]],
            vec![0.2, 0.5, 0.3],
        )
        .unwrap();
        let text = h.to_json().render();
        let back = Hmm::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        for i in 0..h.num_states() {
            for j in 0..h.num_states() {
                assert_eq!(back.a()[i][j].to_bits(), h.a()[i][j].to_bits());
            }
        }
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn hmm_load_rejects_non_distributions() {
        use psm_persist::{JsonValue, Persist};
        let doc = JsonValue::parse(r#"{"a":[[0.5,0.5],[2.0,0.0]],"b":[[1],[1]],"pi":[0.5,0.5]}"#)
            .unwrap();
        assert!(Hmm::from_json(&doc).is_err());
        let doc = JsonValue::parse(r#"{"a":[[1]],"b":[[1],[1]],"pi":[1]}"#).unwrap();
        assert!(Hmm::from_json(&doc).is_err());
    }

    #[test]
    fn baum_welch_improves_likelihood() {
        // Start from a deliberately mediocre model and train on data that
        // clearly alternates long runs.
        let h = Hmm::new(
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![vec![0.6, 0.4], vec![0.4, 0.6]],
            vec![0.5, 0.5],
        )
        .unwrap();
        let obs: Vec<usize> = (0..60).map(|t| usize::from((t / 10) % 2 == 1)).collect();
        let mut model = h;
        let mut last = f64::NEG_INFINITY;
        for _ in 0..15 {
            let (next, ll) = model.baum_welch_step(&obs).unwrap();
            assert!(
                ll >= last - 1e-9,
                "EM must not decrease the likelihood ({ll} < {last})"
            );
            last = ll;
            model = next;
        }
        // The trained model prefers staying in a state (long runs).
        assert!(model.a()[0][0] > 0.7);
        assert!(model.a()[1][1] > 0.7);
    }
}
