//! Property-based tests of the HMM layer.

use proptest::prelude::*;
use psm_hmm::Hmm;

fn arb_hmm() -> impl Strategy<Value = Hmm> {
    (2usize..8, 2usize..6)
        .prop_flat_map(|(m, k)| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(0.01f64..1.0, m),
                    m,
                ),
                proptest::collection::vec(
                    proptest::collection::vec(0.01f64..1.0, k),
                    m,
                ),
                proptest::collection::vec(0.01f64..1.0, m),
            )
        })
        .prop_map(|(a, b, pi)| Hmm::new(a, b, pi).expect("strictly positive weights"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn construction_normalises_all_rows(hmm in arb_hmm()) {
        for row in hmm.a() {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for row in hmm.b() {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        prop_assert!((hmm.pi().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn filtering_preserves_normalisation(hmm in arb_hmm(),
                                         obs in proptest::collection::vec(0usize..4, 1..60)) {
        let k = hmm.num_symbols();
        let mut belief = match hmm.initial_belief(obs[0] % k) {
            Some(b) => b,
            None => return Ok(()),
        };
        for &o in &obs[1..] {
            hmm.filter_step(&mut belief, o % k).expect("in range");
            let sum: f64 = belief.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "belief sum {}", sum);
            prop_assert!(belief.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn viterbi_path_has_positive_probability(hmm in arb_hmm(),
                                             obs in proptest::collection::vec(0usize..4, 1..30)) {
        let k = hmm.num_symbols();
        let obs: Vec<usize> = obs.into_iter().map(|o| o % k).collect();
        // Strictly positive matrices: a path always exists and scores the
        // observations with non-zero probability.
        let path = hmm.viterbi(&obs).expect("symbols in range").expect("positive model");
        prop_assert_eq!(path.len(), obs.len());
        prop_assert!(path.iter().all(|&s| s < hmm.num_states()));
        let ll = hmm.log_likelihood(&obs).expect("symbols in range");
        prop_assert!(ll.is_finite());
    }

    #[test]
    fn baum_welch_never_decreases_likelihood(hmm in arb_hmm(),
                                             obs in proptest::collection::vec(0usize..4, 4..40)) {
        let k = hmm.num_symbols();
        let obs: Vec<usize> = obs.into_iter().map(|o| o % k).collect();
        let mut model = hmm;
        let mut last = f64::NEG_INFINITY;
        for _ in 0..4 {
            let (next, ll) = model.baum_welch_step(&obs).expect("positive model");
            prop_assert!(ll >= last - 1e-6, "EM decreased: {} -> {}", last, ll);
            last = ll;
            model = next;
        }
    }
}
