//! Randomised property tests of the HMM layer, driven by the workspace
//! PRNG so runs are deterministic and offline.

use psm_hmm::Hmm;
use psm_prng::Prng;

const CASES: usize = 128;

fn random_hmm(rng: &mut Prng) -> Hmm {
    let m = 2 + rng.range_usize(0..6);
    let k = 2 + rng.range_usize(0..4);
    let row =
        |rng: &mut Prng, n: usize| -> Vec<f64> { (0..n).map(|_| rng.f64_in(0.01, 1.0)).collect() };
    let a: Vec<Vec<f64>> = (0..m).map(|_| row(rng, m)).collect();
    let b: Vec<Vec<f64>> = (0..m).map(|_| row(rng, k)).collect();
    let pi = row(rng, m);
    Hmm::new(a, b, pi).expect("strictly positive weights")
}

fn random_obs(rng: &mut Prng, k: usize, lo: usize, hi: usize) -> Vec<usize> {
    let n = lo + rng.range_usize(0..hi - lo);
    (0..n).map(|_| rng.range_usize(0..k)).collect()
}

#[test]
fn construction_normalises_all_rows() {
    let mut rng = Prng::seed_from_u64(0x4447_0001);
    for _ in 0..CASES {
        let hmm = random_hmm(&mut rng);
        for row in hmm.a() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for row in hmm.b() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!((hmm.pi().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn filtering_preserves_normalisation() {
    let mut rng = Prng::seed_from_u64(0x4447_0002);
    for _ in 0..CASES {
        let hmm = random_hmm(&mut rng);
        let k = hmm.num_symbols();
        let obs = random_obs(&mut rng, k, 1, 60);
        let Some(mut belief) = hmm.initial_belief(obs[0]) else {
            continue;
        };
        for &o in &obs[1..] {
            hmm.filter_step(&mut belief, o).expect("in range");
            let sum: f64 = belief.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "belief sum {}", sum);
            assert!(belief.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }
}

#[test]
fn viterbi_path_has_positive_probability() {
    let mut rng = Prng::seed_from_u64(0x4447_0003);
    for _ in 0..CASES {
        let hmm = random_hmm(&mut rng);
        let obs = random_obs(&mut rng, hmm.num_symbols(), 1, 30);
        // Strictly positive matrices: a path always exists and scores the
        // observations with non-zero probability.
        let path = hmm
            .viterbi(&obs)
            .expect("symbols in range")
            .expect("positive model");
        assert_eq!(path.len(), obs.len());
        assert!(path.iter().all(|&s| s < hmm.num_states()));
        let ll = hmm.log_likelihood(&obs).expect("symbols in range");
        assert!(ll.is_finite());
    }
}

#[test]
fn baum_welch_never_decreases_likelihood() {
    let mut rng = Prng::seed_from_u64(0x4447_0004);
    for _ in 0..CASES {
        let hmm = random_hmm(&mut rng);
        let obs = random_obs(&mut rng, hmm.num_symbols(), 4, 40);
        let mut model = hmm;
        let mut last = f64::NEG_INFINITY;
        for _ in 0..4 {
            let (next, ll) = model.baum_welch_step(&obs).expect("positive model");
            assert!(ll >= last - 1e-6, "EM decreased: {} -> {}", last, ll);
            last = ll;
            model = next;
        }
    }
}
