//! Per-stage telemetry of the pipeline and the estimation service.
//!
//! Every run of the training or estimation engine — and every lifetime of
//! the `psmd` daemon — can record, per pipeline stage, *spans* (what ran,
//! when it started relative to the run, how long it took), *counters* (how
//! many states the optimiser merged, how often estimation lost sync, how
//! many requests each opcode served) and *gauges* (instantaneous values
//! such as queue depth or batch size, tracked as last + high-water mark).
//! The result is a [`TelemetryReport`] that renders as an aligned text
//! table or as JSON — the raw material of the paper's Table II/III timing
//! columns and of the daemon's `STATS` opcode.
//!
//! [`Telemetry`] is thread-safe: the parallel engine's workers record spans
//! concurrently while fanning captures and per-trace generation across
//! threads, and the service's worker pool records request spans while
//! connection threads bump opcode counters.

#![deny(missing_docs)]

use psm_analyze::{AnalysisReport, Diagnostic};
use psm_persist::JsonValue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The pipeline stages the engine instruments (paper Fig. 1, plus the
/// estimation step of Table III and the `psmd` service loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Static validation of pipeline artifacts (netlist, traces, model).
    Validate,
    /// Golden gate-level capture of paired functional + power traces.
    Capture,
    /// Temporal-assertion mining over the functional traces.
    Mining,
    /// Chain-PSM generation, one per training trace.
    Generation,
    /// Intra-trace state merging (`simplify`).
    Simplify,
    /// Inter-trace model union (`join`).
    Join,
    /// Hamming-regression calibration of data-dependent states.
    Calibrate,
    /// HMM construction from the combined PSM.
    HmmBuild,
    /// PSM/HMM power estimation of a workload.
    Estimation,
    /// Service-side work outside estimation proper: registry (re)loads,
    /// request decoding, response writing.
    Serve,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Validate,
        Stage::Capture,
        Stage::Mining,
        Stage::Generation,
        Stage::Simplify,
        Stage::Join,
        Stage::Calibrate,
        Stage::HmmBuild,
        Stage::Estimation,
        Stage::Serve,
    ];

    /// The stages exercised by training (everything but estimation and
    /// service work).
    pub const TRAINING: [Stage; 8] = [
        Stage::Validate,
        Stage::Capture,
        Stage::Mining,
        Stage::Generation,
        Stage::Simplify,
        Stage::Join,
        Stage::Calibrate,
        Stage::HmmBuild,
    ];

    /// Stable lowercase name (used in both report formats).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Validate => "validate",
            Stage::Capture => "capture",
            Stage::Mining => "mining",
            Stage::Generation => "generation",
            Stage::Simplify => "simplify",
            Stage::Join => "join",
            Stage::Calibrate => "calibrate",
            Stage::HmmBuild => "hmm-build",
            Stage::Estimation => "estimation",
            Stage::Serve => "serve",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed unit of work: a stage instance with its offset from the start
/// of the run.
#[derive(Debug, Clone)]
pub struct Span {
    /// The pipeline stage this span belongs to.
    pub stage: Stage,
    /// What exactly ran (e.g. `stimulus 2`, `trace 0`, `req 17`).
    pub label: String,
    /// Start offset relative to the telemetry epoch.
    pub start: Duration,
    /// Wall-clock duration (never zero; sub-nanosecond work rounds up).
    pub duration: Duration,
}

/// Event counters accumulated across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// States eliminated by `simplify` + `join` (before − after).
    pub states_merged: usize,
    /// States whose constant output was replaced by a regression fit.
    pub calibrated_states: usize,
    /// Estimation instants where the predicted state failed and the model
    /// resynchronised (the paper's WSP events).
    pub wrong_state_predictions: usize,
    /// Estimation instants of behaviour unknown to the model.
    pub sync_losses: usize,
}

/// Snapshot of one named gauge: the last value observed and the
/// high-water mark across the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The gauge name (e.g. `queue_depth`, `batch_size`).
    pub name: String,
    /// The most recently observed value.
    pub last: u64,
    /// The largest value observed.
    pub max: u64,
}

/// Thread-safe collector of [`Span`]s, [`Counters`], named counters and
/// gauges for one engine run or service lifetime.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    diagnostics: Mutex<Vec<Diagnostic>>,
    named: Mutex<Vec<(String, u64)>>,
    gauges: Mutex<Vec<(String, u64, u64)>>,
    states_merged: AtomicUsize,
    calibrated_states: AtomicUsize,
    wrong_state_predictions: AtomicUsize,
    sync_losses: AtomicUsize,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Starts a fresh collector; the epoch is *now*.
    pub fn new() -> Self {
        Telemetry {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            diagnostics: Mutex::new(Vec::new()),
            named: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            states_merged: AtomicUsize::new(0),
            calibrated_states: AtomicUsize::new(0),
            wrong_state_predictions: AtomicUsize::new(0),
            sync_losses: AtomicUsize::new(0),
        }
    }

    /// Runs `f`, recording a span for it under `stage`.
    pub fn time<T>(&self, stage: Stage, label: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let start = self.epoch.elapsed();
        let out = f();
        let duration = self
            .epoch
            .elapsed()
            .saturating_sub(start)
            .max(Duration::from_nanos(1));
        self.spans.lock().expect("telemetry lock").push(Span {
            stage,
            label: label.into(),
            start,
            duration,
        });
        out
    }

    /// Appends every diagnostic of a validation report, so lint findings
    /// ride along with the run's timings in the final report.
    pub fn add_diagnostics(&self, report: &AnalysisReport) {
        self.diagnostics
            .lock()
            .expect("telemetry lock")
            .extend(report.diagnostics().iter().cloned());
    }

    /// Adds to the merged-states counter.
    pub fn add_states_merged(&self, n: usize) {
        self.states_merged.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the calibrated-states counter.
    pub fn add_calibrated_states(&self, n: usize) {
        self.calibrated_states.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the wrong-state-prediction counter.
    pub fn add_wrong_state_predictions(&self, n: usize) {
        self.wrong_state_predictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the sync-loss (unknown-behaviour) counter.
    pub fn add_sync_losses(&self, n: usize) {
        self.sync_losses.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to the named counter `name`, creating it at zero on first
    /// use. Named counters carry service-side events (one per opcode, BUSY
    /// rejections, reloads) that the fixed [`Counters`] fields do not
    /// cover.
    pub fn add_named(&self, name: &str, n: u64) {
        let mut named = self.named.lock().expect("telemetry lock");
        match named.iter_mut().find(|(k, _)| k == name) {
            Some((_, total)) => *total += n,
            None => named.push((name.to_owned(), n)),
        }
    }

    /// Records an observation of the gauge `name`: the report keeps the
    /// last observed value and the high-water mark.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut gauges = self.gauges.lock().expect("telemetry lock");
        match gauges.iter_mut().find(|(k, _, _)| k == name) {
            Some((_, last, max)) => {
                *last = value;
                *max = (*max).max(value);
            }
            None => gauges.push((name.to_owned(), value, value)),
        }
    }

    /// Snapshots the collected spans and counters into a report. Spans are
    /// sorted by start offset (ties broken by duration), so the report is
    /// monotone even when parallel workers finished out of order. Named
    /// counters and gauges are sorted by name, so two snapshots of the
    /// same state render identically.
    pub fn report(&self) -> TelemetryReport {
        let mut spans = self.spans.lock().expect("telemetry lock").clone();
        spans.sort_by_key(|s| (s.start, s.duration));
        let mut named = self.named.lock().expect("telemetry lock").clone();
        named.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|(name, last, max)| GaugeSnapshot {
                name: name.clone(),
                last: *last,
                max: *max,
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        TelemetryReport {
            spans,
            diagnostics: self.diagnostics.lock().expect("telemetry lock").clone(),
            counters: Counters {
                states_merged: self.states_merged.load(Ordering::Relaxed),
                calibrated_states: self.calibrated_states.load(Ordering::Relaxed),
                wrong_state_predictions: self.wrong_state_predictions.load(Ordering::Relaxed),
                sync_losses: self.sync_losses.load(Ordering::Relaxed),
            },
            named_counters: named,
            gauges,
            total: self.epoch.elapsed(),
        }
    }
}

/// An immutable snapshot of one run's telemetry.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// All recorded spans, sorted by start offset.
    pub spans: Vec<Span>,
    /// Validation diagnostics recorded during the run, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// The accumulated event counters.
    pub counters: Counters,
    /// Named counters (service opcodes, BUSY rejections, …), sorted by
    /// name.
    pub named_counters: Vec<(String, u64)>,
    /// Gauge snapshots (queue depth, batch size, …), sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Wall-clock from the telemetry epoch to the snapshot.
    pub total: Duration,
}

impl TelemetryReport {
    /// Spans belonging to one stage, in start order.
    pub fn stage_spans(&self, stage: Stage) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.stage == stage)
    }

    /// Summed duration of one stage across all its spans. In a parallel
    /// run this is aggregate worker time, which may exceed wall-clock —
    /// use [`stage_wall`](Self::stage_wall) for elapsed time.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        self.stage_spans(stage).map(|s| s.duration).sum()
    }

    /// Wall-clock time one stage occupied: the union of its span
    /// intervals, so concurrent workers count once. `stage_wall ==
    /// stage_total` in a sequential run; in a parallel run the ratio of
    /// the two is the stage's effective worker occupancy. This is the
    /// number speedups must be judged against (a t2 run whose capture
    /// *total* doubles while its capture *wall* halves is scaling
    /// perfectly).
    pub fn stage_wall(&self, stage: Stage) -> Duration {
        // Spans are already sorted by start offset.
        let mut wall = Duration::ZERO;
        let mut cur: Option<(Duration, Duration)> = None;
        for s in self.stage_spans(stage) {
            let end = s.start + s.duration;
            match &mut cur {
                Some((_, cur_end)) if s.start <= *cur_end => *cur_end = (*cur_end).max(end),
                Some((cur_start, cur_end)) => {
                    wall += *cur_end - *cur_start;
                    cur = Some((s.start, end));
                }
                None => cur = Some((s.start, end)),
            }
        }
        if let Some((start, end)) = cur {
            wall += end - start;
        }
        wall
    }

    /// `true` when every stage in `stages` has at least one span.
    pub fn covers(&self, stages: &[Stage]) -> bool {
        stages
            .iter()
            .all(|&st| self.stage_spans(st).next().is_some())
    }

    /// The value of one named counter, zero when never bumped.
    pub fn named_counter(&self, name: &str) -> u64 {
        self.named_counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The snapshot of one gauge, `None` when never observed.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The aligned text report: one row per stage that ran, then counters,
    /// named counters and gauges.
    pub fn text(&self) -> String {
        let mut out = String::from("stage       spans  total      wall\n");
        for stage in Stage::ALL {
            let n = self.stage_spans(stage).count();
            if n == 0 {
                continue;
            }
            let total = self.stage_total(stage);
            let wall = self.stage_wall(stage);
            out.push_str(&format!(
                "{:<11} {:>5}  {:<9}  {:<9}\n",
                stage.name(),
                n,
                format!("{total:.3?}"),
                format!("{wall:.3?}"),
            ));
        }
        out.push_str(&format!(
            "counters    states_merged={} calibrated_states={} \
             wrong_state_predictions={} sync_losses={}\n",
            self.counters.states_merged,
            self.counters.calibrated_states,
            self.counters.wrong_state_predictions,
            self.counters.sync_losses,
        ));
        for (name, total) in &self.named_counters {
            out.push_str(&format!("counter     {name}={total}\n"));
        }
        for g in &self.gauges {
            out.push_str(&format!(
                "gauge       {} last={} max={}\n",
                g.name, g.last, g.max
            ));
        }
        for d in &self.diagnostics {
            out.push_str(&format!("diagnostic  {d}\n"));
        }
        out
    }

    /// The report as a JSON document: per-stage aggregates, the raw spans,
    /// the counters, the named counters and the gauges.
    pub fn to_json(&self) -> JsonValue {
        let stages = JsonValue::arr(Stage::ALL.iter().filter_map(|&stage| {
            let n = self.stage_spans(stage).count();
            if n == 0 {
                return None;
            }
            Some(JsonValue::obj([
                ("stage", JsonValue::from(stage.name())),
                ("spans", JsonValue::from(n)),
                (
                    "total_ns",
                    JsonValue::from(self.stage_total(stage).as_nanos() as u64),
                ),
                (
                    "wall_ns",
                    JsonValue::from(self.stage_wall(stage).as_nanos() as u64),
                ),
            ]))
        }));
        let spans = JsonValue::arr(self.spans.iter().map(|s| {
            JsonValue::obj([
                ("stage", JsonValue::from(s.stage.name())),
                ("label", JsonValue::from(s.label.as_str())),
                ("start_ns", JsonValue::from(s.start.as_nanos() as u64)),
                ("duration_ns", JsonValue::from(s.duration.as_nanos() as u64)),
            ])
        }));
        JsonValue::obj([
            ("stages", stages),
            ("spans", spans),
            (
                "diagnostics",
                JsonValue::arr(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
            (
                "counters",
                JsonValue::obj([
                    (
                        "states_merged",
                        JsonValue::from(self.counters.states_merged),
                    ),
                    (
                        "calibrated_states",
                        JsonValue::from(self.counters.calibrated_states),
                    ),
                    (
                        "wrong_state_predictions",
                        JsonValue::from(self.counters.wrong_state_predictions),
                    ),
                    ("sync_losses", JsonValue::from(self.counters.sync_losses)),
                ]),
            ),
            (
                "named_counters",
                JsonValue::arr(self.named_counters.iter().map(|(name, total)| {
                    JsonValue::obj([
                        ("name", JsonValue::from(name.as_str())),
                        ("total", JsonValue::from(*total)),
                    ])
                })),
            ),
            (
                "gauges",
                JsonValue::arr(self.gauges.iter().map(|g| {
                    JsonValue::obj([
                        ("name", JsonValue::from(g.name.as_str())),
                        ("last", JsonValue::from(g.last)),
                        ("max", JsonValue::from(g.max)),
                    ])
                })),
            ),
            ("total_ns", JsonValue::from(self.total.as_nanos() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_sort() {
        let t = Telemetry::new();
        let x = t.time(Stage::Mining, "all", || 21 * 2);
        assert_eq!(x, 42);
        t.time(Stage::Capture, "stimulus 0", || {});
        let report = t.report();
        assert_eq!(report.spans.len(), 2);
        // Sorted by start, so mining (recorded first) leads.
        assert_eq!(report.spans[0].stage, Stage::Mining);
        assert!(report.spans.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(report.spans.iter().all(|s| s.duration > Duration::ZERO));
    }

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.add_states_merged(3);
        t.add_states_merged(4);
        t.add_calibrated_states(2);
        t.add_wrong_state_predictions(1);
        t.add_sync_losses(5);
        let c = t.report().counters;
        assert_eq!(c.states_merged, 7);
        assert_eq!(c.calibrated_states, 2);
        assert_eq!(c.wrong_state_predictions, 1);
        assert_eq!(c.sync_losses, 5);
    }

    #[test]
    fn named_counters_accumulate_and_sort() {
        let t = Telemetry::new();
        t.add_named("op.stats", 1);
        t.add_named("op.estimate", 2);
        t.add_named("op.estimate", 3);
        let report = t.report();
        assert_eq!(report.named_counter("op.estimate"), 5);
        assert_eq!(report.named_counter("op.stats"), 1);
        assert_eq!(report.named_counter("op.none"), 0);
        // Sorted by name for deterministic rendering.
        let names: Vec<&str> = report
            .named_counters
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(names, ["op.estimate", "op.stats"]);
        assert!(report.text().contains("counter     op.estimate=5"));
        let json = report.to_json();
        assert_eq!(json.arr_field("named_counters").unwrap().len(), 2);
    }

    #[test]
    fn gauges_keep_last_and_max() {
        let t = Telemetry::new();
        t.set_gauge("queue_depth", 3);
        t.set_gauge("queue_depth", 7);
        t.set_gauge("queue_depth", 1);
        t.set_gauge("batch_size", 4);
        let report = t.report();
        let g = report.gauge("queue_depth").unwrap();
        assert_eq!((g.last, g.max), (1, 7));
        assert_eq!(report.gauge("batch_size").unwrap().max, 4);
        assert!(report.gauge("missing").is_none());
        assert!(report
            .text()
            .contains("gauge       queue_depth last=1 max=7"));
        let json = report.to_json();
        // Sorted: batch_size before queue_depth.
        let gauges = json.arr_field("gauges").unwrap();
        assert_eq!(gauges[0].str_field("name").unwrap(), "batch_size");
        assert_eq!(gauges[1].u64_field("max").unwrap(), 7);
    }

    #[test]
    fn report_text_and_json_list_recorded_stages() {
        let t = Telemetry::new();
        for stage in Stage::ALL {
            t.time(stage, "unit", || {});
        }
        let report = t.report();
        assert!(report.covers(&Stage::ALL));
        let text = report.text();
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "missing {stage} in:\n{text}");
        }
        let json = report.to_json();
        assert_eq!(json.arr_field("stages").unwrap().len(), Stage::ALL.len());
        assert_eq!(json.arr_field("spans").unwrap().len(), Stage::ALL.len());
        let rendered = json.render();
        let reparsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(
            reparsed.arr_field("stages").unwrap().len(),
            Stage::ALL.len()
        );
    }

    #[test]
    fn stage_wall_unions_overlapping_spans() {
        let span = |start_ms: u64, dur_ms: u64| Span {
            stage: Stage::Capture,
            label: String::new(),
            start: Duration::from_millis(start_ms),
            duration: Duration::from_millis(dur_ms),
        };
        let report = TelemetryReport {
            // Two overlapping spans (0..80 and 10..90: two workers), a
            // touching one (90..100) and a disjoint one (200..250).
            spans: vec![span(0, 80), span(10, 80), span(90, 10), span(200, 50)],
            diagnostics: Vec::new(),
            counters: Counters::default(),
            named_counters: Vec::new(),
            gauges: Vec::new(),
            total: Duration::from_millis(250),
        };
        assert_eq!(
            report.stage_total(Stage::Capture),
            Duration::from_millis(220)
        );
        assert_eq!(
            report.stage_wall(Stage::Capture),
            Duration::from_millis(150)
        );
        assert_eq!(report.stage_wall(Stage::Mining), Duration::ZERO);
    }

    #[test]
    fn sequential_wall_equals_total() {
        let t = Telemetry::new();
        t.time(Stage::Capture, "a", || {
            std::thread::sleep(Duration::from_millis(2))
        });
        t.time(Stage::Capture, "b", || {
            std::thread::sleep(Duration::from_millis(2))
        });
        let report = t.report();
        assert_eq!(
            report.stage_wall(Stage::Capture),
            report.stage_total(Stage::Capture),
            "non-overlapping spans union to their sum"
        );
        // Both aggregates surface in the reports.
        assert!(report
            .text()
            .starts_with("stage       spans  total      wall\n"));
        let json = report.to_json();
        let stages = json.arr_field("stages").unwrap();
        assert!(stages[0].u64_field("wall_ns").unwrap() > 0);
        assert_eq!(
            stages[0].u64_field("wall_ns").unwrap(),
            stages[0].u64_field("total_ns").unwrap()
        );
    }

    #[test]
    fn covers_detects_missing_stages() {
        let t = Telemetry::new();
        t.time(Stage::Capture, "only", || {});
        let report = t.report();
        assert!(report.covers(&[Stage::Capture]));
        assert!(!report.covers(&Stage::TRAINING));
        assert_eq!(report.stage_total(Stage::Join), Duration::ZERO);
    }

    #[test]
    fn diagnostics_ride_along_in_both_report_formats() {
        use psm_analyze::codes;
        let t = Telemetry::new();
        let mut r = AnalysisReport::new("unit");
        r.push(Diagnostic::new(
            &codes::NL002,
            "net n3",
            "net n3 has 2 drivers",
        ));
        t.add_diagnostics(&r);
        let report = t.report();
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.text().contains("NL002"), "{}", report.text());
        let json = report.to_json();
        assert_eq!(json.arr_field("diagnostics").unwrap().len(), 1);
        assert_eq!(
            json.arr_field("diagnostics").unwrap()[0]
                .str_field("code")
                .unwrap(),
            "NL002"
        );
    }

    #[test]
    fn concurrent_spans_are_all_kept() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for j in 0..8 {
                        t.time(Stage::Generation, format!("w{i} j{j}"), || {});
                    }
                });
            }
        });
        assert_eq!(t.report().spans.len(), 32);
    }

    #[test]
    fn concurrent_named_counters_and_gauges() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for v in 0..100u64 {
                        t.add_named("op.estimate", 1);
                        t.set_gauge("queue_depth", v);
                    }
                });
            }
        });
        let report = t.report();
        assert_eq!(report.named_counter("op.estimate"), 400);
        assert_eq!(report.gauge("queue_depth").unwrap().max, 99);
    }
}
