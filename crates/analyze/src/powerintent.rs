//! Power-intent static analysis (`PD…` codes): domain-crossing lints and
//! ternary isolation proofs.
//!
//! The paper's PSMs abstract a design into power states; several of those
//! states have near-zero mean power, i.e. they describe intervals in which
//! a whole power domain could be gated off. Before anyone acts on that —
//! by synthesising power gating from the mined model — the *netlist* must
//! be able to survive the power-down: every net leaving the gated domain
//! needs an isolation cell, or the floating `X` of the dead logic corrupts
//! the still-on side.
//!
//! This module checks exactly that, in two layers:
//!
//! * **structural** — over the [`Netlist::domain_crossings`] graph:
//!   crossings with no isolation cell (`PD001`), isolation cells whose
//!   clamp polarity their gate kind cannot produce (`PD002`), marks that
//!   isolate nothing (`PD003`), gateable domains with no primary-input
//!   controllability (`PD004`) and always-on logic sandwiched between
//!   gateable domains (`PD005`);
//! * **semantic** — [`prove_domain_off`] re-runs the ternary interpreter
//!   of [`crate::analyze_dataflow`] with every net driven inside one
//!   domain forced to `X`, gives validly-marked isolation cells their
//!   clamp semantics, and proves that no still-on net and no primary
//!   output ever observes the `X`. Escapes come back as
//!   [`IsolationLeak`]s carrying the concrete propagation path
//!   (`PD006`/`PD007`, rendered as SARIF code flows).
//!
//! All of it is **intent-gated**: a netlist with no isolation-marked cell
//! ([`Netlist::has_power_intent`]) has declared no power intent, its
//! domains are assumed always-on, and [`lint_power_intent`] stays silent —
//! multi-domain designs that merely *partition* logic (like the Camellia
//! benchmark) are not findings. The raw [`prove_domain_off`] query is not
//! gated, so what-if analyses and benchmarks can run it directly.

use crate::dataflow::interpretable;
use crate::{codes, eval_ternary, AnalysisReport, Diagnostic, Ternary};
use psm_rtl::{CellRef, GateKind, IsolationKind, NetId, Netlist};
use psm_trace::Direction;
use std::collections::BTreeMap;

/// Domain index reserved for always-on logic (`core` in the builder and
/// the Verilog attribute grammar). Cells here are never powered down.
pub(crate) const ALWAYS_ON: usize = 0;

/// Cap on reported escapes per powered-down domain; beyond it the proof
/// still counts the leaks but the lint stops attaching paths.
const MAX_REPORTED_LEAKS: usize = 8;

/// `true` when `kind`, marked as `iso`, can actually force the declared
/// clamp constant: a clamp0 needs a controlling-zero input (AND/NOR), a
/// clamp1 a controlling-one input (OR/NAND); a mux can park either way.
fn clamp_matches(kind: &GateKind, iso: IsolationKind) -> bool {
    match iso {
        IsolationKind::Clamp0 => {
            matches!(kind, GateKind::And2 | GateKind::Nor2 | GateKind::Mux2)
        }
        IsolationKind::Clamp1 => {
            matches!(kind, GateKind::Or2 | GateKind::Nand2 | GateKind::Mux2)
        }
    }
}

/// `true` when the gate kind can clamp at all (with *some* polarity).
fn can_clamp(kind: &GateKind) -> bool {
    matches!(
        kind,
        GateKind::And2 | GateKind::Or2 | GateKind::Nand2 | GateKind::Nor2 | GateKind::Mux2
    )
}

/// One escape found by the off-domain proof: a net outside the powered-down
/// domain that observes the dead logic's `X`.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationLeak {
    /// The net the `X` was observed on — a still-on cell's output, or the
    /// net wired to a primary-output bit.
    pub net: NetId,
    /// Human-readable description of the observing sink.
    pub sink: String,
    /// `true` when the escape reaches a primary output (`PD007`), `false`
    /// for an escape into still-on internal logic (`PD006`).
    pub at_output: bool,
    /// The concrete X-propagation route, from a net driven inside the
    /// powered-down domain to [`IsolationLeak::net`] (inclusive).
    pub path: Vec<NetId>,
}

/// Result of [`prove_domain_off`]: either a proof that the domain is fully
/// isolated, or the list of escapes refuting it.
#[derive(Debug, Clone)]
pub struct DomainOffProof {
    /// Index of the powered-down domain (into [`Netlist::domains`]).
    pub domain: usize,
    /// Escapes into still-on logic or primary outputs; empty iff the
    /// domain is provably isolated.
    pub leaks: Vec<IsolationLeak>,
    /// Number of isolation cells that actively clamped the domain's `X`.
    pub clamped: usize,
    /// Fixpoint sweeps the ternary interpreter took.
    pub sweeps: usize,
}

impl DomainOffProof {
    /// `true` when powering the domain down leaks no `X` anywhere.
    pub fn is_isolated(&self) -> bool {
        self.leaks.is_empty()
    }
}

/// Reconstructs the X-propagation route ending at `net` by walking the
/// taint-origin parent pointers back to a net driven inside the powered-down
/// domain. Origin edges follow dataflow and register `d → q` arcs, so a
/// defensive cycle guard caps the walk.
fn escape_path(origin: &[Option<NetId>], net: NetId) -> Vec<NetId> {
    let mut path = vec![net];
    let mut at = net;
    while let Some(parent) = origin[at.index()] {
        if path.len() > origin.len() || path.contains(&parent) {
            break;
        }
        path.push(parent);
        at = parent;
    }
    path.reverse();
    path
}

/// Proves (or refutes) that power-gating one domain cannot corrupt the
/// rest of the design.
///
/// Re-runs the levelized ternary fixpoint with every net driven by a cell
/// of `domain` pinned to `X` and *tainted*; validly-marked isolation cells
/// ([`Netlist::gate_isolation`], polarity consistent with the gate kind)
/// are given their power-down semantics — a tainted input makes them drive
/// the declared clamp constant, clearing the taint. Isolation controls are
/// assumed asserted for the whole power-down, which is exactly the UPF
/// contract the cells encode. An ordinary still-on cell whose output goes
/// `X` *because of* the off domain (taint, not an honest input-port
/// unknown) at the boundary is a leak, as is any tainted primary-output
/// bit.
///
/// Leaks are reported at the **frontier**: the first still-on cell on each
/// escape route (its taint origin is a net driven inside `domain`), so a
/// single hole yields one leak, not one per downstream consumer. Crossings
/// that the logic provably masks (e.g. ANDed with a constant 0) do not
/// leak — that is the refinement this proof adds over the structural
/// `PD001` check.
///
/// Returns `None` when `domain` is out of range or the netlist is not
/// safely interpretable (cycles, arity or net-range defects — the
/// structural lints' findings).
pub fn prove_domain_off(netlist: &Netlist, domain: usize) -> Option<DomainOffProof> {
    if domain >= netlist.domains().len() {
        return None;
    }
    let order = interpretable(netlist)?;
    let nets = netlist.net_count();
    let net_domain = netlist.net_domains();

    let mut values = vec![Ternary::X; nets];
    let mut tainted = vec![false; nets];
    // Parent pointer of each tainted net: the tainted input its X came
    // from; `None` marks a root (driven inside the off domain).
    let mut origin: Vec<Option<NetId>> = vec![None; nets];
    values[Netlist::CONST0.index()] = Ternary::Zero;
    values[Netlist::CONST1.index()] = Ternary::One;
    for (ff, &d) in netlist.dffs().iter().zip(netlist.dff_domains()) {
        if d == domain {
            tainted[ff.q.index()] = true; // state is lost with the power
        } else {
            values[ff.q.index()] = Ternary::from_bool(ff.init);
        }
    }
    for (m, &d) in netlist.memories().iter().zip(netlist.mem_domains()) {
        if d == domain {
            for &n in &m.rdata {
                tainted[n.index()] = true;
            }
        }
    }
    // Input ports and still-on memory reads stay X but carry no taint.

    let mut clamped = vec![false; netlist.gates().len()];
    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        for &gi in &order {
            let g = &netlist.gates()[gi];
            let o = g.output.index();
            if netlist.gate_domains()[gi] == domain {
                values[o] = Ternary::X;
                tainted[o] = true;
                origin[o] = None;
                continue;
            }
            let iso = netlist.gate_isolation()[gi].filter(|&k| clamp_matches(&g.kind, k));
            let hot = g.inputs.iter().any(|n| tainted[n.index()]);
            if let (Some(kind), true) = (iso, hot) {
                values[o] = Ternary::from_bool(kind.clamp_value());
                tainted[o] = false;
                origin[o] = None;
                clamped[gi] = true;
                continue;
            }
            clamped[gi] = false;
            let ins: Vec<Ternary> = g.inputs.iter().map(|n| values[n.index()]).collect();
            let out = eval_ternary(&g.kind, &ins);
            values[o] = out;
            let src = if out == Ternary::X {
                g.inputs
                    .iter()
                    .find(|n| values[n.index()] == Ternary::X && tainted[n.index()])
                    .copied()
            } else {
                None
            };
            tainted[o] = src.is_some();
            origin[o] = src;
        }
        let mut changed = false;
        for (ff, &d) in netlist.dffs().iter().zip(netlist.dff_domains()) {
            if d == domain {
                continue; // pinned X root
            }
            let qi = ff.q.index();
            let di = ff.d.index();
            let q = values[qi];
            let next = q.join(values[di]);
            if next != q {
                values[qi] = next;
                tainted[qi] = tainted[di];
                origin[qi] = tainted[di].then_some(ff.d);
                changed = true;
            } else if next == Ternary::X && tainted[di] && !tainted[qi] {
                tainted[qi] = true;
                origin[qi] = Some(ff.d);
                changed = true;
            }
        }
        for (m, &d) in netlist.memories().iter().zip(netlist.mem_domains()) {
            if d == domain {
                continue;
            }
            // A still-on macro addressed or written through tainted pins
            // can deliver the corruption on any later read.
            let src = m
                .addr
                .iter()
                .chain(&m.wdata)
                .chain([&m.we, &m.re, &m.clear])
                .find(|n| tainted[n.index()])
                .copied();
            if let Some(src) = src {
                for &rd in &m.rdata {
                    if !tainted[rd.index()] {
                        tainted[rd.index()] = true;
                        origin[rd.index()] = Some(src);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Frontier leaks: a still-on cell whose taint origin is a net driven
    // inside the off domain — the first observer on each escape route.
    let from_off = |n: Option<NetId>| n.is_some_and(|n| net_domain[n.index()] == Some(domain));
    let mut leaks = Vec::new();
    for (gi, (g, &gd)) in netlist
        .gates()
        .iter()
        .zip(netlist.gate_domains())
        .enumerate()
    {
        let o = g.output;
        if gd != domain && tainted[o.index()] && from_off(origin[o.index()]) {
            leaks.push(IsolationLeak {
                net: o,
                sink: format!(
                    "{} gate #{gi} in domain `{}`",
                    g.kind,
                    netlist.domains()[gd]
                ),
                at_output: false,
                path: escape_path(&origin, o),
            });
        }
    }
    for (fi, (ff, &fd)) in netlist.dffs().iter().zip(netlist.dff_domains()).enumerate() {
        if fd != domain && tainted[ff.q.index()] && from_off(Some(ff.d)) {
            leaks.push(IsolationLeak {
                net: ff.q,
                sink: format!("flip-flop #{fi} in domain `{}`", netlist.domains()[fd]),
                at_output: false,
                path: escape_path(&origin, ff.q),
            });
        }
    }
    for (mi, (m, &md)) in netlist
        .memories()
        .iter()
        .zip(netlist.mem_domains())
        .enumerate()
    {
        if md != domain && m.rdata.iter().any(|n| tainted[n.index()]) && {
            let first = m.rdata.iter().find(|n| tainted[n.index()]).unwrap();
            from_off(origin[first.index()])
        } {
            let rd = *m.rdata.iter().find(|n| tainted[n.index()]).unwrap();
            leaks.push(IsolationLeak {
                net: rd,
                sink: format!("memory macro #{mi} in domain `{}`", netlist.domains()[md]),
                at_output: false,
                path: escape_path(&origin, rd),
            });
        }
    }
    for p in netlist.ports() {
        if p.direction() != Direction::Output {
            continue;
        }
        for (bit, &n) in p.nets().iter().enumerate() {
            if tainted[n.index()] {
                leaks.push(IsolationLeak {
                    net: n,
                    sink: format!("output port `{}` bit {bit}", p.name()),
                    at_output: true,
                    path: escape_path(&origin, n),
                });
            }
        }
    }

    Some(DomainOffProof {
        domain,
        leaks,
        clamped: clamped.iter().filter(|c| **c).count(),
        sweeps,
    })
}

/// Annotates one net of an escape path with its domain, for the step list
/// rendered as a SARIF code flow.
fn step_label(netlist: &Netlist, net_domain: &[Option<usize>], off: usize, net: NetId) -> String {
    match net_domain[net.index()] {
        Some(d) if d == off => format!(
            "net {net} (driven in powered-off domain `{}`)",
            &netlist.domains()[d]
        ),
        Some(d) => format!("net {net} (domain `{}`)", &netlist.domains()[d]),
        None => format!("net {net}"),
    }
}

/// The power-intent lint family (`PD001`–`PD008`).
///
/// Silent unless the netlist declares power intent by marking at least one
/// isolation cell ([`Netlist::has_power_intent`]); a declared-intent
/// netlist always gets at least the `PD008` summary. Runs the structural
/// crossing lints, then [`prove_domain_off`] for every gateable domain;
/// escapes carry their propagation path in [`Diagnostic::steps`].
pub fn lint_power_intent(netlist: &Netlist) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("netlist `{}` power intent", netlist.name()));
    if !netlist.has_power_intent() {
        return report;
    }
    let domains = netlist.domains();
    let net_domain = netlist.net_domains();
    let crossings = netlist.domain_crossings();
    let gates = netlist.gates();
    let iso = netlist.gate_isolation();

    // `true` for a marked gate whose polarity its kind can actually drive.
    let valid_iso: Vec<bool> = gates
        .iter()
        .zip(iso)
        .map(|(g, k)| k.is_some_and(|k| clamp_matches(&g.kind, k)))
        .collect();

    // PD002 / PD003: every isolation mark is either usable, contradictory
    // or pointless.
    for (gi, (g, k)) in gates.iter().zip(iso).enumerate() {
        let Some(k) = *k else { continue };
        let location = format!("gate #{gi} ({})", g.kind);
        if !can_clamp(&g.kind) {
            report.push(Diagnostic::new(
                &codes::PD003,
                location,
                format!(
                    "`{}` cell marked `isolation = \"{k}\"` but a {} has no controlling \
                     input and can never clamp",
                    g.kind, g.kind
                ),
            ));
        } else if !clamp_matches(&g.kind, k) {
            report.push(Diagnostic::new(
                &codes::PD002,
                location,
                format!(
                    "`{}` cell marked `isolation = \"{k}\"` can only force the opposite \
                     constant; while its domain is gated it would clamp to {} instead of {}",
                    g.kind,
                    !k.clamp_value() as u8,
                    k.clamp_value() as u8
                ),
            ));
        } else {
            let gd = netlist.gate_domains()[gi];
            let crosses = g
                .inputs
                .iter()
                .any(|n| net_domain[n.index()].is_some_and(|d| d != gd));
            if !crosses {
                report.push(Diagnostic::new(
                    &codes::PD003,
                    location,
                    format!(
                        "isolation cell reads only domain-`{}` and undomained nets; no \
                         crossing passes through it",
                        domains[gd]
                    ),
                ));
            }
        }
    }

    // PD001: crossings out of a gateable domain whose sink is not a valid
    // isolation cell, grouped per (from, to) pair. Primary outputs count
    // as an always-on sink of their own.
    let mut unisolated: BTreeMap<(usize, Option<usize>), Vec<NetId>> = BTreeMap::new();
    for e in &crossings {
        if e.from == ALWAYS_ON {
            continue; // always-on drivers never float
        }
        let protected = matches!(e.sink, CellRef::Gate(gi) if valid_iso[gi]);
        if !protected {
            unisolated
                .entry((e.from, Some(e.to)))
                .or_default()
                .push(e.net);
        }
    }
    for p in netlist.ports() {
        if p.direction() != Direction::Output {
            continue;
        }
        for &n in p.nets() {
            if let Some(d) = net_domain[n.index()] {
                if d != ALWAYS_ON {
                    unisolated.entry((d, None)).or_default().push(n);
                }
            }
        }
    }
    for ((from, to), nets) in &unisolated {
        let sink = match to {
            Some(t) => format!("domain `{}`", domains[*t]),
            None => "the primary outputs".to_string(),
        };
        report.push(Diagnostic::new(
            &codes::PD001,
            format!("domain `{}` -> {sink}", domains[*from]),
            format!(
                "{} net(s) leave gateable domain `{}` into {sink} with no isolation \
                 cell (first: net {})",
                nets.len(),
                domains[*from],
                nets[0]
            ),
        ));
    }

    // PD004: structural forward reachability of primary-input influence;
    // a gateable domain none of whose cells sees any of it cannot be
    // driven (or observed) from outside.
    let mut reach = vec![false; netlist.net_count()];
    for p in netlist.ports() {
        if p.direction() == Direction::Input {
            for &n in p.nets() {
                reach[n.index()] = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for g in gates {
            if !reach[g.output.index()] && g.inputs.iter().any(|n| reach[n.index()]) {
                reach[g.output.index()] = true;
                changed = true;
            }
        }
        for ff in netlist.dffs() {
            if !reach[ff.q.index()] && reach[ff.d.index()] {
                reach[ff.q.index()] = true;
                changed = true;
            }
        }
        for m in netlist.memories() {
            let any_pin = m
                .addr
                .iter()
                .chain(&m.wdata)
                .chain([&m.we, &m.re, &m.clear])
                .any(|n| reach[n.index()]);
            if any_pin {
                for &rd in &m.rdata {
                    if !reach[rd.index()] {
                        reach[rd.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut populated = vec![false; domains.len()];
    let mut controllable = vec![false; domains.len()];
    for (g, &d) in gates.iter().zip(netlist.gate_domains()) {
        populated[d] = true;
        controllable[d] |= g.inputs.iter().any(|n| reach[n.index()]);
    }
    for (ff, &d) in netlist.dffs().iter().zip(netlist.dff_domains()) {
        populated[d] = true;
        controllable[d] |= reach[ff.d.index()];
    }
    for (m, &d) in netlist.memories().iter().zip(netlist.mem_domains()) {
        populated[d] = true;
        controllable[d] |= m
            .addr
            .iter()
            .chain(&m.wdata)
            .chain([&m.we, &m.re, &m.clear])
            .any(|n| reach[n.index()]);
    }
    for (d, name) in domains.iter().enumerate() {
        if d != ALWAYS_ON && populated[d] && !controllable[d] {
            report.push(Diagnostic::new(
                &codes::PD004,
                format!("domain `{name}`"),
                format!(
                    "no cell of gateable domain `{name}` is reachable from any primary \
                     input; its activity cannot be exercised from outside"
                ),
            ));
        }
    }

    // PD005: always-on gates that read gateable-domain nets and whose
    // output is consumed only by gateable-domain cells — logic that can
    // never power down yet serves nothing always-on.
    let mut read_on = vec![false; netlist.net_count()]; // by always-on cell or PO
    let mut read_gateable = vec![false; netlist.net_count()];
    {
        let mut mark = |n: NetId, d: usize| {
            if d == ALWAYS_ON {
                read_on[n.index()] = true;
            } else {
                read_gateable[n.index()] = true;
            }
        };
        for (g, &d) in gates.iter().zip(netlist.gate_domains()) {
            for &n in &g.inputs {
                mark(n, d);
            }
        }
        for (ff, &d) in netlist.dffs().iter().zip(netlist.dff_domains()) {
            mark(ff.d, d);
        }
        for (m, &d) in netlist.memories().iter().zip(netlist.mem_domains()) {
            for &n in m
                .addr
                .iter()
                .chain(&m.wdata)
                .chain([&m.we, &m.re, &m.clear])
            {
                mark(n, d);
            }
        }
        for p in netlist.ports() {
            if p.direction() == Direction::Output {
                for &n in p.nets() {
                    read_on[n.index()] = true;
                }
            }
        }
    }
    let sandwiched: Vec<usize> = gates
        .iter()
        .zip(netlist.gate_domains())
        .enumerate()
        .filter(|(gi, (g, &d))| {
            d == ALWAYS_ON
                && iso[*gi].is_none()
                && g.inputs
                    .iter()
                    .any(|n| net_domain[n.index()].is_some_and(|x| x != ALWAYS_ON))
                && read_gateable[g.output.index()]
                && !read_on[g.output.index()]
        })
        .map(|(gi, _)| gi)
        .collect();
    if !sandwiched.is_empty() {
        let first = &gates[sandwiched[0]];
        report.push(Diagnostic::new(
            &codes::PD005,
            format!("gate #{} ({})", sandwiched[0], first.kind),
            format!(
                "{} always-on gate(s) read from and feed only gateable domains \
                 (first: {} driving net {})",
                sandwiched.len(),
                first.kind,
                first.output
            ),
        ));
    }

    // PD006 / PD007: the semantic off-domain proofs.
    let mut verdicts: Vec<String> = Vec::new();
    for (d, name) in domains.iter().enumerate() {
        if d == ALWAYS_ON || !populated[d] {
            continue;
        }
        let Some(proof) = prove_domain_off(netlist, d) else {
            verdicts.push(format!("{name}: not interpretable"));
            continue;
        };
        for leak in proof.leaks.iter().take(MAX_REPORTED_LEAKS) {
            let info = if leak.at_output {
                &codes::PD007
            } else {
                &codes::PD006
            };
            let steps: Vec<String> = leak
                .path
                .iter()
                .map(|&n| step_label(netlist, &net_domain, d, n))
                .chain([format!("observed by {}", leak.sink)])
                .collect();
            report.push(
                Diagnostic::new(
                    info,
                    format!("net {}", leak.net),
                    format!(
                        "powering down domain `{name}` drives {} to X through an \
                         unclamped boundary ({} step route attached)",
                        leak.sink,
                        leak.path.len()
                    ),
                )
                .with_steps(steps),
            );
        }
        verdicts.push(if proof.is_isolated() {
            format!("{name}: isolated ({} clamp(s))", proof.clamped)
        } else {
            format!("{name}: LEAKS ({} escape(s))", proof.leaks.len())
        });
    }

    // PD008: one informational summary whenever intent is declared.
    let iso_count = iso.iter().filter(|k| k.is_some()).count();
    let gateable = (0..domains.len())
        .filter(|&d| d != ALWAYS_ON && populated[d])
        .count();
    report.push(Diagnostic::new(
        &codes::PD008,
        format!("netlist `{}`", netlist.name()),
        format!(
            "{} domain(s) ({gateable} gateable), {} crossing edge(s), {iso_count} \
             isolation cell(s); off-domain proofs: {}",
            domains.len(),
            crossings.len(),
            if verdicts.is_empty() {
                "none".to_string()
            } else {
                verdicts.join(", ")
            }
        ),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_rtl::{NetlistBuilder, Word};

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    /// One gateable domain, properly clamped at its only exit.
    fn isolated_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("iso_ok");
        let a = b.input("a", 1);
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let inv = b.not(a.bit(0));
        b.domain("core");
        let clamped = b.isolation_cell(IsolationKind::Clamp0, inv, en_n.bit(0));
        let out = b.not(clamped);
        b.output("x", &Word::from_nets(vec![out]));
        b.finish().unwrap()
    }

    /// Two exits from `unit`: one clamped, one straight into live logic.
    fn leaky_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("leaky");
        let a = b.input("a", 2);
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let inv0 = b.not(a.bit(0));
        let inv1 = b.not(a.bit(1));
        b.domain("core");
        let clamped = b.isolation_cell(IsolationKind::Clamp0, inv0, en_n.bit(0));
        let merged = b.or(inv1, clamped);
        b.output("x", &Word::from_nets(vec![merged]));
        b.finish().unwrap()
    }

    #[test]
    fn isolated_domain_proves_clean() {
        let n = isolated_netlist();
        let unit = n.domains().iter().position(|d| d == "unit").unwrap();
        let proof = prove_domain_off(&n, unit).unwrap();
        assert!(proof.is_isolated(), "leaks: {:?}", proof.leaks);
        assert_eq!(proof.clamped, 1);
        let report = lint_power_intent(&n);
        assert_eq!(codes_of(&report), vec!["PD008"], "{}", report.text());
        assert!(!report.has_errors());
    }

    #[test]
    fn unclamped_crossing_leaks_and_lints() {
        let n = leaky_netlist();
        let unit = n.domains().iter().position(|d| d == "unit").unwrap();
        let proof = prove_domain_off(&n, unit).unwrap();
        assert!(!proof.is_isolated());
        // One frontier leak (the OR gate) plus the tainted primary output.
        assert_eq!(proof.leaks.len(), 2, "{:?}", proof.leaks);
        assert!(proof.leaks.iter().any(|l| l.at_output));
        let frontier = proof.leaks.iter().find(|l| !l.at_output).unwrap();
        assert!(frontier.path.len() >= 2, "{:?}", frontier.path);

        let report = lint_power_intent(&n);
        let codes = codes_of(&report);
        assert!(codes.contains(&"PD001"), "{}", report.text());
        assert!(codes.contains(&"PD006"), "{}", report.text());
        assert!(codes.contains(&"PD007"), "{}", report.text());
        assert!(codes.contains(&"PD008"), "{}", report.text());
        let pd6 = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "PD006")
            .unwrap();
        assert!(!pd6.steps.is_empty(), "escape must carry its route");
        assert!(pd6.steps[0].contains("powered-off domain `unit`"));
    }

    #[test]
    fn masked_crossing_does_not_leak_semantically() {
        // The crossing is ANDed against constant 0: structurally a PD001,
        // semantically provably harmless.
        let mut b = NetlistBuilder::new("masked");
        let a = b.input("a", 1);
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let inv = b.not(a.bit(0));
        b.domain("core");
        let zero = b.const0();
        let dead = b.and(inv, zero);
        let iso = b.isolation_cell(IsolationKind::Clamp0, inv, en_n.bit(0));
        let out = b.or(dead, iso);
        b.output("x", &Word::from_nets(vec![out]));
        let n = b.finish().unwrap();
        let unit = n.domains().iter().position(|d| d == "unit").unwrap();
        let proof = prove_domain_off(&n, unit).unwrap();
        assert!(proof.is_isolated(), "{:?}", proof.leaks);
        let codes = codes_of(&lint_power_intent(&n));
        assert!(codes.contains(&"PD001"));
        assert!(!codes.contains(&"PD006"));
        assert!(!codes.contains(&"PD007"));
    }

    #[test]
    fn undeclared_intent_stays_silent() {
        // Multi-domain partitioning without isolation marks is not power
        // intent; the lint must not punish it (the paper benches rely on
        // this).
        let mut b = NetlistBuilder::new("partitioned");
        let a = b.input("a", 1);
        b.domain("unit");
        let inv = b.not(a.bit(0));
        b.domain("core");
        let out = b.not(inv);
        b.output("x", &Word::from_nets(vec![out]));
        let n = b.finish().unwrap();
        assert!(!n.has_power_intent());
        assert!(lint_power_intent(&n).is_clean());
        // The raw proof still answers what-if queries.
        let unit = n.domains().iter().position(|d| d == "unit").unwrap();
        assert!(!prove_domain_off(&n, unit).unwrap().is_isolated());
    }

    #[test]
    fn wrong_polarity_is_pd002_and_leaks() {
        // Parsed, not built: the builder cannot produce a contradictory
        // mark, but the attribute grammar can claim clamp1 on an AND.
        let text = "\
module wrongpol (a, en_n, x);
  input a;
  input en_n;
  output x;
  wire n3;
  wire n4;
  wire n5;
  wire n6;
  assign n3 = a[0];
  assign n4 = en_n[0];
  (* power_domain = \"unit\" *) not g0 (n5, n3);
  (* isolation = \"clamp1\" *) and g1 (n6, n5, n4);
  assign x[0] = n6;
endmodule
";
        let n = psm_rtl::parse_verilog(text).unwrap();
        assert!(n.has_power_intent());
        let report = lint_power_intent(&n);
        let codes = codes_of(&report);
        assert!(codes.contains(&"PD002"), "{}", report.text());
        // The contradictory cell protects nothing, so the crossing is
        // unisolated and the proof leaks through it.
        assert!(codes.contains(&"PD001"), "{}", report.text());
        assert!(codes.contains(&"PD007"), "{}", report.text());
    }

    #[test]
    fn uncontrollable_and_sandwiched_logic_warn() {
        let mut b = NetlistBuilder::new("pd45");
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let r = b.register("r", 1);
        let inv = b.not(r.q().bit(0));
        b.connect_register(&r, &Word::from_nets(vec![inv]));
        b.domain("core");
        let mid = b.not(inv); // always-on, feeds only `dsp`
        b.domain("dsp");
        let dsp = b.not(mid);
        b.domain("core");
        let out = b.isolation_cell(IsolationKind::Clamp0, dsp, en_n.bit(0));
        b.output("x", &Word::from_nets(vec![out]));
        let n = b.finish().unwrap();
        let report = lint_power_intent(&n);
        let codes = codes_of(&report);
        // Neither `unit` nor `dsp` sees any primary input.
        assert_eq!(codes.iter().filter(|c| **c == "PD004").count(), 2);
        assert!(codes.contains(&"PD005"), "{}", report.text());
        assert!(codes.contains(&"PD001"), "{}", report.text());
        // Powering `unit` down taints `mid` (frontier) but the clamp stops
        // it before the output.
        assert!(codes.contains(&"PD006"), "{}", report.text());
        assert!(!codes.contains(&"PD007"), "{}", report.text());
    }

    #[test]
    fn pointless_isolation_mark_is_pd003() {
        let mut b = NetlistBuilder::new("pointless");
        let a = b.input("a", 2);
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let inv = b.not(a.bit(0));
        b.domain("core");
        // A real clamp so intent is declared and the crossing is safe…
        let iso = b.isolation_cell(IsolationKind::Clamp0, inv, en_n.bit(0));
        // …and a second mark on a cell no crossing passes through.
        let pointless = b.isolation_cell(IsolationKind::Clamp0, iso, a.bit(1));
        b.output("x", &Word::from_nets(vec![pointless]));
        let n = b.finish().unwrap();
        let report = lint_power_intent(&n);
        let codes = codes_of(&report);
        assert!(codes.contains(&"PD003"), "{}", report.text());
        assert!(!report.has_errors(), "{}", report.text());
    }

    #[test]
    fn off_domain_state_loss_taints_registers() {
        // A register inside the gated domain loses its state; an unclamped
        // read of its q net leaks even though the net is sequential.
        let mut b = NetlistBuilder::new("seqleak");
        let a = b.input("a", 1);
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let r = b.register("r", 1);
        let nxt = b.xor(r.q().bit(0), a.bit(0));
        b.connect_register(&r, &Word::from_nets(vec![nxt]));
        b.domain("core");
        let iso = b.isolation_cell(IsolationKind::Clamp1, nxt, en_n.bit(0));
        let merged = b.and(r.q().bit(0), iso);
        b.output("x", &Word::from_nets(vec![merged]));
        let n = b.finish().unwrap();
        let unit = n.domains().iter().position(|d| d == "unit").unwrap();
        let proof = prove_domain_off(&n, unit).unwrap();
        assert!(!proof.is_isolated());
        assert!(proof
            .leaks
            .iter()
            .any(|l| l.path.first() == Some(&r.q().bit(0))));
    }

    #[test]
    fn out_of_range_domain_is_none() {
        let n = isolated_netlist();
        assert!(prove_domain_off(&n, n.domains().len()).is_none());
    }
}
