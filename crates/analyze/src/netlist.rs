//! Structural lints over the gate-level netlist IR.

use crate::{codes, AnalysisReport, Diagnostic};
use psm_rtl::{levelize, Netlist, RtlError};
use psm_trace::Direction;
use std::collections::{BTreeSet, VecDeque};

/// Statically checks a netlist for structural defects.
///
/// Emits, in order: `NL006` (cell arity mismatches, including LUT tables
/// too small for their pin count), `NL007` (net references beyond the net
/// count — if any are present the remaining checks are skipped, since the
/// netlist is not safely indexable), `NL002` (multi-driven nets), `NL003`
/// (read-but-undriven nets), `NL001` (combinational cycles, surfaced from
/// [`psm_rtl::levelize`]), `NL004` (dead logic cones that reach no output
/// port, register or memory) and `NL005` (input port bits nothing reads).
pub fn lint_netlist(netlist: &Netlist) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("netlist `{}`", netlist.name()));
    let nets = netlist.net_count();

    // NL006: pin counts that don't match the cell kind.
    for (gi, g) in netlist.gates().iter().enumerate() {
        match g.kind.arity() {
            Some(arity) if g.inputs.len() != arity => {
                report.push(Diagnostic::new(
                    &codes::NL006,
                    format!("gate #{gi} ({})", g.kind),
                    format!(
                        "{} expects {arity} input(s), has {}",
                        g.kind,
                        g.inputs.len()
                    ),
                ));
            }
            None => {
                // LUT: the packed table must cover all 2^k index values.
                if let psm_rtl::GateKind::Lut { table } = &g.kind {
                    let needed_words = (1usize << g.inputs.len()).div_ceil(64);
                    if table.len() < needed_words {
                        report.push(Diagnostic::new(
                            &codes::NL006,
                            format!("gate #{gi} (LUT)"),
                            format!(
                                "{}-input LUT needs {needed_words} table word(s), has {}",
                                g.inputs.len(),
                                table.len()
                            ),
                        ));
                    }
                }
            }
            Some(_) => {}
        }
    }

    // NL007: references outside the net table make every other analysis
    // unsound, so collect them and stop early when present.
    let mut out_of_range = BTreeSet::new();
    {
        let mut check = |n: psm_rtl::NetId| {
            if n.index() >= nets {
                out_of_range.insert(n.index());
            }
        };
        for g in netlist.gates() {
            g.inputs.iter().for_each(|&n| check(n));
            check(g.output);
        }
        for d in netlist.dffs() {
            check(d.d);
            check(d.q);
        }
        for m in netlist.memories() {
            for &n in m.addr.iter().chain(&m.wdata).chain(&m.rdata) {
                check(n);
            }
            check(m.we);
            check(m.re);
            check(m.clear);
        }
        for p in netlist.ports() {
            p.nets().iter().for_each(|&n| check(n));
        }
    }
    for idx in &out_of_range {
        report.push(Diagnostic::new(
            &codes::NL007,
            format!("net n{idx}"),
            format!("referenced net n{idx} is beyond the net count {nets}"),
        ));
    }
    if !out_of_range.is_empty() {
        return report;
    }

    // Driver census, mirroring Netlist::validate but reporting every
    // offender instead of stopping at the first.
    let mut drivers = vec![0usize; nets];
    drivers[Netlist::CONST0.index()] += 1;
    drivers[Netlist::CONST1.index()] += 1;
    for p in netlist.ports() {
        if p.direction() == Direction::Input {
            for &n in p.nets() {
                drivers[n.index()] += 1;
            }
        }
    }
    for g in netlist.gates() {
        drivers[g.output.index()] += 1;
    }
    for d in netlist.dffs() {
        drivers[d.q.index()] += 1;
    }
    for m in netlist.memories() {
        for &n in &m.rdata {
            drivers[n.index()] += 1;
        }
    }
    for (idx, &count) in drivers.iter().enumerate() {
        if count > 1 {
            report.push(Diagnostic::new(
                &codes::NL002,
                format!("net n{idx}"),
                format!("net n{idx} has {count} drivers"),
            ));
        }
    }

    // NL003: everything a cell, memory, register or output port reads.
    let mut read = vec![false; nets];
    for g in netlist.gates() {
        for &n in &g.inputs {
            read[n.index()] = true;
        }
    }
    for d in netlist.dffs() {
        read[d.d.index()] = true;
    }
    for m in netlist.memories() {
        for &n in m.addr.iter().chain(&m.wdata) {
            read[n.index()] = true;
        }
        read[m.we.index()] = true;
        read[m.re.index()] = true;
        read[m.clear.index()] = true;
    }
    for p in netlist.ports() {
        if p.direction() == Direction::Output {
            for &n in p.nets() {
                read[n.index()] = true;
            }
        }
    }
    for idx in 0..nets {
        if read[idx] && drivers[idx] == 0 {
            report.push(Diagnostic::new(
                &codes::NL003,
                format!("net n{idx}"),
                format!("net n{idx} is read but has no driver"),
            ));
        }
    }

    // NL001: cyclic combinational logic.
    if let Err(RtlError::CombinationalLoop { net }) = levelize(netlist) {
        report.push(Diagnostic::new(
            &codes::NL001,
            format!("net {net}"),
            format!("combinational cycle through net {net}"),
        ));
    }

    // NL004: gates whose fan-out cone reaches no observable point.
    // Walk backwards from every sink (output port bits, register data
    // inputs, memory control/data/address pins) through gate drivers.
    let mut driver_gate: Vec<Option<usize>> = vec![None; nets];
    for (gi, g) in netlist.gates().iter().enumerate() {
        driver_gate[g.output.index()] = Some(gi);
    }
    let mut live_net = vec![false; nets];
    let mut queue = VecDeque::new();
    let seed = |n: psm_rtl::NetId, queue: &mut VecDeque<usize>, live: &mut Vec<bool>| {
        if !live[n.index()] {
            live[n.index()] = true;
            queue.push_back(n.index());
        }
    };
    for p in netlist.ports() {
        if p.direction() == Direction::Output {
            for &n in p.nets() {
                seed(n, &mut queue, &mut live_net);
            }
        }
    }
    for d in netlist.dffs() {
        seed(d.d, &mut queue, &mut live_net);
    }
    for m in netlist.memories() {
        for &n in m.addr.iter().chain(&m.wdata) {
            seed(n, &mut queue, &mut live_net);
        }
        seed(m.we, &mut queue, &mut live_net);
        seed(m.re, &mut queue, &mut live_net);
        seed(m.clear, &mut queue, &mut live_net);
    }
    while let Some(idx) = queue.pop_front() {
        if let Some(gi) = driver_gate[idx] {
            for &n in &netlist.gates()[gi].inputs {
                if !live_net[n.index()] {
                    live_net[n.index()] = true;
                    queue.push_back(n.index());
                }
            }
        }
    }
    let dead: Vec<usize> = netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !live_net[g.output.index()])
        .map(|(gi, _)| gi)
        .collect();
    if !dead.is_empty() {
        let first = &netlist.gates()[dead[0]];
        report.push(Diagnostic::new(
            &codes::NL004,
            format!("net {}", first.output),
            format!(
                "{} gate(s) reach no output, register or memory (first: {} driving {})",
                dead.len(),
                first.kind,
                first.output
            ),
        ));
    }

    // NL005: declared input bits that feed nothing.
    for p in netlist.ports() {
        if p.direction() != Direction::Input {
            continue;
        }
        let unused: Vec<usize> = p
            .nets()
            .iter()
            .enumerate()
            .filter(|(_, n)| !read[n.index()])
            .map(|(bit, _)| bit)
            .collect();
        if !unused.is_empty() {
            report.push(Diagnostic::new(
                &codes::NL005,
                format!("port `{}`", p.name()),
                format!(
                    "{} of {} input bit(s) never read (bits {:?})",
                    unused.len(),
                    p.width(),
                    unused
                ),
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_rtl::NetlistBuilder;

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    fn clean_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("clean");
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let x = b.and(a.bit(0), c.bit(0));
        b.output("x", &psm_rtl::Word::from_nets(vec![x]));
        b.finish().unwrap()
    }

    #[test]
    fn clean_netlist_has_no_diagnostics() {
        let report = lint_netlist(&clean_netlist());
        assert!(report.is_clean(), "{}", report.text());
    }

    #[test]
    fn artifact_names_the_module() {
        let report = lint_netlist(&clean_netlist());
        assert!(report.artifact().contains("clean"));
    }

    #[test]
    fn unused_input_bit_is_nl005() {
        let mut b = NetlistBuilder::new("widein");
        let a = b.input("a", 3);
        let c = b.not(a.bit(0));
        b.output("x", &psm_rtl::Word::from_nets(vec![c]));
        let n = b.finish().unwrap();
        let report = lint_netlist(&n);
        assert_eq!(codes_of(&report), vec!["NL005"]);
        let d = &report.diagnostics()[0];
        assert!(d.message.contains("2 of 3"), "{}", d.message);
    }
}
