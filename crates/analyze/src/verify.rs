//! Bounded model checking of mined temporal assertions against the netlist.
//!
//! The miner (psm-mining) extracts `p X q` / `p U q` assertions from *one*
//! training trace; nothing guarantees they hold on every behaviour the
//! gate-level implementation can exhibit. This module closes that loop with
//! a bounded reachability engine over the netlist:
//!
//! * **exhaustive mode** — when the primary-input width fits the
//!   [`VerifyConfig::enum_bits`] budget, a breadth-first search over
//!   concrete simulator states enumerates *every* input assignment per
//!   cycle up to [`VerifyConfig::depth`], de-duplicating on the simulator's
//!   functional state. Verdicts are definitive to the depth;
//! * **abstract mode** — otherwise, the ternary-lattice interpreter of
//!   [`crate::analyze_dataflow`] is extended from a single-cycle fixpoint
//!   to a k-cycle sequential unroller ([`unroll_ternary`]): inputs are
//!   `X` every cycle, registers start at their reset values and each
//!   instant's net values over-approximate all concrete runs. The
//!   abstraction can soundly prove *vacuity* (an antecedent that is
//!   forced-false at every instant is unsatisfiable) and detect *forced*
//!   violations (everything the assertion allows is forced-false right
//!   after a forced-true antecedent), but never claims `proved`.
//!
//! Every check returns a [`Verdict`]: **proved** (to the depth),
//! **refuted** — with a concrete per-cycle primary-input stimulus that is
//! re-simulated through the untouched [`Simulator`] and confirmed to
//! violate the assertion *before* it is reported — **vacuous**, or
//! **unknown**. Counterexamples carry a per-cycle trace that surfaces as
//! SARIF `codeFlows` and replayable `.csv` witness stimuli
//! (`psmlint --replay`).
//!
//! Because assertions are mined per occurrence, one antecedent may carry
//! several mined successors (`p X q₁` and `p X q₂` from different parts of
//! the trace, or `p U q` allowing `p` itself). A transition `p → r` only
//! refutes the assertions on `p` when `r` is outside the *union* of their
//! allowed successors — the disjunctive reading under which the mined set
//! describes the model's transition structure.
//!
//! Mined propositions also constrain primary inputs, which the design
//! does not control: an adversarial environment can always steer the
//! inputs away from anything the training trace exhibited, and that alone
//! must not refute an assertion about the *design*. A transition `p → r`
//! therefore only counts as a violation when some allowed successor `q`
//! agrees with `r` on every input-only atom — the environment behaved as
//! the assertion anticipated, yet the design's response still diverged.
//! Runs whose inputs leave the mined assumptions are simply outside the
//! assertion's scope (surfaced once as MC007 when the whole port
//! valuation leaves the dictionary).

use crate::dataflow::{analyze_dataflow, eval_ternary, Ternary};
use crate::{codes, AnalysisReport, Diagnostic};
use psm_core::{Psm, StateId};
use psm_mining::{
    AtomicProposition, PropositionId, PropositionTable, TemporalAssertion, TemporalPattern,
};
use psm_prng::Prng;
use psm_rtl::{levelize, Netlist, PortHandle, Simulator};
use psm_trace::{Bits, Direction};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Knobs of the bounded verification pass (the `[verify]` section of
/// `psmlint.toml`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Unroll depth k: instants checked per run. `0` disables the pass.
    pub depth: usize,
    /// Exhaustive-mode budget: total primary-input bits up to which every
    /// input assignment is enumerated per cycle (`2^enum_bits` branches).
    /// Assignments are packed into a `u64`, so widths of 64 bits or more
    /// never enumerate regardless of this value — they use the abstract
    /// engine (config parsing rejects such settings up front).
    pub enum_bits: usize,
    /// Exhaustive-mode cap on distinct `(state, proposition)` nodes; past
    /// it the search falls back to the abstract unroller.
    pub max_states: usize,
    /// Optional concrete random runs (of `depth` cycles each) hunting for
    /// counterexamples beyond what the abstract engine can force. Off by
    /// default: random stimuli routinely leave the mined vocabulary on
    /// models trained from directed traces.
    pub samples: usize,
    /// Seed of the deterministic sampling PRNG.
    pub seed: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            depth: 8,
            enum_bits: 6,
            max_states: 512,
            samples: 0,
            seed: 0xB0DE,
        }
    }
}

/// Which engine produced the verdicts of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Every input assignment enumerated; verdicts definitive to the depth.
    Exhaustive,
    /// Ternary over-approximation; only refutations and vacuity are claimed.
    Abstract,
}

impl VerifyMode {
    /// Stable lowercase name (used in the MC003 summary).
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Exhaustive => "exhaustive",
            VerifyMode::Abstract => "abstract",
        }
    }
}

/// Outcome of checking one mined assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No reachable behaviour violates the assertion up to the depth
    /// (exhaustive mode only).
    Proved,
    /// A concrete, re-simulated stimulus violates the assertion.
    Refuted,
    /// The antecedent proposition is unreachable within the depth.
    Vacuous,
    /// The bounded engines could neither prove nor refute.
    Unknown,
}

impl Verdict {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Refuted => "refuted",
            Verdict::Vacuous => "vacuous",
            Verdict::Unknown => "unknown",
        }
    }
}

/// A confirmed counterexample: a cycle-accurate primary-input stimulus
/// that re-simulates to an assertion violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Input port names, in declaration order (the witness CSV header).
    pub inputs: Vec<String>,
    /// One value per input port per cycle, declaration order.
    pub stimulus: Vec<Vec<Bits>>,
    /// Instant (0-based) at which the forbidden successor appears.
    pub violation_instant: usize,
    /// Human-readable per-cycle trace (rendered as SARIF `codeFlows`).
    pub steps: Vec<String>,
}

/// The per-assertion result of a verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionCheck {
    /// The mined assertion under check.
    pub assertion: TemporalAssertion,
    /// Its rendering over the proposition table (stable across runs).
    pub text: String,
    /// The verdict.
    pub verdict: Verdict,
    /// The confirmed counterexample behind a [`Verdict::Refuted`].
    pub counterexample: Option<Counterexample>,
}

/// Everything a verification run produced.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// The MC-family diagnostics of the run.
    pub report: AnalysisReport,
    /// One entry per distinct mined assertion.
    pub checks: Vec<AssertionCheck>,
    /// Which engine ran.
    pub mode: VerifyMode,
    /// The depth the verdicts hold to.
    pub depth: usize,
}

/// Unrolls the ternary abstract interpreter for `depth` cycles.
///
/// Mirrors one [`Simulator::step`] per instant: register outputs carry the
/// previous instant's sampled `d` values (reset values at the first
/// instant), primary inputs and memory read-data are `X`, and the
/// combinational cone settles in levelized order through
/// [`eval_ternary`]. Element `t` of the result holds the settled value of
/// every net at instant `t`, indexed by `NetId::index`.
///
/// The result over-approximates every concrete run: for any stimulus, the
/// concrete value of each net at instant `t` is contained in (`⊑`) the
/// returned ternary value — the soundness property pinned by the
/// `verify_unroller_soundness` test suite.
///
/// Returns `None` when the netlist is not safely interpretable (cycles,
/// arity mismatches, out-of-range nets) — the structural lints report
/// those.
pub fn unroll_ternary(netlist: &Netlist, depth: usize) -> Option<Vec<Vec<Ternary>>> {
    // Validation (arity, net ranges, levelizability) is the single-cycle
    // analysis' preamble; reuse it wholesale.
    analyze_dataflow(netlist)?;
    let order = levelize(netlist).ok()?;
    let nets = netlist.net_count();
    let mut qs: Vec<Ternary> = netlist
        .dffs()
        .iter()
        .map(|d| Ternary::from_bool(d.init))
        .collect();
    let mut out = Vec::with_capacity(depth);
    for _ in 0..depth {
        let mut values = vec![Ternary::X; nets];
        values[Netlist::CONST0.index()] = Ternary::Zero;
        values[Netlist::CONST1.index()] = Ternary::One;
        for (d, &q) in netlist.dffs().iter().zip(&qs) {
            values[d.q.index()] = q;
        }
        for &gi in &order {
            let g = &netlist.gates()[gi];
            let ins: Vec<Ternary> = g.inputs.iter().map(|n| values[n.index()]).collect();
            values[g.output.index()] = eval_ternary(&g.kind, &ins);
        }
        for (qs_i, d) in qs.iter_mut().zip(netlist.dffs()) {
            *qs_i = values[d.d.index()];
        }
        out.push(values);
    }
    Some(out)
}

/// Three-valued truth of a proposition at an abstract instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    /// Forced false: no concrete run satisfies it here.
    No,
    /// Undecided under the abstraction.
    Maybe,
    /// Forced true: every concrete run satisfies it here.
    Yes,
}

/// Ternary truth of one atomic proposition over abstract port words.
fn atom_ternary(atom: &AtomicProposition, ports: &[Vec<Ternary>]) -> Ternary {
    match atom {
        AtomicProposition::VarEqConst { signal, value } => {
            let word = &ports[signal.index()];
            if value.width() != word.len() {
                return Ternary::Zero;
            }
            let mut unknown = false;
            for (i, t) in word.iter().enumerate() {
                match t.as_const() {
                    Some(b) if b != value.bit(i) => return Ternary::Zero,
                    Some(_) => {}
                    None => unknown = true,
                }
            }
            if unknown {
                Ternary::X
            } else {
                Ternary::One
            }
        }
        AtomicProposition::VarCmpVar { left, cmp, right } => {
            let (a, b) = (&ports[left.index()], &ports[right.index()]);
            if a.len() != b.len() {
                return Ternary::X;
            }
            // Unsigned compare, deciding at the most significant bit pair
            // that is known on both sides and differs; any `X` above the
            // decision point keeps the outcome unknown.
            for i in (0..a.len()).rev() {
                match (a[i].as_const(), b[i].as_const()) {
                    (Some(x), Some(y)) if x == y => {}
                    (Some(x), Some(y)) => return Ternary::from_bool(cmp.test(x.cmp(&y))),
                    _ => return Ternary::X,
                }
            }
            Ternary::from_bool(cmp.test(std::cmp::Ordering::Equal))
        }
    }
}

/// Three-valued truth of an interned proposition given its atoms' ternary
/// truths.
fn proposition_status(table: &PropositionTable, id: PropositionId, atoms: &[Ternary]) -> Tri {
    let p = table.get(id);
    let mut all_known = true;
    for (i, t) in atoms.iter().enumerate() {
        match t.as_const() {
            Some(b) if b != p.atom_truth(i) => return Tri::No,
            Some(_) => {}
            None => all_known = false,
        }
    }
    if all_known {
        Tri::Yes
    } else {
        Tri::Maybe
    }
}

/// `true` when the table's signal interface and the netlist's port list
/// agree on names, widths and directions — the precondition for reading
/// sampled port cycles as proposition rows (XA001's concern; verification
/// silently steps aside when it does not hold).
fn interface_matches(netlist: &Netlist, table: &PropositionTable) -> bool {
    let ports = netlist.signal_set();
    let signals = table.vocabulary().signals();
    ports.len() == signals.len()
        && ports.iter().zip(signals.iter()).all(|((_, a), (_, b))| {
            a.name() == b.name() && a.width() == b.width() && a.direction() == b.direction()
        })
}

/// The distinct mined assertions of a PSM, in first-appearance order.
fn collect_assertions(psm: &Psm) -> Vec<TemporalAssertion> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (_, state) in psm.states() {
        for chain in state.chains() {
            for part in chain.parts() {
                let key = (
                    part.pattern() == TemporalPattern::Until,
                    part.left().index(),
                    part.right().index(),
                );
                if seen.insert(key) {
                    out.push(*part);
                }
            }
        }
    }
    out
}

/// Allowed-successor sets under the disjunctive reading: for each
/// antecedent, the union of the consequents of its assertions, plus the
/// antecedent itself for `U` patterns (an until may keep holding).
fn allowed_successors(assertions: &[TemporalAssertion]) -> BTreeMap<usize, BTreeSet<usize>> {
    let mut allowed: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for a in assertions {
        let entry = allowed.entry(a.left().index()).or_default();
        entry.insert(a.right().index());
        if a.is_until() {
            entry.insert(a.left().index());
        }
    }
    allowed
}

/// Input port names and widths, declaration order.
fn input_ports(netlist: &Netlist) -> Vec<(String, usize)> {
    netlist
        .ports()
        .iter()
        .filter(|p| p.direction() == Direction::Input)
        .map(|p| (p.name().to_owned(), p.width()))
        .collect()
}

/// The violation predicate shared by every engine: the allowed-successor
/// relation plus the environment-compatibility filter from the module
/// docs.
struct Checker<'a> {
    table: &'a PropositionTable,
    allowed: BTreeMap<usize, BTreeSet<usize>>,
    /// Indices of atoms referencing only input signals.
    input_atoms: Vec<usize>,
}

impl<'a> Checker<'a> {
    fn new(table: &'a PropositionTable, assertions: &[TemporalAssertion]) -> Self {
        let signals = table.vocabulary().signals();
        let is_input = |id: psm_trace::SignalId| signals.decl(id).direction() == Direction::Input;
        let input_atoms = table
            .vocabulary()
            .atoms()
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                let all_inputs = match a {
                    AtomicProposition::VarEqConst { signal, .. } => is_input(*signal),
                    AtomicProposition::VarCmpVar { left, right, .. } => {
                        is_input(*left) && is_input(*right)
                    }
                };
                all_inputs.then_some(i)
            })
            .collect();
        Checker {
            table,
            allowed: allowed_successors(assertions),
            input_atoms,
        }
    }

    /// `true` when the transition from a cycle satisfying `antecedent` to
    /// the port valuation `next_row` (classified as `next_prop`) violates
    /// the mined assertion set.
    fn violates(
        &self,
        antecedent: PropositionId,
        next_row: &[Bits],
        next_prop: Option<PropositionId>,
    ) -> bool {
        let Some(next) = self.allowed.get(&antecedent.index()) else {
            return false;
        };
        if let Some(b) = next_prop {
            if next.contains(&b.index()) {
                return false;
            }
        }
        // Environment compatibility: some allowed successor must agree
        // with the actual row on every input-only atom, otherwise the
        // stimulus left the assertion's assumptions.
        let packed = self.table.vocabulary().evaluate_row(next_row);
        let truth = |i: usize| (packed[i / 64] >> (i % 64)) & 1 == 1;
        next.iter().any(|&q| {
            let qp = self.table.get(PropositionId::from_index(q as u32));
            self.input_atoms
                .iter()
                .all(|&i| truth(i) == qp.atom_truth(i))
        })
    }
}

/// Replays `stimulus` from reset; returns the classified proposition and
/// the sampled port valuation per instant, or `None` when the simulator
/// rejects the netlist or stimulus.
#[allow(clippy::type_complexity)]
fn simulate_props(
    netlist: &Netlist,
    table: &PropositionTable,
    stimulus: &[Vec<Bits>],
) -> Option<(Vec<Option<PropositionId>>, Vec<Vec<Bits>>)> {
    let mut sim = Simulator::new(netlist).ok()?;
    let handles: Vec<PortHandle> = sim.input_handles().into_iter().map(|(_, h)| h).collect();
    let mut props = Vec::with_capacity(stimulus.len());
    let mut rows = Vec::with_capacity(stimulus.len());
    for cycle in stimulus {
        if cycle.len() != handles.len() {
            return None;
        }
        for (&h, bits) in handles.iter().zip(cycle) {
            sim.set_input_by_handle(h, bits).ok()?;
        }
        sim.step();
        let row = sim.sample_ports();
        props.push(table.classify(&row));
        rows.push(row);
    }
    Some((props, rows))
}

/// Renders the per-cycle trace of a stimulus for SARIF `codeFlows`.
fn render_steps(
    table: &PropositionTable,
    inputs: &[(String, usize)],
    stimulus: &[Vec<Bits>],
    props: &[Option<PropositionId>],
) -> Vec<String> {
    stimulus
        .iter()
        .zip(props)
        .enumerate()
        .map(|(t, (cycle, prop))| {
            let ins: Vec<String> = inputs
                .iter()
                .zip(cycle)
                .map(|((name, _), bits)| format!("{name}={bits}"))
                .collect();
            let row = match prop {
                Some(id) => format!("p{} {}", id.index(), table.render(*id)),
                None => "(row outside the mined dictionary)".to_owned(),
            };
            format!("cycle {t}: inputs {} -> {row}", ins.join(", "))
        })
        .collect()
}

/// Re-simulates a candidate stimulus and keeps it only when it truly
/// violates the allowed-successor relation. Returns the confirmed
/// counterexample and the violated antecedent.
///
/// With a `target` antecedent the replay looks specifically for a
/// violation of *that* antecedent — the replayed path may well violate a
/// different antecedent at an earlier cycle (which has its own candidate
/// in the exhaustive search), and returning that one instead would
/// silently drop the target's refutation.
fn confirm_witness(
    netlist: &Netlist,
    table: &PropositionTable,
    checker: &Checker<'_>,
    stimulus: Vec<Vec<Bits>>,
    target: Option<usize>,
) -> Option<(usize, Counterexample)> {
    let (props, rows) = simulate_props(netlist, table, &stimulus)?;
    let violation = (0..props.len().saturating_sub(1)).find_map(|t| {
        let a = props[t]?;
        if target.is_some_and(|want| want != a.index()) {
            return None;
        }
        checker
            .violates(a, &rows[t + 1], props[t + 1])
            .then_some((t + 1, a.index()))
    });
    let (instant, left) = violation?;
    let inputs = input_ports(netlist);
    let steps = render_steps(table, &inputs, &stimulus[..=instant], &props[..=instant]);
    Some((
        left,
        Counterexample {
            inputs: inputs.into_iter().map(|(n, _)| n).collect(),
            stimulus,
            violation_instant: instant,
            steps,
        },
    ))
}

/// What a reachability engine learned about the netlist × model pair.
struct Exploration {
    /// Complete to the depth: `proved` and unreachable-implies-vacuous may
    /// be claimed.
    complete: bool,
    /// Propositions observed reachable (exhaustive/sampled runs).
    reachable: BTreeSet<usize>,
    /// In abstract mode: propositions forced-false at *every* instant.
    never: BTreeSet<usize>,
    /// Confirmed counterexamples, one per violated antecedent.
    violations: BTreeMap<usize, Counterexample>,
    /// A confirmed reachable row outside the mined dictionary.
    unknown_row: Option<Counterexample>,
}

/// Splits a packed input assignment into per-port values.
fn unpack_combo(combo: u64, inputs: &[(String, usize)]) -> Vec<Bits> {
    let mut off = 0;
    inputs
        .iter()
        .map(|(_, w)| {
            let mask = if *w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            let bits = Bits::from_u64((combo >> off) & mask, *w);
            off += w;
            bits
        })
        .collect()
}

/// Exhaustive bounded search: breadth-first over concrete simulator
/// states, every input assignment per cycle, de-duplicating on
/// `(functional state, sampled proposition)`. Returns `None` when the
/// input width exceeds the budget or the node cap is hit — callers fall
/// back to the abstract engine.
fn exhaustive_search(
    netlist: &Netlist,
    table: &PropositionTable,
    checker: &Checker<'_>,
    cfg: &VerifyConfig,
) -> Option<Exploration> {
    let inputs = input_ports(netlist);
    let total_bits: usize = inputs.iter().map(|(_, w)| w).sum();
    // `total_bits >= 64` would overflow the packed-`u64` combination
    // representation below, whatever `enum_bits` the config asked for.
    if total_bits > cfg.enum_bits || total_bits >= 64 || cfg.depth == 0 {
        return None;
    }
    let base = Simulator::new(netlist).ok()?;
    let handles: Vec<PortHandle> = base.input_handles().into_iter().map(|(_, h)| h).collect();
    let combos: Vec<Vec<Bits>> = (0..1u64 << total_bits)
        .map(|c| unpack_combo(c, &inputs))
        .collect();

    struct Node {
        parent: usize,
        combo: usize,
        depth: usize,
        prop: Option<PropositionId>,
    }
    let mut nodes = vec![Node {
        parent: usize::MAX,
        combo: usize::MAX,
        depth: 0,
        prop: None,
    }];
    let mut seen: HashMap<(Vec<u64>, Option<usize>), ()> = HashMap::new();
    seen.insert((base.functional_state(), None), ());
    // FIFO order makes the search breadth-first, so the *first* discovery
    // of every `(state, prop)` key is at its minimal depth — the depthless
    // `seen` dedup below would otherwise hide shallower rediscoveries of a
    // state first met deep in an earlier subtree, silently truncating the
    // explored horizon while `complete` stays true.
    let mut frontier: VecDeque<(usize, Simulator)> = VecDeque::from([(0, base)]);

    let mut reachable = BTreeSet::new();
    // First candidate per violated antecedent / for an unmined row, as
    // node indices to rebuild the stimulus from.
    let mut candidates: BTreeMap<usize, usize> = BTreeMap::new();
    let mut unknown_candidate: Option<usize> = None;

    while let Some((ni, sim)) = frontier.pop_front() {
        if nodes[ni].depth >= cfg.depth {
            continue;
        }
        for (ci, combo) in combos.iter().enumerate() {
            let mut child = sim.clone();
            for (&h, bits) in handles.iter().zip(combo) {
                child.set_input_by_handle(h, bits).ok()?;
            }
            child.step();
            let sampled = child.sample_ports();
            let prop = table.classify(&sampled);
            let m = nodes.len();
            nodes.push(Node {
                parent: ni,
                combo: ci,
                depth: nodes[ni].depth + 1,
                prop,
            });
            match prop {
                Some(p) => {
                    reachable.insert(p.index());
                }
                None => {
                    if unknown_candidate.is_none() {
                        unknown_candidate = Some(m);
                    }
                }
            }
            // A transition out of a classified instant that the mined
            // assertion set does not allow is a violation candidate.
            if let Some(a) = nodes[ni].prop {
                if checker.violates(a, &sampled, prop) {
                    candidates.entry(a.index()).or_insert(m);
                }
            }
            let key = (child.functional_state(), prop.map(PropositionId::index));
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                e.insert(());
                if nodes.len() > cfg.max_states {
                    return None; // state blow-up: fall back to abstract
                }
                frontier.push_back((m, child));
            }
        }
    }

    let rebuild = |mut ni: usize| {
        let mut stim = Vec::new();
        while nodes[ni].parent != usize::MAX {
            stim.push(combos[nodes[ni].combo].clone());
            ni = nodes[ni].parent;
        }
        stim.reverse();
        stim
    };

    let mut complete = true;
    let mut violations = BTreeMap::new();
    for (&left, &node) in &candidates {
        // Replay through the untouched simulator before reporting; a
        // candidate that does not confirm for *its own* antecedent leaves
        // the search inconclusive rather than risking a false refutation
        // (or a false `Proved` for `left`, were the replay allowed to
        // attribute the path to an earlier violation of another
        // antecedent — that one has its own candidate here).
        match confirm_witness(netlist, table, checker, rebuild(node), Some(left)) {
            Some((_, cex)) => {
                violations.insert(left, cex);
            }
            None => complete = false,
        }
    }
    let unknown_row = unknown_candidate.and_then(|node| {
        let stimulus = rebuild(node);
        let (props, _) = simulate_props(netlist, table, &stimulus)?;
        let instant = props.iter().position(Option::is_none)?;
        let inputs = input_ports(netlist);
        let steps = render_steps(table, &inputs, &stimulus[..=instant], &props[..=instant]);
        Some(Counterexample {
            inputs: inputs.into_iter().map(|(n, _)| n).collect(),
            stimulus,
            violation_instant: instant,
            steps,
        })
    });

    Some(Exploration {
        complete,
        reachable,
        never: BTreeSet::new(),
        violations,
        unknown_row,
    })
}

/// Abstract bounded exploration over the k-cycle ternary unroller, plus
/// optional concrete random sampling.
fn abstract_search(
    netlist: &Netlist,
    table: &PropositionTable,
    checker: &Checker<'_>,
    cfg: &VerifyConfig,
) -> Exploration {
    let mut out = Exploration {
        complete: false,
        reachable: BTreeSet::new(),
        never: BTreeSet::new(),
        violations: BTreeMap::new(),
        unknown_row: None,
    };
    let Some(unrolled) = unroll_ternary(netlist, cfg.depth) else {
        return out;
    };
    // Per instant, per proposition: three-valued truth.
    let port_words = |values: &[Ternary]| -> Vec<Vec<Ternary>> {
        netlist
            .ports()
            .iter()
            .map(|p| p.nets().iter().map(|n| values[n.index()]).collect())
            .collect()
    };
    let mut status: Vec<BTreeMap<usize, Tri>> = Vec::with_capacity(unrolled.len());
    for values in &unrolled {
        let ports = port_words(values);
        let atoms: Vec<Ternary> = table
            .vocabulary()
            .atoms()
            .iter()
            .map(|a| atom_ternary(a, &ports))
            .collect();
        let mut per = BTreeMap::new();
        for id in table.ids() {
            per.insert(id.index(), proposition_status(table, id, &atoms));
        }
        status.push(per);
    }
    for id in table.ids() {
        if status.iter().all(|per| per[&id.index()] == Tri::No) {
            out.never.insert(id.index());
        }
    }
    // Forced violations: a forced-true antecedent whose every allowed
    // successor is forced-false at the next instant is violated by *all*
    // runs — any concrete stimulus (all-zero inputs here) must confirm.
    let inputs = input_ports(netlist);
    for t in 0..status.len().saturating_sub(1) {
        for (&left, next) in &checker.allowed {
            if out.violations.contains_key(&left) {
                continue;
            }
            if status[t].get(&left) == Some(&Tri::Yes)
                && next.iter().all(|r| status[t + 1].get(r) == Some(&Tri::No))
            {
                let zeros: Vec<Bits> = inputs.iter().map(|(_, w)| Bits::zero(*w)).collect();
                let stimulus = vec![zeros; t + 2];
                if let Some((_, cex)) =
                    confirm_witness(netlist, table, checker, stimulus, Some(left))
                {
                    out.violations.entry(left).or_insert(cex);
                }
            }
        }
    }
    // Optional concrete sampling: deterministic random stimuli, each
    // confirmed violation reported with its own replayable witness.
    let mut prng = Prng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.samples {
        let stimulus: Vec<Vec<Bits>> = (0..cfg.depth.max(2))
            .map(|_| {
                inputs
                    .iter()
                    .map(|(_, w)| {
                        let mut bits = Bits::zero(*w);
                        for i in 0..*w {
                            bits.set_bit(i, prng.chance(0.5));
                        }
                        bits
                    })
                    .collect()
            })
            .collect();
        let Some((props, _)) = simulate_props(netlist, table, &stimulus) else {
            continue;
        };
        for p in props.iter().flatten() {
            out.reachable.insert(p.index());
        }
        if let Some((left, cex)) = confirm_witness(netlist, table, checker, stimulus.clone(), None)
        {
            out.violations.entry(left).or_insert(cex);
        }
        if out.unknown_row.is_none() {
            if let Some(instant) = props.iter().position(Option::is_none) {
                let steps = render_steps(table, &inputs, &stimulus[..=instant], &props[..=instant]);
                out.unknown_row = Some(Counterexample {
                    inputs: inputs.iter().map(|(n, _)| n.clone()).collect(),
                    stimulus,
                    violation_instant: instant,
                    steps,
                });
            }
        }
    }
    out
}

/// Bounded verification of every mined assertion of `psm` against the
/// reachable behaviours of `netlist`, plus PSM-level reachability checks,
/// reported as the `MC` diagnostic family.
///
/// The proposition `table` must describe the same port interface as the
/// netlist (the XA001 lint's invariant); runs over mismatched pairs
/// produce a single informational note and no verdicts.
///
/// See the module-level docs for the engine selection and the exact
/// meaning of each verdict.
pub fn verify_model(
    netlist: &Netlist,
    table: &PropositionTable,
    psm: &Psm,
    cfg: &VerifyConfig,
) -> VerifyOutcome {
    let mut report = AnalysisReport::new(format!(
        "verify netlist `{}` against the mined model",
        netlist.name()
    ));
    let assertions = collect_assertions(psm);
    if cfg.depth == 0 || !interface_matches(netlist, table) {
        let why = if cfg.depth == 0 {
            "verification disabled (depth 0)"
        } else {
            "verification skipped: trace interface and netlist ports disagree (see XA001)"
        };
        report.push(Diagnostic::new(&codes::MC003, "verification run", why));
        return VerifyOutcome {
            report,
            checks: Vec::new(),
            mode: VerifyMode::Abstract,
            depth: cfg.depth,
        };
    }
    let checker = Checker::new(table, &assertions);
    let (mode, exploration) = match exhaustive_search(netlist, table, &checker, cfg) {
        Some(e) => (VerifyMode::Exhaustive, e),
        None => (
            VerifyMode::Abstract,
            abstract_search(netlist, table, &checker, cfg),
        ),
    };

    let mut checks = Vec::with_capacity(assertions.len());
    for assertion in &assertions {
        let left = assertion.left().index();
        let text = assertion.render(table);
        let (verdict, counterexample) = if let Some(cex) = exploration.violations.get(&left) {
            (Verdict::Refuted, Some(cex.clone()))
        } else if (exploration.complete && !exploration.reachable.contains(&left))
            || exploration.never.contains(&left)
        {
            (Verdict::Vacuous, None)
        } else if exploration.complete {
            (Verdict::Proved, None)
        } else {
            (Verdict::Unknown, None)
        };
        checks.push(AssertionCheck {
            assertion: *assertion,
            text,
            verdict,
            counterexample,
        });
    }

    for check in &checks {
        let location = format!("assertion `{}`", check.text);
        match check.verdict {
            Verdict::Refuted => {
                let cex = check.counterexample.as_ref().expect("refuted carries cex");
                report.push(
                    Diagnostic::new(
                        &codes::MC001,
                        location,
                        format!(
                            "refuted: a replayed {}-cycle stimulus reaches a successor the \
                             mined assertions forbid at cycle {}",
                            cex.stimulus.len(),
                            cex.violation_instant,
                        ),
                    )
                    .with_steps(cex.steps.clone()),
                );
            }
            Verdict::Vacuous => {
                report.push(Diagnostic::new(
                    &codes::MC002,
                    location,
                    format!(
                        "vacuous: antecedent p{} {} is unreachable within depth {}",
                        check.assertion.left().index(),
                        table.render(check.assertion.left()),
                        cfg.depth,
                    ),
                ));
            }
            Verdict::Proved | Verdict::Unknown => {}
        }
    }
    if let Some(cex) = &exploration.unknown_row {
        report.push(
            Diagnostic::new(
                &codes::MC007,
                format!("cycle {}", cex.violation_instant),
                format!(
                    "the netlist reaches a port valuation matching no mined proposition \
                     at cycle {} (confirmed by replay)",
                    cex.violation_instant,
                ),
            )
            .with_steps(cex.steps.clone()),
        );
    }

    psm_structure_checks(psm, table, &exploration, mode, &mut report);

    let tally = |v: Verdict| checks.iter().filter(|c| c.verdict == v).count();
    report.push(Diagnostic::new(
        &codes::MC003,
        "verification run",
        format!(
            "{} assertion(s) checked in {} mode to depth {}: {} proved, {} refuted, \
             {} vacuous, {} unknown",
            checks.len(),
            mode.name(),
            cfg.depth,
            tally(Verdict::Proved),
            tally(Verdict::Refuted),
            tally(Verdict::Vacuous),
            tally(Verdict::Unknown),
        ),
    ));

    VerifyOutcome {
        report,
        checks,
        mode,
        depth: cfg.depth,
    }
}

/// PSM-level checks on top of the reachability engine: dead states
/// (MC004), overlapping guards (MC005) and sink states (MC006).
fn psm_structure_checks(
    psm: &Psm,
    table: &PropositionTable,
    exploration: &Exploration,
    mode: VerifyMode,
    report: &mut AnalysisReport,
) {
    // MC004: no entry proposition of any chain is reachable on the
    // implementation within the bound.
    for (id, state) in psm.states() {
        let entries: Vec<usize> = state
            .chains()
            .iter()
            .map(|c| c.entry_proposition().index())
            .collect();
        if entries.is_empty() {
            continue;
        }
        let dead = match mode {
            VerifyMode::Exhaustive => {
                exploration.complete && entries.iter().all(|e| !exploration.reachable.contains(e))
            }
            VerifyMode::Abstract => entries.iter().all(|e| exploration.never.contains(e)),
        };
        if dead {
            report.push(Diagnostic::new(
                &codes::MC004,
                format!("state s{}", id.index()),
                format!(
                    "dead on the implementation: no entry proposition ({}) is reachable \
                     within the bound",
                    entries
                        .iter()
                        .map(|e| format!("p{e}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            ));
        }
    }
    // MC005: one guard, two different successors.
    for (id, _) in psm.states() {
        let mut by_guard: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for t in psm.successors(id) {
            by_guard
                .entry(t.guard.index())
                .or_default()
                .insert(t.to.index());
        }
        for (guard, targets) in by_guard {
            if targets.len() > 1 {
                report.push(Diagnostic::new(
                    &codes::MC005,
                    format!("state s{} guard p{guard}", id.index()),
                    format!(
                        "guard p{guard} {} leads to {} different states ({}): the \
                         \"exactly one successor\" invariant does not pick one",
                        table.render(PropositionId::from_index(guard as u32)),
                        targets.len(),
                        targets
                            .iter()
                            .map(|s| format!("s{s}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                ));
            }
        }
    }
    // MC006: graph-reachable states with no way out (resync is the only
    // recovery once the estimator lands there).
    if psm.state_count() > 1 {
        let mut graph_reachable = vec![false; psm.state_count()];
        let mut stack: Vec<StateId> = psm.initials().iter().map(|&(s, _)| s).collect();
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut graph_reachable[s.index()], true) {
                continue;
            }
            for t in psm.successors(s) {
                if t.to.index() < graph_reachable.len() && !graph_reachable[t.to.index()] {
                    stack.push(t.to);
                }
            }
        }
        for (id, _) in psm.states() {
            if graph_reachable[id.index()] && psm.successors(id).next().is_none() {
                report.push(Diagnostic::new(
                    &codes::MC006,
                    format!("state s{}", id.index()),
                    "reachable state with no outgoing transitions: once entered, only a \
                     resync can leave it",
                ));
            }
        }
    }
}

/// Re-executes a witness stimulus against the model's assertion set and
/// reports what it shows: MC001 when the replay confirms a violation,
/// MC007 when it leaves the mined dictionary, or a single MC003 note when
/// the stimulus shows no violation.
///
/// This is the engine behind `psmlint --replay`: witnesses written by
/// [`verify_model`] (or hand-crafted stimuli) can be re-checked at any
/// time against any netlist × model pair.
pub fn replay_witness(
    netlist: &Netlist,
    table: &PropositionTable,
    psm: &Psm,
    stimulus: &[Vec<Bits>],
) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!(
        "replay {} cycle(s) against netlist `{}`",
        stimulus.len(),
        netlist.name()
    ));
    if !interface_matches(netlist, table) {
        report.push(Diagnostic::new(
            &codes::MC003,
            "replay",
            "replay skipped: trace interface and netlist ports disagree (see XA001)",
        ));
        return report;
    }
    let assertions = collect_assertions(psm);
    let checker = Checker::new(table, &assertions);
    match confirm_witness(netlist, table, &checker, stimulus.to_vec(), None) {
        Some((left, cex)) => {
            let refuted: Vec<String> = assertions
                .iter()
                .filter(|a| a.left().index() == left)
                .map(|a| a.render(table))
                .collect();
            report.push(
                Diagnostic::new(
                    &codes::MC001,
                    format!("assertion `{}`", refuted.join("`, `")),
                    format!(
                        "replay confirms the violation at cycle {}",
                        cex.violation_instant
                    ),
                )
                .with_steps(cex.steps),
            );
        }
        None => {
            let note = match simulate_props(netlist, table, stimulus) {
                Some((props, _)) => match props.iter().position(Option::is_none) {
                    Some(t) => {
                        report.push(Diagnostic::new(
                            &codes::MC007,
                            format!("cycle {t}"),
                            format!("replay leaves the mined proposition dictionary at cycle {t}"),
                        ));
                        return report;
                    }
                    None => "replay shows no assertion violation".to_owned(),
                },
                None => "replay failed: stimulus does not fit the netlist's inputs".to_owned(),
            };
            report.push(Diagnostic::new(&codes::MC003, "replay", note));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_core::generate_psm;
    use psm_mining::{Miner, MiningConfig};
    use psm_trace::{FunctionalTrace, PowerTrace, SignalSet};

    /// The defective twin of the fixture pair: `y` is a register fed by
    /// `en & y`, so with `y` reset to 0 the output is stuck at 0 while the
    /// training behaviour below has `y` follow `en` one cycle late.
    fn stuck_netlist() -> Netlist {
        let mut b = psm_rtl::NetlistBuilder::new("verify_defect");
        let en = b.input("en", 1);
        let r = b.register("y_r", 1);
        let d = b.and(en.bit(0), r.q().bit(0));
        b.connect_register(&r, &psm_rtl::Word::from_nets(vec![d]));
        b.output("y", &r.q());
        b.finish().expect("fixture netlist builds")
    }

    /// A working twin: `y` really follows `en` one cycle late.
    fn delay_netlist() -> Netlist {
        let mut b = psm_rtl::NetlistBuilder::new("verify_defect");
        let en = b.input("en", 1);
        let r = b.register("y_r", 1);
        b.connect_register(&r, &psm_rtl::Word::from_nets(vec![en.bit(0)]));
        b.output("y", &r.q());
        b.finish().expect("fixture netlist builds")
    }

    fn interface() -> SignalSet {
        let mut s = SignalSet::new();
        s.push("en", 1, Direction::Input).unwrap();
        s.push("y", 1, Direction::Output).unwrap();
        s
    }

    /// Training trace of the intended behaviour (`y` follows `en`).
    fn training_trace() -> FunctionalTrace {
        let en = [
            true, true, true, false, false, true, false, true, true, false, false, true, true,
            true, false, false,
        ];
        let mut t = FunctionalTrace::new(interface());
        let mut y = false;
        for &e in &en {
            t.push_cycle(vec![Bits::from_bool(e), Bits::from_bool(y)])
                .unwrap();
            y = e;
        }
        t
    }

    fn mined_model() -> (PropositionTable, Psm) {
        let phi = training_trace();
        let mined = Miner::new(MiningConfig::default())
            .mine(&[&phi])
            .expect("mining succeeds");
        let delta: PowerTrace = (0..phi.len()).map(|i| 1.0 + (i % 3) as f64).collect();
        let psm = generate_psm(&mined.traces[0], &delta, 0).expect("psm generates");
        (mined.table, psm)
    }

    #[test]
    fn unroller_contains_every_concrete_run() {
        let netlist = delay_netlist();
        let depth = 6;
        let unrolled = unroll_ternary(&netlist, depth).expect("unrolls");
        let mut sim = Simulator::new(&netlist).unwrap();
        let handles: Vec<PortHandle> = sim.input_handles().into_iter().map(|(_, h)| h).collect();
        for (t, instant) in unrolled.iter().enumerate() {
            let bits = Bits::from_bool(t % 2 == 0);
            for &h in &handles {
                sim.set_input_by_handle(h, &bits).unwrap();
            }
            sim.step();
            for (net, &abstracted) in instant.iter().enumerate() {
                let concrete = Ternary::from_bool(sim.net_value(psm_rtl::NetId(net)));
                assert!(
                    concrete.le(abstracted),
                    "net {net} at instant {t}: concrete {concrete:?} ⋢ {abstracted:?}"
                );
            }
        }
    }

    #[test]
    fn defective_twin_is_refuted_and_vacuous() {
        let (table, psm) = mined_model();
        let outcome = verify_model(&stuck_netlist(), &table, &psm, &VerifyConfig::default());
        assert_eq!(outcome.mode, VerifyMode::Exhaustive);
        let verdicts: Vec<Verdict> = outcome.checks.iter().map(|c| c.verdict).collect();
        assert!(
            verdicts.contains(&Verdict::Refuted),
            "expected a refutation: {:?}",
            outcome.report.text()
        );
        assert!(
            verdicts.contains(&Verdict::Vacuous),
            "expected a vacuous assertion: {:?}",
            outcome.report.text()
        );
        assert!(outcome
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == "MC001"));
        assert!(outcome
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == "MC002"));
    }

    #[test]
    fn every_counterexample_replays_to_a_violation() {
        let (table, psm) = mined_model();
        let netlist = stuck_netlist();
        let outcome = verify_model(&netlist, &table, &psm, &VerifyConfig::default());
        let mut confirmed = 0;
        for check in &outcome.checks {
            if let Some(cex) = &check.counterexample {
                let replay = replay_witness(&netlist, &table, &psm, &cex.stimulus);
                assert!(
                    replay.diagnostics().iter().any(|d| d.code == "MC001"),
                    "witness of `{}` did not replay to a violation: {}",
                    check.text,
                    replay.text()
                );
                confirmed += 1;
            }
        }
        assert!(confirmed > 0, "expected at least one counterexample");
    }

    /// A six-state machine (3-bit register `c`, 1-bit input `en`,
    /// `y = (c == 5)`) built so that state 3 has both a short path
    /// (`0 -en=0-> 4 -en=1-> 3`, 2 steps) and a long one
    /// (`0 -en=1-> 1 -> 2 -> 3`, 3 steps), and state 5 — the only state
    /// with `y = 1` — is reachable solely through state 3:
    ///
    /// ```text
    /// en=1:  0 -> 1 -> 2 -> 3 -> 5 -> 5      4 -> 3
    /// en=0:  0 -> 4, everything else holds
    /// ```
    ///
    /// Sampled rows lag the register by one step (`y` at row `t` shows
    /// the state after `t - 1` steps), so the `(en=1, y=1)` row first
    /// appears at row 4 — and only via the short path at bound 4. A
    /// depth-first exploration that dedups `(state, prop)` without depth
    /// first meets state 3 at depth 3 via the long chain, drops the
    /// shallower short-path rediscovery, generates state 5 only at the
    /// bound where it is never expanded — and falsely reports assertions
    /// whose antecedent only holds there as vacuous. Breadth-first
    /// discovery keeps every state at its minimal depth.
    fn two_path_netlist() -> Netlist {
        let mut b = psm_rtl::NetlistBuilder::new("two_path");
        let en = b.input("en", 1);
        let r = b.register("c", 3);
        let q = r.q();
        let f1: Vec<psm_rtl::Word> = [1u64, 2, 3, 5, 3, 5, 6, 7]
            .iter()
            .map(|&v| b.const_word(v, 3))
            .collect();
        let f0: Vec<psm_rtl::Word> = [4u64, 1, 2, 3, 4, 5, 6, 7]
            .iter()
            .map(|&v| b.const_word(v, 3))
            .collect();
        let t1 = b.mux_tree(&q, &f1);
        let t0 = b.mux_tree(&q, &f0);
        let next = b.mux_word(en.bit(0), &t0, &t1);
        b.connect_register(&r, &next);
        let y = b.eq_const(&q, 5);
        b.output("y", &psm_rtl::Word::from_nets(vec![y]));
        b.finish().expect("fixture netlist builds")
    }

    #[test]
    fn deep_first_discovery_does_not_hide_shallow_paths() {
        // Train on the en=1 walk that reaches state 5 and parks there:
        // rows (en, y) = (1,0) ×4, (1,1), (0,1) — y lags the state by
        // one row, exactly what the netlist produces for this stimulus.
        let mut phi = FunctionalTrace::new(interface());
        let en = [true, true, true, true, true, false];
        let y = [false, false, false, false, true, true];
        for (&e, &o) in en.iter().zip(&y) {
            phi.push_cycle(vec![Bits::from_bool(e), Bits::from_bool(o)])
                .unwrap();
        }
        let mined = Miner::new(MiningConfig::default())
            .mine(&[&phi])
            .expect("mining succeeds");
        let delta: PowerTrace = (0..phi.len()).map(|i| 1.0 + (i % 3) as f64).collect();
        let psm = generate_psm(&mined.traces[0], &delta, 0).expect("psm generates");
        let cfg = VerifyConfig {
            depth: 4,
            ..VerifyConfig::default()
        };
        let outcome = verify_model(&two_path_netlist(), &mined.table, &psm, &cfg);
        assert_eq!(outcome.mode, VerifyMode::Exhaustive);
        // The p(en=1, y=1) row only follows a step out of state 5, whose
        // minimal entry depth is 3 — but only via the short path through
        // the doubly-reachable state 3, making the row's minimal depth
        // exactly the bound.
        let pv = mined
            .table
            .classify(&[Bits::from_bool(true), Bits::from_bool(true)])
            .expect("the (en=1, y=1) row is in the mined dictionary");
        let at_v: Vec<&AssertionCheck> = outcome
            .checks
            .iter()
            .filter(|c| c.assertion.left() == pv)
            .collect();
        assert!(
            !at_v.is_empty(),
            "expected an assertion with antecedent p(en=1, y=1)"
        );
        for check in at_v {
            assert_eq!(
                check.verdict,
                Verdict::Proved,
                "`{}` should be proved, not {:?}:\n{}",
                check.text,
                check.verdict,
                outcome.report.text()
            );
        }
    }

    #[test]
    fn faithful_twin_proves_every_assertion() {
        let (table, psm) = mined_model();
        let outcome = verify_model(&delay_netlist(), &table, &psm, &VerifyConfig::default());
        assert_eq!(outcome.mode, VerifyMode::Exhaustive);
        for check in &outcome.checks {
            assert!(
                matches!(check.verdict, Verdict::Proved | Verdict::Vacuous),
                "`{}` unexpectedly {:?}",
                check.text,
                check.verdict
            );
        }
        assert!(!outcome
            .report
            .diagnostics()
            .iter()
            .any(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn depth_zero_disables_the_pass() {
        let (table, psm) = mined_model();
        let cfg = VerifyConfig {
            depth: 0,
            ..VerifyConfig::default()
        };
        let outcome = verify_model(&stuck_netlist(), &table, &psm, &cfg);
        assert!(outcome.checks.is_empty());
        assert_eq!(outcome.report.diagnostics().len(), 1);
        assert_eq!(outcome.report.diagnostics()[0].code, "MC003");
    }

    #[test]
    fn atom_ternary_decides_known_prefixes() {
        let set = interface();
        let ids: Vec<_> = set.iter().map(|(id, _)| id).collect();
        let sig = |i: usize| ids[i];
        let eq = AtomicProposition::VarEqConst {
            signal: sig(0),
            value: Bits::from_u64(0b10, 2),
        };
        // Known-equal bits decide; an X keeps it open only while no known
        // bit contradicts.
        assert_eq!(
            atom_ternary(&eq, &[vec![Ternary::Zero, Ternary::One]]),
            Ternary::One
        );
        assert_eq!(
            atom_ternary(&eq, &[vec![Ternary::One, Ternary::X]]),
            Ternary::Zero
        );
        assert_eq!(
            atom_ternary(&eq, &[vec![Ternary::Zero, Ternary::X]]),
            Ternary::X
        );
        let lt = AtomicProposition::VarCmpVar {
            left: sig(0),
            cmp: psm_mining::Comparison::Lt,
            right: sig(1),
        };
        // MSB decides 01 < 10 even with the low bits unknown.
        assert_eq!(
            atom_ternary(
                &lt,
                &[
                    vec![Ternary::X, Ternary::Zero],
                    vec![Ternary::X, Ternary::One]
                ]
            ),
            Ternary::One
        );
        assert_eq!(
            atom_ternary(
                &lt,
                &[
                    vec![Ternary::X, Ternary::One],
                    vec![Ternary::X, Ternary::One]
                ]
            ),
            Ternary::X
        );
    }
}
