//! Ternary-lattice dataflow analysis over the gate-level netlist.
//!
//! The abstract domain is the flat lattice `{0, 1} ⊑ X`: a net is either
//! provably constant zero, provably constant one, or unknown (`X`). The
//! interpreter seeds constants, treats every input-port and memory-read
//! net as `X`, starts registers at their reset value, and evaluates the
//! combinational logic in levelized order; register outputs are then
//! widened by joining the reset value with the fixpoint of their data
//! inputs until nothing changes. Because every net only moves *up* the
//! two-level lattice, the loop terminates after at most `#dffs + 1`
//! sweeps.
//!
//! The fixpoint powers the semantic netlist lints `NL008`–`NL011`, which
//! see through the structure that the purely topological checks of
//! [`crate::lint_netlist`] (`NL004`/`NL005`) cannot: a gate can be wired
//! to an observable output and still be provably constant, and an input
//! bit can be read by live logic and still be unable to influence any
//! output.

use crate::{codes, AnalysisReport, Diagnostic};
use psm_rtl::{levelize, GateKind, NetId, Netlist};
use psm_trace::Direction;

/// Abstract value of one net: the flat ternary lattice `{Zero, One} ⊑ X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Provably constant 0.
    Zero,
    /// Provably constant 1.
    One,
    /// Unknown: the net can carry either value.
    X,
}

impl Ternary {
    /// Lifts a concrete bit into the lattice.
    pub fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }

    /// The concrete value, when the net is provably constant.
    pub fn as_const(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        }
    }

    /// `true` when the value is a known constant (not [`Ternary::X`]).
    pub fn is_const(self) -> bool {
        self != Ternary::X
    }

    /// Least upper bound: equal values stay, differing values widen to `X`.
    pub fn join(self, other: Ternary) -> Ternary {
        if self == other {
            self
        } else {
            Ternary::X
        }
    }

    /// Greatest lower bound: `X` yields to the other operand. The flat
    /// lattice has no bottom element, so two distinct constants have no
    /// common refinement and the meet is partial: `None` marks the
    /// contradiction (a net required to be both 0 and 1).
    pub fn meet(self, other: Ternary) -> Option<Ternary> {
        match (self, other) {
            (Ternary::X, v) | (v, Ternary::X) => Some(v),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// The lattice order: `a ⊑ b` when `b` is `a` or `X`.
    pub fn le(self, other: Ternary) -> bool {
        self == other || other == Ternary::X
    }
}

/// Largest number of unknown LUT inputs the transfer function enumerates
/// exactly; beyond it the output conservatively widens to `X`.
const LUT_ENUM_LIMIT: u32 = 6;

/// Ternary transfer function of one cell kind.
///
/// Constants are propagated with full short-circuit knowledge: an `AND`
/// with a zero input is zero no matter what the other pin carries, a mux
/// with a known select ignores the unselected branch, and a LUT with few
/// unknown inputs is evaluated over every completion of its `X` pins
/// (joining the results). `inputs` must match the kind's arity.
///
/// # Panics
///
/// Panics like [`GateKind::eval`] when `inputs` does not match the cell's
/// arity or a LUT table is too small for its pin count.
///
/// # Examples
///
/// ```
/// use psm_analyze::{eval_ternary, Ternary};
/// use psm_rtl::GateKind;
///
/// let x = Ternary::X;
/// assert_eq!(eval_ternary(&GateKind::And2, &[Ternary::Zero, x]), Ternary::Zero);
/// assert_eq!(eval_ternary(&GateKind::Or2, &[x, Ternary::One]), Ternary::One);
/// assert_eq!(eval_ternary(&GateKind::Xor2, &[x, Ternary::One]), Ternary::X);
/// ```
pub fn eval_ternary(kind: &GateKind, inputs: &[Ternary]) -> Ternary {
    use Ternary::{One, Zero, X};
    match kind {
        GateKind::Buf => inputs[0],
        GateKind::Not => match inputs[0] {
            Zero => One,
            One => Zero,
            X => X,
        },
        GateKind::And2 => match (inputs[0], inputs[1]) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        },
        GateKind::Or2 => match (inputs[0], inputs[1]) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        },
        GateKind::Xor2 => match (inputs[0], inputs[1]) {
            (X, _) | (_, X) => X,
            (a, b) => Ternary::from_bool(a != b),
        },
        GateKind::Nand2 => match (inputs[0], inputs[1]) {
            (Zero, _) | (_, Zero) => One,
            (One, One) => Zero,
            _ => X,
        },
        GateKind::Nor2 => match (inputs[0], inputs[1]) {
            (One, _) | (_, One) => Zero,
            (Zero, Zero) => One,
            _ => X,
        },
        // inputs = [sel, a, b]: a known select picks one branch, an
        // unknown select joins both.
        GateKind::Mux2 => match inputs[0] {
            Zero => inputs[1],
            One => inputs[2],
            X => inputs[1].join(inputs[2]),
        },
        GateKind::Lut { .. } => {
            let unknown = inputs.iter().filter(|v| **v == X).count() as u32;
            if unknown > LUT_ENUM_LIMIT {
                return X;
            }
            // Enumerate every completion of the X pins and join the
            // concrete outcomes; 2^unknown ≤ 64 evaluations.
            let mut concrete: Vec<bool> = inputs.iter().map(|v| *v == One).collect();
            let x_pins: Vec<usize> = inputs
                .iter()
                .enumerate()
                .filter(|(_, v)| **v == X)
                .map(|(i, _)| i)
                .collect();
            let mut acc: Option<Ternary> = None;
            for combo in 0u64..(1u64 << unknown) {
                for (k, &pin) in x_pins.iter().enumerate() {
                    concrete[pin] = (combo >> k) & 1 == 1;
                }
                let out = Ternary::from_bool(kind.eval(&concrete));
                acc = Some(match acc {
                    None => out,
                    Some(prev) => prev.join(out),
                });
                if acc == Some(X) {
                    break;
                }
            }
            acc.unwrap_or(X)
        }
    }
}

/// The fixpoint of the ternary interpreter: one abstract value per net,
/// plus the set of nets whose unknown-ness originates from an *undriven*
/// net (as opposed to a legitimate input port or memory read).
#[derive(Debug, Clone)]
pub struct DataflowResult {
    values: Vec<Ternary>,
    tainted: Vec<bool>,
    sweeps: usize,
}

impl DataflowResult {
    /// Abstract value of `net` at the fixpoint.
    pub fn value(&self, net: NetId) -> Ternary {
        self.values[net.index()]
    }

    /// All per-net values, indexed by [`NetId::index`].
    pub fn values(&self) -> &[Ternary] {
        &self.values
    }

    /// `true` when the `X` on `net` can be traced back to an undriven net.
    pub fn is_undriven_tainted(&self, net: NetId) -> bool {
        self.tainted[net.index()]
    }

    /// Number of evaluation sweeps the fixpoint took (at least one; grows
    /// only when register widening changes a `q` value).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }
}

/// Runs ternary constant- and X-propagation to fixpoint.
///
/// Requires the netlist to be levelizable and its net references to be in
/// range; call after the structural checks of [`crate::lint_netlist`]
/// pass (the semantic lints do exactly that). Undriven nets evaluate to
/// `X` and are tracked as *tainted* so [`lint_netlist_dataflow`] can tell
/// a floating wire from an honest unknown.
///
/// Returns `None` when the netlist is not safely interpretable (out of
/// range references, arity mismatches or a combinational cycle) — those
/// defects are the structural lints' to report.
pub fn analyze_dataflow(netlist: &Netlist) -> Option<DataflowResult> {
    let nets = netlist.net_count();
    let order = interpretable(netlist)?;

    // Which nets have a driver at all; undriven reads seed the taint.
    let mut driven = vec![false; nets];
    driven[Netlist::CONST0.index()] = true;
    driven[Netlist::CONST1.index()] = true;
    for p in netlist.ports() {
        if p.direction() == Direction::Input {
            for &n in p.nets() {
                driven[n.index()] = true;
            }
        }
    }
    for g in netlist.gates() {
        driven[g.output.index()] = true;
    }
    for d in netlist.dffs() {
        driven[d.q.index()] = true;
    }
    for m in netlist.memories() {
        for &n in &m.rdata {
            driven[n.index()] = true;
        }
    }

    let mut values = vec![Ternary::X; nets];
    let mut tainted: Vec<bool> = driven.iter().map(|&d| !d).collect();
    values[Netlist::CONST0.index()] = Ternary::Zero;
    values[Netlist::CONST1.index()] = Ternary::One;
    for d in netlist.dffs() {
        values[d.q.index()] = Ternary::from_bool(d.init);
    }
    // Input ports and memory reads stay X but carry no taint.

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        // One combinational sweep in topological order.
        for &gi in &order {
            let g = &netlist.gates()[gi];
            let ins: Vec<Ternary> = g.inputs.iter().map(|n| values[n.index()]).collect();
            let out = eval_ternary(&g.kind, &ins);
            values[g.output.index()] = out;
            tainted[g.output.index()] = out == Ternary::X
                && g.inputs
                    .iter()
                    .any(|n| values[n.index()] == Ternary::X && tainted[n.index()]);
        }
        // Widen register outputs by the fixpoint of their data inputs.
        let mut changed = false;
        for d in netlist.dffs() {
            let q = values[d.q.index()];
            let next = q.join(values[d.d.index()]);
            if next != q {
                values[d.q.index()] = next;
                tainted[d.q.index()] = tainted[d.d.index()];
                changed = true;
            } else if next == Ternary::X && tainted[d.d.index()] && !tainted[d.q.index()] {
                tainted[d.q.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Some(DataflowResult {
        values,
        tainted,
        sweeps,
    })
}

/// Checks that the netlist can be abstractly interpreted — levelizable,
/// sane arities, every net reference in range — and returns the levelized
/// gate order when it can. Shared guard of [`analyze_dataflow`] and the
/// power-intent off-domain proof.
pub(crate) fn interpretable(netlist: &Netlist) -> Option<Vec<usize>> {
    let nets = netlist.net_count();
    let order = levelize(netlist).ok()?;
    for g in netlist.gates() {
        match g.kind.arity() {
            Some(arity) if g.inputs.len() != arity => return None,
            None => {
                let table_words = match &g.kind {
                    GateKind::Lut { table } => table.len(),
                    _ => 0,
                };
                if table_words < (1usize << g.inputs.len()).div_ceil(64) {
                    return None;
                }
            }
            Some(_) => {}
        }
        if g.inputs
            .iter()
            .chain([&g.output])
            .any(|n| n.index() >= nets)
        {
            return None;
        }
    }
    let in_range = |n: &NetId| n.index() < nets;
    if !netlist
        .dffs()
        .iter()
        .all(|d| in_range(&d.d) && in_range(&d.q))
        || !netlist.memories().iter().all(|m| {
            m.addr
                .iter()
                .chain(&m.wdata)
                .chain(&m.rdata)
                .chain([&m.we, &m.re, &m.clear])
                .all(in_range)
        })
        || !netlist
            .ports()
            .iter()
            .all(|p| p.nets().iter().all(in_range))
    {
        return None;
    }
    Some(order)
}

/// Semantic netlist lints on top of the ternary fixpoint.
///
/// Emits, in order:
///
/// * `NL008` — a gate whose output is provably constant although at least
///   one of its inputs is not (the gate masks live logic), and whose
///   output is read by another cell, register, memory or output port.
///   Gates wired straight to the constant nets are exempt — those are
///   deliberate tie-offs, not propagation surprises;
/// * `NL009` — an output-port bit that is provably constant (mining will
///   see a stuck primary output);
/// * `NL010` — an undriven net whose `X` propagates all the way to an
///   output port (the float is observable, not just structural);
/// * `NL011` — input-port bits that are read by live logic yet cannot
///   influence any output, register or memory (the semantic refinement of
///   `NL004`/`NL005`: the path exists but is provably blocked).
///
/// Netlists that the structural lints would reject (cycles, bad arities,
/// out-of-range nets) produce an empty report here — run
/// [`crate::lint_netlist`] first.
pub fn lint_netlist_dataflow(netlist: &Netlist) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("netlist `{}` dataflow", netlist.name()));
    let Some(df) = analyze_dataflow(netlist) else {
        return report;
    };
    let nets = netlist.net_count();

    // What reads each net (to tell "feeding live logic" from dangling).
    let mut read = vec![false; nets];
    for g in netlist.gates() {
        for &n in &g.inputs {
            read[n.index()] = true;
        }
    }
    for d in netlist.dffs() {
        read[d.d.index()] = true;
    }
    for m in netlist.memories() {
        for &n in m.addr.iter().chain(&m.wdata) {
            read[n.index()] = true;
        }
        read[m.we.index()] = true;
        read[m.re.index()] = true;
        read[m.clear.index()] = true;
    }
    for p in netlist.ports() {
        if p.direction() == Direction::Output {
            for &n in p.nets() {
                read[n.index()] = true;
            }
        }
    }

    // NL008: constant gate outputs that mask at least one live input.
    // Constants that are *benign* — fully explained by the constant nets
    // alone, like the zero-padding and tie-off chains of the builder's
    // arithmetic idioms — stay exempt. A constant counts as benign when
    // re-evaluating the gate with only its benign-constant inputs (all
    // others widened to X) still forces the same constant; the closure
    // extends through registers whose data cones are benign. What
    // survives is the *surprising* kind of constant: one forced by
    // sequential feedback or a degenerate truth table.
    let mut benign = vec![false; nets];
    benign[Netlist::CONST0.index()] = true;
    benign[Netlist::CONST1.index()] = true;
    loop {
        let mut changed = false;
        for g in netlist.gates() {
            if benign[g.output.index()] || !df.value(g.output).is_const() {
                continue;
            }
            let masked: Vec<Ternary> = g
                .inputs
                .iter()
                .map(|n| {
                    if benign[n.index()] {
                        df.value(*n)
                    } else {
                        Ternary::X
                    }
                })
                .collect();
            if eval_ternary(&g.kind, &masked) == df.value(g.output) {
                benign[g.output.index()] = true;
                changed = true;
            }
        }
        for d in netlist.dffs() {
            if !benign[d.q.index()] && df.value(d.q).is_const() && benign[d.d.index()] {
                benign[d.q.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let masking: Vec<usize> = netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            df.value(g.output).is_const()
                && !benign[g.output.index()]
                && read[g.output.index()]
                && g.inputs.iter().any(|n| !df.value(*n).is_const())
        })
        .map(|(gi, _)| gi)
        .collect();
    if !masking.is_empty() {
        let first = &netlist.gates()[masking[0]];
        let value = df.value(first.output).as_const().unwrap_or(false) as u8;
        report.push(Diagnostic::new(
            &codes::NL008,
            format!("net {}", first.output),
            format!(
                "{} gate(s) provably constant while reading live nets \
                 (first: {} driving {} stuck at {value})",
                masking.len(),
                first.kind,
                first.output
            ),
        ));
    }

    // NL009: stuck output-port bits.
    for p in netlist.ports() {
        if p.direction() != Direction::Output {
            continue;
        }
        let stuck: Vec<(usize, bool)> = p
            .nets()
            .iter()
            .enumerate()
            .filter_map(|(bit, n)| df.value(*n).as_const().map(|v| (bit, v)))
            .collect();
        if !stuck.is_empty() {
            let bits: Vec<String> = stuck
                .iter()
                .map(|(bit, v)| format!("{bit}={}", *v as u8))
                .collect();
            report.push(Diagnostic::new(
                &codes::NL009,
                format!("port `{}`", p.name()),
                format!(
                    "{} of {} output bit(s) provably constant ({})",
                    stuck.len(),
                    p.width(),
                    bits.join(", ")
                ),
            ));
        }
    }

    // NL010: undriven-origin X observable at an output port.
    for p in netlist.ports() {
        if p.direction() != Direction::Output {
            continue;
        }
        let floating: Vec<usize> = p
            .nets()
            .iter()
            .enumerate()
            .filter(|(_, n)| df.value(**n) == Ternary::X && df.is_undriven_tainted(**n))
            .map(|(bit, _)| bit)
            .collect();
        if !floating.is_empty() {
            report.push(Diagnostic::new(
                &codes::NL010,
                format!("port `{}`", p.name()),
                format!(
                    "bit(s) {floating:?} of `{}` carry the X of an undriven net",
                    p.name()
                ),
            ));
        }
    }

    // NL011: read input bits with no semantic path to an observable point.
    // Forward reachability from each input net through gates whose output
    // is not provably constant (a constant output blocks all influence),
    // across register d→q and through every memory pin to its read data.
    let mut influence_src: Vec<Vec<usize>> = vec![Vec::new(); nets];
    let mut input_nets: Vec<NetId> = Vec::new();
    for p in netlist.ports() {
        if p.direction() == Direction::Input {
            for &n in p.nets() {
                influence_src[n.index()].push(input_nets.len());
                input_nets.push(n);
            }
        }
    }
    if !input_nets.is_empty() {
        let order = levelize(netlist).expect("analyze_dataflow already levelized");
        loop {
            let mut changed = false;
            let mut extend = |dst: usize, src_sets: Vec<usize>, flows: &mut Vec<Vec<usize>>| {
                for s in src_sets {
                    if !flows[dst].contains(&s) {
                        flows[dst].push(s);
                        changed = true;
                    }
                }
            };
            for &gi in &order {
                let g = &netlist.gates()[gi];
                if df.value(g.output).is_const() {
                    continue;
                }
                let gathered: Vec<usize> = g
                    .inputs
                    .iter()
                    .flat_map(|n| influence_src[n.index()].clone())
                    .collect();
                extend(g.output.index(), gathered, &mut influence_src);
            }
            for d in netlist.dffs() {
                if df.value(d.q).is_const() {
                    continue;
                }
                let gathered = influence_src[d.d.index()].clone();
                extend(d.q.index(), gathered, &mut influence_src);
            }
            for m in netlist.memories() {
                let gathered: Vec<usize> = m
                    .addr
                    .iter()
                    .chain(&m.wdata)
                    .chain([&m.we, &m.re, &m.clear])
                    .flat_map(|n| influence_src[n.index()].clone())
                    .collect();
                for &rd in &m.rdata {
                    extend(rd.index(), gathered.clone(), &mut influence_src);
                }
            }
            if !changed {
                break;
            }
        }

        let mut influences_output = vec![false; input_nets.len()];
        for p in netlist.ports() {
            if p.direction() == Direction::Output {
                for &n in p.nets() {
                    for &s in &influence_src[n.index()] {
                        influences_output[s] = true;
                    }
                }
            }
        }
        let mut bit_of = 0usize;
        for p in netlist.ports() {
            if p.direction() != Direction::Input {
                continue;
            }
            let blocked: Vec<usize> = p
                .nets()
                .iter()
                .enumerate()
                .filter(|(_, n)| read[n.index()])
                .filter(|(bit, _)| !influences_output[bit_of + bit])
                .map(|(bit, _)| bit)
                .collect();
            if !blocked.is_empty() {
                report.push(Diagnostic::new(
                    &codes::NL011,
                    format!("port `{}`", p.name()),
                    format!(
                        "{} of {} input bit(s) read by logic but provably \
                         unable to influence any output (bits {blocked:?})",
                        blocked.len(),
                        p.width(),
                    ),
                ));
            }
            bit_of += p.width();
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_rtl::{NetlistBuilder, Word};

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn lattice_join_meet() {
        use Ternary::{One, Zero, X};
        for a in [Zero, One, X] {
            assert_eq!(a.join(a), a);
            assert_eq!(a.meet(a), Some(a));
            assert_eq!(a.join(X), X);
            assert_eq!(a.meet(X), Some(a));
            assert!(a.le(X));
        }
        assert_eq!(Zero.join(One), X);
        assert_eq!(Zero.meet(One), None, "distinct constants contradict");
        assert!(!X.le(Zero));
    }

    #[test]
    fn transfer_short_circuits() {
        use Ternary::{One, Zero, X};
        assert_eq!(eval_ternary(&GateKind::And2, &[Zero, X]), Zero);
        assert_eq!(eval_ternary(&GateKind::Nand2, &[X, Zero]), One);
        assert_eq!(eval_ternary(&GateKind::Or2, &[One, X]), One);
        assert_eq!(eval_ternary(&GateKind::Nor2, &[X, One]), Zero);
        assert_eq!(eval_ternary(&GateKind::Mux2, &[One, X, Zero]), Zero);
        assert_eq!(eval_ternary(&GateKind::Mux2, &[X, One, One]), One);
        assert_eq!(eval_ternary(&GateKind::Mux2, &[X, One, Zero]), X);
    }

    #[test]
    fn lut_enumerates_unknowns() {
        use Ternary::{One, Zero, X};
        // 2-input LUT for OR: bits 1110 → 0xE. With a one on pin 1 the
        // output is one no matter what pin 0 carries.
        let lut = GateKind::Lut { table: vec![0xE] };
        assert_eq!(eval_ternary(&lut, &[X, One]), One);
        assert_eq!(eval_ternary(&lut, &[X, Zero]), X);
        // Constant-one LUT collapses even under all-X inputs.
        let ones = GateKind::Lut { table: vec![0xF] };
        assert_eq!(eval_ternary(&ones, &[X, X]), One);
    }

    #[test]
    fn fixpoint_sees_through_register() {
        // q starts 0 and re-latches its own AND with an input: q can only
        // stay 0, so the output is provably stuck.
        let mut b = NetlistBuilder::new("regstuck");
        let a = b.input("a", 1);
        let r = b.register("r", 1);
        let next = b.and(r.q().bit(0), a.bit(0));
        b.connect_register(&r, &Word::from_nets(vec![next]));
        b.output("x", &r.q());
        let n = b.finish().unwrap();
        let df = analyze_dataflow(&n).unwrap();
        assert_eq!(df.value(n.ports()[1].nets()[0]), Ternary::Zero);
        let report = lint_netlist_dataflow(&n);
        assert!(codes_of(&report).contains(&"NL009"), "{}", report.text());
    }

    #[test]
    fn masked_gate_is_nl008() {
        let mut b = NetlistBuilder::new("masked");
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let zero = b.const0();
        // A tie-off and the constant it propagates are benign: the
        // zero-padding idiom of the builder's arithmetic must stay exempt.
        let tied = b.and(a.bit(0), zero);
        let padded = b.and(c.bit(0), tied);
        // A register that can only re-latch 0 is a *surprising* constant:
        // both the feedback gate and the gate it masks must fire.
        let r = b.register("r", 1);
        let next = b.and(r.q().bit(0), a.bit(0));
        b.connect_register(&r, &Word::from_nets(vec![next]));
        let masked = b.and(c.bit(0), r.q().bit(0));
        let t = b.or(masked, padded);
        let out = b.or(t, c.bit(0));
        let out = b.or(out, a.bit(0));
        b.output("x", &Word::from_nets(vec![out]));
        let n = b.finish().unwrap();
        let report = lint_netlist_dataflow(&n);
        let nl008: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "NL008")
            .collect();
        assert_eq!(nl008.len(), 1, "{}", report.text());
        assert!(
            nl008[0].message.contains("2 gate(s)"),
            "{}",
            nl008[0].message
        );
    }

    #[test]
    fn blocked_input_is_nl011() {
        let mut b = NetlistBuilder::new("blocked");
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let zero = b.const0();
        let masked = b.and(a.bit(0), zero); // `a` is read, influence blocked
        let out = b.or(masked, c.bit(0));
        b.output("x", &Word::from_nets(vec![out]));
        let n = b.finish().unwrap();
        let report = lint_netlist_dataflow(&n);
        let nl011: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "NL011")
            .collect();
        assert_eq!(nl011.len(), 1, "{}", report.text());
        assert!(nl011[0].location.contains('a'), "{}", nl011[0].location);
    }

    #[test]
    fn clean_design_is_quiet() {
        let mut b = NetlistBuilder::new("clean");
        let a = b.input("a", 2);
        let c = b.input("c", 2);
        let s = b.add(&a, &c);
        b.output("x", &s.sum);
        let n = b.finish().unwrap();
        let report = lint_netlist_dataflow(&n);
        assert!(report.is_clean(), "{}", report.text());
    }

    #[test]
    fn cyclic_netlist_yields_no_dataflow() {
        // A hand-built cycle: analyze_dataflow must bail out, the lint
        // report must stay empty (NL001 is the structural lint's job).
        let text = "\
module loopy (a, x);
  input a;
  output x;
  wire n2;
  wire n3;
  wire n4;
  assign n2 = a[0];
  assign x[0] = n4;
  and  g0 (n3, n2, n4);
  and  g1 (n4, n3, 1'b1);
endmodule
";
        let n = psm_rtl::parse_verilog(text).unwrap();
        assert!(analyze_dataflow(&n).is_none());
        assert!(lint_netlist_dataflow(&n).is_clean());
    }

    #[test]
    fn undriven_x_reaching_output_is_nl010() {
        let text = "\
module floaty (a, x);
  input a;
  output x;
  wire n2;
  wire n3;
  wire n4;
  assign n2 = a[0];
  and  g0 (n4, n3, n2);
  assign x[0] = n4;
endmodule
";
        let n = psm_rtl::parse_verilog(text).unwrap();
        let report = lint_netlist_dataflow(&n);
        assert!(codes_of(&report).contains(&"NL010"), "{}", report.text());
    }
}
