//! Lint-level policy (`psmlint.toml`) and baseline suppression.
//!
//! Both mechanisms exist so strict linting can be adopted incrementally:
//! a [`LintConfig`] re-levels or silences individual codes (the
//! `allow`/`warn`/`deny` model of `rustc` lints), and a [`Baseline`]
//! suppresses the findings a previous `psmlint --json` run already
//! recorded, leaving only *new* findings to gate on.

use crate::verify::VerifyConfig;
use crate::{AnalysisReport, Diagnostic, Severity};
use psm_persist::JsonValue;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Per-code policy override, mirroring compiler lint levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintLevel {
    /// Drop every diagnostic with this code.
    Allow,
    /// Report the code at [`Severity::Warn`] regardless of its default.
    Warn,
    /// Report the code at [`Severity::Error`] regardless of its default.
    Deny,
}

impl LintLevel {
    /// Parses the `psmlint.toml` spelling of a level.
    pub fn parse(text: &str) -> Option<LintLevel> {
        match text {
            "allow" => Some(LintLevel::Allow),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }
}

/// Per-code lint levels and verification knobs, parsed from a
/// `psmlint.toml` file.
///
/// The accepted grammar is the TOML subset the tool needs — `#` comments,
/// an optional `[levels]` section header with `CODE = "allow" | "warn" |
/// "deny"` entries (bare entries before any section header are treated as
/// levels too), and an optional `[verify]` section tuning the bounded
/// model checker:
///
/// ```toml
/// # Quieten the dead-cone heuristic, make stuck outputs fatal.
/// [levels]
/// NL004 = "allow"
/// NL009 = "deny"
///
/// [verify]
/// depth = 12       # unroll bound (0 disables the pass)
/// enum_bits = 8    # exhaustive-mode input-width budget
/// max_states = 1024
/// samples = 0      # optional concrete random runs
/// seed = 7
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    levels: BTreeMap<String, LintLevel>,
    verify: Option<VerifyConfig>,
}

impl LintConfig {
    /// An empty configuration (every code keeps its catalogue severity).
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Sets the level of one code, returning the updated configuration.
    pub fn with_level(mut self, code: impl Into<String>, level: LintLevel) -> Self {
        self.levels.insert(code.into(), level);
        self
    }

    /// The configured level of `code`, if any.
    pub fn level(&self, code: &str) -> Option<LintLevel> {
        self.levels.get(code).copied()
    }

    /// The `[verify]` overrides, if the file carried that section.
    pub fn verify(&self) -> Option<&VerifyConfig> {
        self.verify.as_ref()
    }

    /// Sets the `[verify]` overrides, returning the updated configuration.
    pub fn with_verify(mut self, verify: VerifyConfig) -> Self {
        self.verify = Some(verify);
        self
    }

    /// `true` when no override is configured.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty() && self.verify.is_none()
    }

    /// Parses the `psmlint.toml` grammar.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message for unknown sections, malformed
    /// entries and unknown level names.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut config = LintConfig::default();
        let mut in_verify = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section `{raw}`", i + 1))?
                    .trim();
                match name {
                    "levels" => in_verify = false,
                    "verify" => {
                        in_verify = true;
                        config.verify.get_or_insert_with(VerifyConfig::default);
                    }
                    _ => return Err(format!("line {}: unknown section `[{name}]`", i + 1)),
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected `CODE = \"level\"`, got `{raw}`", i + 1)
            })?;
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            if in_verify {
                let verify = config.verify.as_mut().expect("section opened above");
                let number: u64 = value.parse().map_err(|_| {
                    format!(
                        "line {}: `[verify]` values are integers, got `{value}`",
                        i + 1
                    )
                })?;
                match key {
                    "depth" => verify.depth = number as usize,
                    "enum_bits" => {
                        // Exhaustive mode packs one input assignment into
                        // a u64; 64+ bits would overflow the enumeration
                        // (and 2^64 branches per cycle is no budget).
                        if number >= 64 {
                            return Err(format!(
                                "line {}: `enum_bits` must be below 64, got {number}",
                                i + 1
                            ));
                        }
                        verify.enum_bits = number as usize;
                    }
                    "max_states" => verify.max_states = number as usize,
                    "samples" => verify.samples = number as usize,
                    "seed" => verify.seed = number,
                    _ => return Err(format!("line {}: unknown `[verify]` key `{key}`", i + 1)),
                }
            } else {
                let level = LintLevel::parse(value)
                    .ok_or_else(|| format!("line {}: unknown lint level `{value}`", i + 1))?;
                config.levels.insert(key.to_owned(), level);
            }
        }
        Ok(config)
    }

    /// Applies the configured levels to a report: `allow`ed codes are
    /// dropped, `warn`/`deny` re-level the surviving diagnostics.
    pub fn apply(&self, report: AnalysisReport) -> AnalysisReport {
        if self.is_empty() {
            return report;
        }
        let mut out = AnalysisReport::new(report.artifact().to_owned());
        for d in report.diagnostics() {
            match self.level(d.code) {
                Some(LintLevel::Allow) => {}
                Some(LintLevel::Warn) => out.push(Diagnostic {
                    severity: Severity::Warn,
                    ..d.clone()
                }),
                Some(LintLevel::Deny) => out.push(Diagnostic {
                    severity: Severity::Error,
                    ..d.clone()
                }),
                None => out.push(d.clone()),
            }
        }
        out
    }
}

/// A set of previously recorded findings to suppress.
///
/// Built from the JSON document a prior `psmlint --json` run printed;
/// a finding is suppressed when the same `(file, code, location)` triple
/// was already present. Messages are deliberately not compared, so
/// reworded diagnostics do not resurface old findings.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// The suppression key of one finding.
    fn key(file: &str, code: &str, location: &str) -> String {
        format!("{file}\u{1f}{code}\u{1f}{location}")
    }

    /// Parses a `psmlint --json` document (`psmlint/v1` schema or the
    /// legacy envelope without a `schema` field).
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not valid JSON or lacks the
    /// expected `reports` array.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
        let reports = doc
            .arr_field("reports")
            .map_err(|e| format!("baseline has no reports array: {e}"))?;
        let mut keys = BTreeSet::new();
        for entry in reports {
            let file = entry
                .str_field("file")
                .map_err(|e| format!("baseline report entry without file: {e}"))?;
            let report = entry
                .field("report")
                .map_err(|e| format!("baseline report entry without report: {e}"))?;
            let diags = report
                .arr_field("diagnostics")
                .map_err(|e| format!("baseline report without diagnostics: {e}"))?;
            for d in diags {
                let code = d
                    .str_field("code")
                    .map_err(|e| format!("baseline diagnostic without code: {e}"))?;
                let location = d
                    .str_field("location")
                    .map_err(|e| format!("baseline diagnostic without location: {e}"))?;
                keys.insert(Baseline::key(file, code, location));
            }
        }
        Ok(Baseline { keys })
    }

    /// Number of suppressed findings the baseline carries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the baseline suppresses nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `true` when `diagnostic` in `file` matches a recorded finding.
    pub fn contains(&self, file: &str, diagnostic: &Diagnostic) -> bool {
        self.keys
            .contains(&Baseline::key(file, diagnostic.code, &diagnostic.location))
    }

    /// Splits a report into (new, suppressed-count) under this baseline.
    pub fn filter(&self, file: &str, report: AnalysisReport) -> (AnalysisReport, usize) {
        if self.is_empty() {
            return (report, 0);
        }
        let mut out = AnalysisReport::new(report.artifact().to_owned());
        let mut suppressed = 0usize;
        for d in report.diagnostics() {
            if self.contains(file, d) {
                suppressed += 1;
            } else {
                out.push(d.clone());
            }
        }
        (out, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;

    fn sample_report() -> AnalysisReport {
        let mut r = AnalysisReport::new("netlist `x`");
        r.push(Diagnostic::new(&codes::NL002, "net n7", "two drivers"));
        r.push(Diagnostic::new(&codes::NL004, "net n9", "dead cone"));
        r
    }

    #[test]
    fn parses_levels_section() {
        let config = LintConfig::parse(
            "# policy\n[levels]\nNL004 = \"deny\"  # escalate\nNL002 = \"allow\"\n",
        )
        .unwrap();
        assert_eq!(config.level("NL004"), Some(LintLevel::Deny));
        assert_eq!(config.level("NL002"), Some(LintLevel::Allow));
        assert_eq!(config.level("NL001"), None);
    }

    #[test]
    fn rejects_unknown_sections_and_levels() {
        assert!(LintConfig::parse("[output]\n").is_err());
        assert!(LintConfig::parse("NL004 = \"fatal\"\n").is_err());
        assert!(LintConfig::parse("NL004\n").is_err());
    }

    #[test]
    fn parses_verify_section() {
        let config = LintConfig::parse(
            "[levels]\nNL004 = \"allow\"\n[verify]\ndepth = 12\nenum_bits = 4\nsamples = 3\n",
        )
        .unwrap();
        let verify = config.verify().expect("section parsed");
        assert_eq!(verify.depth, 12);
        assert_eq!(verify.enum_bits, 4);
        assert_eq!(verify.samples, 3);
        // Unset keys keep their defaults.
        assert_eq!(verify.max_states, VerifyConfig::default().max_states);
        // Levels before and after still apply.
        assert_eq!(config.level("NL004"), Some(LintLevel::Allow));
        assert!(LintConfig::parse("[verify]\ndepth = \"lots\"\n").is_err());
        assert!(LintConfig::parse("[verify]\nbananas = 3\n").is_err());
        // 64+ would overflow the packed-u64 input enumeration.
        assert!(LintConfig::parse("[verify]\nenum_bits = 64\n").is_err());
        assert!(LintConfig::parse("[verify]\nenum_bits = 63\n").is_ok());
        assert!(LintConfig::parse("x\n").is_err());
        assert!(LintConfig::parse("").unwrap().verify().is_none());
    }

    #[test]
    fn apply_drops_and_relevels() {
        let config = LintConfig::new()
            .with_level("NL002", LintLevel::Warn)
            .with_level("NL004", LintLevel::Allow);
        let out = config.apply(sample_report());
        assert_eq!(out.diagnostics().len(), 1);
        assert_eq!(out.diagnostics()[0].code, "NL002");
        assert_eq!(out.diagnostics()[0].severity, Severity::Warn);
        assert!(!out.has_errors());
    }

    #[test]
    fn baseline_suppresses_known_findings() {
        let report = sample_report();
        let json = format!(
            "{{\"reports\":[{{\"file\":\"x.v\",\"report\":{}}}],\"errors\":1,\"warnings\":1}}",
            report.to_json().render()
        );
        let baseline = Baseline::parse(&json).unwrap();
        assert_eq!(baseline.len(), 2);
        let (new, suppressed) = baseline.filter("x.v", sample_report());
        assert_eq!(suppressed, 2);
        assert!(new.is_clean());
        // A different file does not match the recorded keys.
        let (new, suppressed) = baseline.filter("y.v", sample_report());
        assert_eq!(suppressed, 0);
        assert_eq!(new.diagnostics().len(), 2);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"no_reports\":1}").is_err());
    }
}
