//! Lints over functional and power traces, and over the mined
//! proposition table's coverage of a trace.

use crate::{codes, AnalysisReport, Diagnostic};
use psm_mining::PropositionTable;
use psm_trace::{FunctionalTrace, PowerTrace};

/// Checks a power trace for non-finite (`TR001`) and negative (`TR002`)
/// samples. `name` identifies the trace in the report (e.g. `trace 3`).
pub fn lint_power_trace(trace: &PowerTrace, name: &str) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("power {name}"));
    let mut non_finite = Vec::new();
    let mut negative = Vec::new();
    for (t, p) in trace.iter().enumerate() {
        if !p.is_finite() {
            non_finite.push(t);
        } else if p < 0.0 {
            negative.push(t);
        }
    }
    if let Some(&first) = non_finite.first() {
        report.push(Diagnostic::new(
            &codes::TR001,
            format!("instant {first}"),
            format!(
                "{} non-finite power sample(s), first at instant {first}",
                non_finite.len()
            ),
        ));
    }
    if let Some(&first) = negative.first() {
        report.push(Diagnostic::new(
            &codes::TR002,
            format!("instant {first}"),
            format!(
                "{} negative power sample(s), first at instant {first}",
                negative.len()
            ),
        ));
    }
    report
}

/// Checks a functional trace for signals stuck at one constant value for
/// its whole duration (`TR004`). Traces shorter than two instants carry no
/// toggle information and are skipped.
pub fn lint_functional_trace(trace: &FunctionalTrace) -> AnalysisReport {
    let mut report = AnalysisReport::new("functional trace".to_string());
    if trace.len() < 2 {
        return report;
    }
    for (id, decl) in trace.signals().iter() {
        let first = trace.value(id, 0);
        let stuck = (1..trace.len()).all(|t| trace.value(id, t) == first);
        if stuck {
            report.push(Diagnostic::new(
                &codes::TR004,
                format!("signal `{}`", decl.name()),
                format!(
                    "signal `{}` holds one constant value across all {} instants",
                    decl.name(),
                    trace.len()
                ),
            ));
        }
    }
    report
}

/// Checks one functional/power trace pair: length agreement (`TR003`) plus
/// the per-trace lints of [`lint_power_trace`] and
/// [`lint_functional_trace`]. `name` identifies the pair in the report.
pub fn lint_trace_pair(
    functional: &FunctionalTrace,
    power: &PowerTrace,
    name: &str,
) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("trace pair {name}"));
    if functional.len() != power.len() {
        report.push(Diagnostic::new(
            &codes::TR003,
            format!("{name} lengths"),
            format!(
                "functional trace has {} instant(s), power trace {}",
                functional.len(),
                power.len()
            ),
        ));
    }
    report.merge(lint_power_trace(power, name));
    report.merge(lint_functional_trace(functional));
    report
}

/// Checks the paper's closed-world property — *exactly one proposition
/// holds per instant* — over a functional trace: every cycle must classify
/// to some proposition of the mined table (`TR005`).
pub fn lint_proposition_coverage(
    table: &PropositionTable,
    trace: &FunctionalTrace,
    name: &str,
) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("proposition coverage of {name}"));
    let mut scratch = psm_mining::RowScratch::new();
    let uncovered: Vec<usize> = (0..trace.len())
        .filter(|&t| table.classify_with(trace.cycle(t), &mut scratch).is_none())
        .collect();
    if let Some(&first) = uncovered.first() {
        report.push(Diagnostic::new(
            &codes::TR005,
            format!("instant {first}"),
            format!(
                "{} instant(s) match no mined proposition, first at instant {first}",
                uncovered.len()
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn finite_positive_power_is_clean() {
        let p: PowerTrace = [0.0, 1.5, 2.0].into_iter().collect();
        assert!(lint_power_trace(&p, "trace 0").is_clean());
    }

    #[test]
    fn nan_infinity_and_negative_samples_are_flagged() {
        let p: PowerTrace = [1.0, f64::NAN, -2.0, f64::INFINITY].into_iter().collect();
        let report = lint_power_trace(&p, "trace 0");
        assert_eq!(codes_of(&report), vec!["TR001", "TR002"]);
        assert!(report.diagnostics()[0].message.contains("2 non-finite"));
        assert!(report.diagnostics()[0].location.contains("instant 1"));
        assert!(report.diagnostics()[1].message.contains("1 negative"));
    }

    #[test]
    fn length_mismatch_is_tr003() {
        use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
        let mut signals = SignalSet::new();
        signals.push("a", 1, Direction::Input).unwrap();
        let mut f = FunctionalTrace::new(signals);
        f.push_cycle(vec![Bits::from_u64(0, 1)]).unwrap();
        f.push_cycle(vec![Bits::from_u64(1, 1)]).unwrap();
        let p: PowerTrace = [1.0].into_iter().collect();
        let report = lint_trace_pair(&f, &p, "pair 0");
        assert!(codes_of(&report).contains(&"TR003"), "{}", report.text());
    }

    #[test]
    fn stuck_signal_is_tr004_and_toggling_is_not() {
        use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
        let mut signals = SignalSet::new();
        signals.push("stuck", 2, Direction::Input).unwrap();
        signals.push("lively", 1, Direction::Output).unwrap();
        let mut f = FunctionalTrace::new(signals);
        for t in 0..4u64 {
            f.push_cycle(vec![Bits::from_u64(2, 2), Bits::from_u64(t % 2, 1)])
                .unwrap();
        }
        let report = lint_functional_trace(&f);
        assert_eq!(codes_of(&report), vec!["TR004"]);
        assert!(report.diagnostics()[0].location.contains("stuck"));
    }
}
