//! SARIF 2.1.0 rendering of analysis reports.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format CI platforms ingest for static-analysis
//! results. One run object carries the `psmlint` driver with its full
//! rule catalogue ([`crate::codes::ALL`]) and one result per diagnostic;
//! files map to `artifactLocation` URIs and the in-artifact locations
//! (`net n5`, `state s3`, …) to logical locations.

use crate::{codes, AnalysisReport, Severity};
use psm_persist::JsonValue;

/// The SARIF `level` for a diagnostic severity.
pub fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "note",
        Severity::Warn => "warning",
        Severity::Error => "error",
    }
}

/// Renders `(file, report)` pairs as one SARIF 2.1.0 document.
///
/// Every catalogued code appears as a rule (so consumers can index
/// results by `ruleIndex`); every diagnostic of every report becomes one
/// result whose physical location is the artifact file and whose logical
/// location is the diagnostic's in-artifact location string.
///
/// # Examples
///
/// ```
/// use psm_analyze::{to_sarif, AnalysisReport};
///
/// let sarif = to_sarif(&[("clean.v".to_owned(), AnalysisReport::new("netlist `clean`"))]);
/// assert_eq!(sarif.str_field("version").unwrap(), "2.1.0");
/// ```
pub fn to_sarif(reports: &[(String, AnalysisReport)]) -> JsonValue {
    let rule_index = |code: &str| {
        codes::ALL
            .iter()
            .position(|info| info.code == code)
            .expect("every diagnostic code is catalogued")
    };

    let rules = JsonValue::arr(codes::ALL.iter().map(|info| {
        JsonValue::obj([
            ("id", JsonValue::from(info.code)),
            (
                "shortDescription",
                JsonValue::obj([("text", JsonValue::from(info.summary))]),
            ),
            (
                "help",
                JsonValue::obj([("text", JsonValue::from(info.help))]),
            ),
            (
                "defaultConfiguration",
                JsonValue::obj([("level", JsonValue::from(sarif_level(info.severity)))]),
            ),
        ])
    }));

    let results = JsonValue::arr(reports.iter().flat_map(|(file, report)| {
        report.diagnostics().iter().map(move |d| {
            let location = JsonValue::obj([
                (
                    "physicalLocation",
                    JsonValue::obj([(
                        "artifactLocation",
                        JsonValue::obj([("uri", JsonValue::from(file.as_str()))]),
                    )]),
                ),
                (
                    "logicalLocations",
                    JsonValue::arr([JsonValue::obj([
                        ("name", JsonValue::from(d.location.as_str())),
                        ("kind", JsonValue::from("element")),
                    ])]),
                ),
            ]);
            let mut fields = vec![
                ("ruleId", JsonValue::from(d.code)),
                ("ruleIndex", JsonValue::from(rule_index(d.code))),
                ("level", JsonValue::from(sarif_level(d.severity))),
                (
                    "message",
                    JsonValue::obj([(
                        "text",
                        JsonValue::from(format!(
                            "{}: {} (help: {})",
                            d.location, d.message, d.help
                        )),
                    )]),
                ),
                ("locations", JsonValue::arr([location.clone()])),
            ];
            // Cross-artifact findings name every artifact they span;
            // viewers surface them as relatedLocations next to the
            // primary one.
            if !d.related.is_empty() {
                fields.push((
                    "relatedLocations",
                    JsonValue::arr(d.related.iter().map(|path| {
                        JsonValue::obj([
                            (
                                "physicalLocation",
                                JsonValue::obj([(
                                    "artifactLocation",
                                    JsonValue::obj([("uri", JsonValue::from(path.as_str()))]),
                                )]),
                            ),
                            (
                                "message",
                                JsonValue::obj([(
                                    "text",
                                    JsonValue::from(format!("artifact implicated by {}", d.code)),
                                )]),
                            ),
                        ])
                    })),
                ));
            }
            // Counterexample traces ride along as a codeFlow: one thread
            // flow location per cycle, so SARIF viewers can step through
            // the stimulus that led to the violation.
            if !d.steps.is_empty() {
                let flow_locations = JsonValue::arr(d.steps.iter().map(|step| {
                    JsonValue::obj([(
                        "location",
                        JsonValue::obj([
                            (
                                "physicalLocation",
                                JsonValue::obj([(
                                    "artifactLocation",
                                    JsonValue::obj([("uri", JsonValue::from(file.as_str()))]),
                                )]),
                            ),
                            (
                                "message",
                                JsonValue::obj([("text", JsonValue::from(step.as_str()))]),
                            ),
                        ]),
                    )])
                }));
                fields.push((
                    "codeFlows",
                    JsonValue::arr([JsonValue::obj([(
                        "threadFlows",
                        JsonValue::arr([JsonValue::obj([("locations", flow_locations)])]),
                    )])]),
                ));
            }
            JsonValue::obj(fields)
        })
    }));

    let driver = JsonValue::obj([
        ("name", JsonValue::from("psmlint")),
        (
            "informationUri",
            JsonValue::from("https://github.com/psmgen/psmgen"),
        ),
        ("version", JsonValue::from(env!("CARGO_PKG_VERSION"))),
        ("rules", rules),
    ]);

    JsonValue::obj([
        (
            "$schema",
            JsonValue::from("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", JsonValue::from("2.1.0")),
        (
            "runs",
            JsonValue::arr([JsonValue::obj([
                ("tool", JsonValue::obj([("driver", driver)])),
                ("results", results),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    #[test]
    fn levels_map_to_sarif_names() {
        assert_eq!(sarif_level(Severity::Info), "note");
        assert_eq!(sarif_level(Severity::Warn), "warning");
        assert_eq!(sarif_level(Severity::Error), "error");
    }

    #[test]
    fn document_shape_round_trips() {
        let mut r = AnalysisReport::new("netlist `broken`");
        r.push(Diagnostic::new(&codes::NL002, "net n7", "two drivers"));
        let sarif = to_sarif(&[("broken.v".to_owned(), r)]);
        let text = sarif.render();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back.str_field("version").unwrap(), "2.1.0");
        let runs = back.arr_field("runs").unwrap();
        assert_eq!(runs.len(), 1);
        let results = runs[0].arr_field("results").unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].str_field("ruleId").unwrap(), "NL002");
        assert_eq!(results[0].str_field("level").unwrap(), "error");
        let driver = runs[0]
            .field("tool")
            .unwrap()
            .field("driver")
            .unwrap()
            .clone();
        assert_eq!(driver.str_field("name").unwrap(), "psmlint");
        assert_eq!(
            driver.arr_field("rules").unwrap().len(),
            codes::ALL.len(),
            "every catalogued code is a rule"
        );
    }

    #[test]
    fn related_artifacts_render_as_related_locations() {
        let mut r = AnalysisReport::new("psm vs netlist");
        r.push(
            Diagnostic::new(&codes::XA005, "state s1 / domain `unit`", "leaks")
                .with_related(vec!["model.json".to_owned(), "design.v".to_owned()]),
        );
        let sarif = to_sarif(&[("model.json".to_owned(), r)]);
        let back = JsonValue::parse(&sarif.render()).unwrap();
        let results = back.arr_field("runs").unwrap()[0]
            .arr_field("results")
            .unwrap();
        let related = results[0].arr_field("relatedLocations").unwrap();
        assert_eq!(related.len(), 2, "both implicated artifacts resolve");
        let uri = related[1]
            .field("physicalLocation")
            .unwrap()
            .field("artifactLocation")
            .unwrap()
            .str_field("uri")
            .unwrap();
        assert_eq!(uri, "design.v");
    }

    #[test]
    fn counterexample_steps_render_as_code_flows() {
        let mut r = AnalysisReport::new("verify `defect`");
        r.push(
            Diagnostic::new(&codes::MC001, "assertion `p0 X p1`", "refuted").with_steps(vec![
                "cycle 0: inputs en=1'h1 -> p0".to_owned(),
                "cycle 1: inputs en=1'h0 -> p2".to_owned(),
            ]),
        );
        let sarif = to_sarif(&[("defect.json".to_owned(), r)]);
        let back = JsonValue::parse(&sarif.render()).unwrap();
        let results = back.arr_field("runs").unwrap()[0]
            .arr_field("results")
            .unwrap();
        let flows = results[0].arr_field("codeFlows").unwrap();
        assert_eq!(flows.len(), 1);
        let locations = flows[0].arr_field("threadFlows").unwrap()[0]
            .arr_field("locations")
            .unwrap();
        assert_eq!(locations.len(), 2, "one thread flow location per cycle");
        let first = locations[0]
            .field("location")
            .unwrap()
            .field("message")
            .unwrap()
            .str_field("text")
            .unwrap();
        assert!(first.starts_with("cycle 0"));
    }
}
