//! Lints over hidden Markov models and their consistency with the PSM
//! they were built from.

use crate::{codes, AnalysisReport, Diagnostic};
use psm_core::Psm;
use psm_hmm::Hmm;

/// How far a probability row's sum may drift from 1 before `HM001` fires.
///
/// Deliberately much tighter than the `1e-6` the persistence layer
/// tolerates on load, so a model that deserialises fine can still be
/// flagged as numerically degraded.
pub const ROW_SUM_TOLERANCE: f64 = 1e-9;

fn lint_row(report: &mut AnalysisReport, matrix: &str, index: usize, row: &[f64]) {
    let mut problems = Vec::new();
    if let Some(p) = row
        .iter()
        .find(|p| !(0.0..=1.0).contains(*p) || !p.is_finite())
    {
        problems.push(format!("entry {p} outside [0, 1]"));
    }
    let sum: f64 = row.iter().sum();
    if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
        problems.push(format!("row sums to {sum:.12}"));
    }
    if !problems.is_empty() {
        report.push(Diagnostic::new(
            &codes::HM001,
            format!("{matrix} row {index}"),
            format!("{matrix} row {index}: {}", problems.join(", ")),
        ));
    }
}

/// Statically checks an HMM λ = (A, B, π) on its own.
///
/// Emits `HM001` (a row of A or B, or π itself, is not a probability
/// distribution within [`ROW_SUM_TOLERANCE`]), `HM004` (π carries no mass
/// at all — in that case its `HM001` sum check is skipped, the zero mass
/// being the finding) and `HM002` (absorbing states with self-loop
/// probability 1 — a warning, since terminal training behaviours
/// legitimately produce them).
pub fn lint_hmm(hmm: &Hmm) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("hmm ({} states)", hmm.num_states()));

    for (i, row) in hmm.a().iter().enumerate() {
        lint_row(&mut report, "A", i, row);
    }
    for (i, row) in hmm.b().iter().enumerate() {
        lint_row(&mut report, "B", i, row);
    }

    let pi_mass: f64 = hmm.pi().iter().sum();
    if hmm.num_states() > 0 && pi_mass <= 0.0 {
        report.push(Diagnostic::new(
            &codes::HM004,
            "π",
            "initial distribution π has zero total mass",
        ));
    } else {
        lint_row(&mut report, "π", 0, hmm.pi());
    }

    for (i, row) in hmm.a().iter().enumerate() {
        if row.get(i).copied().unwrap_or(0.0) >= 1.0 - ROW_SUM_TOLERANCE {
            report.push(Diagnostic::new(
                &codes::HM002,
                format!("state {i}"),
                format!("state {i} is absorbing (a[{i}][{i}] = 1)"),
            ));
        }
    }

    report
}

/// Checks an HMM against the PSM it models (`HM003`): the hidden-state
/// count must equal the PSM's state count, the symbol alphabet must match
/// the mined proposition table's size, and every proposition appearing in
/// a state's chain assertions must have non-zero emission probability in
/// that state's B row (otherwise the filtering simulation can never
/// observe the state's own assertion).
pub fn lint_hmm_against_psm(hmm: &Hmm, psm: &Psm, num_symbols: usize) -> AnalysisReport {
    let mut report = AnalysisReport::new("hmm vs psm".to_string());

    if hmm.num_states() != psm.state_count() {
        report.push(Diagnostic::new(
            &codes::HM003,
            "state count",
            format!(
                "HMM has {} hidden state(s), PSM has {}",
                hmm.num_states(),
                psm.state_count()
            ),
        ));
        return report;
    }
    if hmm.num_symbols() != num_symbols {
        report.push(Diagnostic::new(
            &codes::HM003,
            "symbol alphabet",
            format!(
                "HMM emits {} symbol(s), proposition table has {num_symbols}",
                hmm.num_symbols()
            ),
        ));
        return report;
    }

    for (id, state) in psm.states() {
        let row = &hmm.b()[id.index()];
        for chain in state.chains() {
            for part in chain.parts() {
                let k = part.left().index();
                if k < row.len() && row[k] == 0.0 {
                    report.push(Diagnostic::new(
                        &codes::HM003,
                        format!("state s{} emission p{k}", id.index()),
                        format!(
                            "state s{} asserts p{k} but its emission probability is 0",
                            id.index()
                        ),
                    ));
                }
            }
        }
    }

    report
}

/// Lints a full trained model — the PSM on its own ([`lint_psm`]), the HMM
/// on its own ([`lint_hmm`]) and their mutual consistency
/// ([`lint_hmm_against_psm`]) — into one report.
///
/// [`lint_psm`]: crate::lint_psm
pub fn lint_model(psm: &Psm, hmm: &Hmm, num_symbols: usize) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!(
        "model ({} states, {num_symbols} propositions)",
        psm.state_count()
    ));
    report.merge(crate::lint_psm(psm));
    report.merge(lint_hmm(hmm));
    report.merge(lint_hmm_against_psm(hmm, psm, num_symbols));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    fn small_hmm() -> Hmm {
        Hmm::new(
            vec![vec![0.5, 0.5], vec![0.4, 0.6]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 0.0],
        )
        .unwrap()
    }

    #[test]
    fn normalised_hmm_is_clean() {
        assert!(lint_hmm(&small_hmm()).is_clean());
    }

    #[test]
    fn perturbed_row_is_hm001() {
        // Hmm::new normalises, so build the defect through the persistence
        // layer (tolerance 1e-6), exactly as a degraded file would arrive.
        let mut json = psm_persist::Persist::to_json(&small_hmm()).render();
        json = json.replacen("0.5", "0.5000005", 1);
        let hmm: Hmm =
            psm_persist::Persist::from_json(&psm_persist::JsonValue::parse(&json).unwrap())
                .unwrap();
        let report = lint_hmm(&hmm);
        assert_eq!(codes_of(&report), vec!["HM001"]);
        assert!(report.diagnostics()[0].location.contains("A row 0"));
    }

    #[test]
    fn absorbing_state_is_hm002_warning() {
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.5, 0.5]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![0.5, 0.5],
        )
        .unwrap();
        let report = lint_hmm(&hmm);
        assert_eq!(codes_of(&report), vec!["HM002"]);
        assert!(!report.has_errors());
    }

    #[test]
    fn shape_mismatch_is_hm003() {
        let psm = Psm::new();
        let report = lint_hmm_against_psm(&small_hmm(), &psm, 2);
        assert_eq!(codes_of(&report), vec!["HM003"]);
    }
}
