//! Cross-artifact consistency analyses (`XA…` codes).
//!
//! The per-artifact lints check each pipeline product in isolation; the
//! analyses here check that the products agree with *each other*, the way
//! trace-model-synthesis work validates a mined model back against the
//! traces it came from:
//!
//! * [`lint_interface`] — the signal set a trace (or behavioural IP)
//!   declares versus the port interface of the structural netlist;
//! * [`lint_psm_against_training`] — every PSM state's power attributes
//!   ⟨μ, σ, n⟩ re-derived from the training power windows it records, and
//!   compared with a one-sample t-test at the merge-time α;
//! * [`lint_hmm_against_observations`] — HMM emission symbols that never
//!   occur in the classified proposition traces;
//! * [`lint_psm_against_table`] — PSM transition guards referencing
//!   propositions absent from the mined dictionary;
//! * [`lint_psm_power_intent`] — mined states whose near-zero power
//!   implies a domain is gated off, checked against the netlist's ternary
//!   isolation proof ([`crate::prove_domain_off`]).

use crate::powerintent::{prove_domain_off, ALWAYS_ON};
use crate::{codes, AnalysisReport, Diagnostic};
use psm_core::Psm;
use psm_hmm::Hmm;
use psm_mining::PropositionTrace;
use psm_rtl::Netlist;
use psm_stats::{one_sample_t_test, OnlineStats};
use psm_trace::{PowerTrace, SignalSet};

/// Relative tolerance under which two recomputed statistics count as
/// byte-for-byte re-derivable (floating-point merge-order noise).
const REDERIVE_TOLERANCE: f64 = 1e-9;

/// Cross-checks a trace's declared signal set against a netlist's ports.
///
/// Emits `XA001` for every signal missing from the netlist, every netlist
/// port missing from the signal set, and every name carried by both with
/// a differing width or direction. A trace captured from this netlist (or
/// an IP whose behavioural interface matches its structural twin) is
/// clean.
pub fn lint_interface(signals: &SignalSet, netlist: &Netlist) -> AnalysisReport {
    let mut report =
        AnalysisReport::new(format!("trace interface vs netlist `{}`", netlist.name()));
    for (_, decl) in signals.iter() {
        match netlist.ports().iter().find(|p| p.name() == decl.name()) {
            None => report.push(Diagnostic::new(
                &codes::XA001,
                format!("signal `{}`", decl.name()),
                format!(
                    "trace signal `{}` has no port on netlist `{}`",
                    decl.name(),
                    netlist.name()
                ),
            )),
            Some(port) => {
                if port.width() != decl.width() {
                    report.push(Diagnostic::new(
                        &codes::XA001,
                        format!("signal `{}`", decl.name()),
                        format!(
                            "width mismatch: trace declares {} bit(s), netlist port has {}",
                            decl.width(),
                            port.width()
                        ),
                    ));
                }
                if port.direction() != decl.direction() {
                    report.push(Diagnostic::new(
                        &codes::XA001,
                        format!("signal `{}`", decl.name()),
                        format!(
                            "direction mismatch: trace declares {:?}, netlist port is {:?}",
                            decl.direction(),
                            port.direction()
                        ),
                    ));
                }
            }
        }
    }
    for port in netlist.ports() {
        if signals.by_name(port.name()).is_none() {
            report.push(Diagnostic::new(
                &codes::XA001,
                format!("port `{}`", port.name()),
                format!(
                    "netlist port `{}` is absent from the trace signal set",
                    port.name()
                ),
            ));
        }
    }
    report
}

/// Re-derives every PSM state's power attributes from its recorded
/// training windows and compares them with the stored ⟨μ, σ, n⟩.
///
/// `power` must hold the training power traces in the order the state
/// windows index them ([`psm_core::SourceWindow::trace`]); `alpha` is the
/// significance level the merge policy used when the PSM was built. Emits
/// `XA002` when a window points outside the training set, when the sample
/// count differs, or when a one-sample t-test of the re-derived samples
/// against the stored mean rejects at `alpha` — the attributes are no
/// longer re-derivable from the traces they claim to summarise.
pub fn lint_psm_against_training(psm: &Psm, power: &[PowerTrace], alpha: f64) -> AnalysisReport {
    let mut report = AnalysisReport::new("psm attributes vs training windows");
    for (id, state) in psm.states() {
        let mut rederived = OnlineStats::new();
        let mut windows_ok = true;
        for w in state.windows() {
            let Some(trace) = power.get(w.trace) else {
                report.push(Diagnostic::new(
                    &codes::XA002,
                    format!("state {id}"),
                    format!(
                        "window references training trace {} but only {} trace(s) were given",
                        w.trace,
                        power.len()
                    ),
                ));
                windows_ok = false;
                continue;
            };
            if w.start > w.stop || w.stop >= trace.len() {
                report.push(Diagnostic::new(
                    &codes::XA002,
                    format!("state {id}"),
                    format!(
                        "window [{}, {}] lies outside training trace {} of length {}",
                        w.start,
                        w.stop,
                        w.trace,
                        trace.len()
                    ),
                ));
                windows_ok = false;
                continue;
            }
            for &sample in trace.window(w.start, w.stop) {
                rederived.push(sample);
            }
        }
        if !windows_ok {
            continue;
        }
        let stored = state.attrs();
        if rederived.count() != stored.n() {
            report.push(Diagnostic::new(
                &codes::XA002,
                format!("state {id}"),
                format!(
                    "stored n = {} but the recorded windows cover {} sample(s)",
                    stored.n(),
                    rederived.count()
                ),
            ));
            continue;
        }
        if rederived.is_empty() {
            continue; // n = 0 is PS002's finding, not a window mismatch
        }
        let scale = stored.mu().abs().max(1.0);
        if (rederived.mean() - stored.mu()).abs() <= REDERIVE_TOLERANCE * scale {
            continue; // exactly re-derivable modulo merge-order rounding
        }
        let rejected = match one_sample_t_test(&rederived, stored.mu()) {
            Ok(t) => !t.is_same_population(alpha),
            // Degenerate samples (n < 2 or zero variance): the exact
            // comparison above already failed, so the mean moved.
            Err(_) => true,
        };
        if rejected {
            report.push(Diagnostic::new(
                &codes::XA002,
                format!("state {id}"),
                format!(
                    "stored μ = {:.6} is not re-derivable from the recorded windows \
                     (recomputed μ = {:.6}, n = {}, α = {alpha})",
                    stored.mu(),
                    rederived.mean(),
                    rederived.count()
                ),
            ));
        }
    }
    report
}

/// Flags HMM emission symbols that never occur in the observations.
///
/// `observed` are the classified proposition traces the model was trained
/// on (or any workload the model claims to describe). Emits one `XA003`
/// warning aggregating every symbol with non-zero emission probability in
/// some hidden state that no observation sequence ever produces — mass
/// the estimator can only waste.
pub fn lint_hmm_against_observations(hmm: &Hmm, observed: &[PropositionTrace]) -> AnalysisReport {
    let mut report = AnalysisReport::new("hmm emissions vs observations");
    let symbols = hmm.num_symbols();
    let mut seen = vec![false; symbols];
    for trace in observed {
        for id in trace.iter() {
            if let Some(flag) = seen.get_mut(id.index()) {
                *flag = true;
            }
        }
    }
    let phantom: Vec<usize> = (0..symbols)
        .filter(|&s| !seen[s] && hmm.b().iter().any(|row| row[s] > 0.0))
        .collect();
    if !phantom.is_empty() {
        let preview: Vec<String> = phantom.iter().take(8).map(|s| format!("p{s}")).collect();
        report.push(Diagnostic::new(
            &codes::XA003,
            format!("symbol p{}", phantom[0]),
            format!(
                "{} emission symbol(s) never occur in the {} observation trace(s): {}{}",
                phantom.len(),
                observed.len(),
                preview.join(", "),
                if phantom.len() > preview.len() {
                    ", …"
                } else {
                    ""
                }
            ),
        ));
    }
    report
}

/// Checks every PSM transition guard against the mined dictionary size.
///
/// Emits `XA004` for each transition whose guard proposition index lies
/// beyond `table_len` — the guard names a proposition the mined dictionary
/// never defined, so no observation can ever take the edge.
pub fn lint_psm_against_table(psm: &Psm, table_len: usize) -> AnalysisReport {
    let mut report = AnalysisReport::new("psm guards vs proposition dictionary");
    for (i, t) in psm.transitions().iter().enumerate() {
        if t.guard.index() >= table_len {
            report.push(Diagnostic::new(
                &codes::XA004,
                format!("transition #{i}"),
                format!(
                    "guard {} of transition {} -> {} is outside the mined dictionary \
                     of {table_len} proposition(s)",
                    t.guard, t.from, t.to
                ),
            ));
        }
    }
    report
}

/// Fraction of the maximum state mean power below which a mined PSM state
/// counts as *off-implying*: the design it models is (at least mostly)
/// power-gated while the state holds.
pub const OFF_STATE_POWER_FRACTION: f64 = 0.05;

/// Cross-checks the mined PSM's off-implying states against the netlist's
/// power intent.
///
/// A state whose mean power `μ` is at most [`OFF_STATE_POWER_FRACTION`] of
/// the largest state mean implies that some gateable domain is powered
/// down while the state holds. For a flat model pass `domain = None` and
/// every populated gateable domain of the netlist is a candidate; for a
/// per-domain model (hierarchical capture) pass the domain's name to check
/// just that one. Emits `XA005` for every (off-implying state, candidate
/// domain) pair where [`crate::prove_domain_off`] refutes isolation — the
/// mined model promises a power-down the netlist cannot survive.
///
/// Silent when the netlist declares no power intent
/// ([`psm_rtl::Netlist::has_power_intent`]), when the PSM has no
/// off-implying state, or when `domain` names an unknown or always-on
/// domain.
pub fn lint_psm_power_intent(psm: &Psm, domain: Option<&str>, netlist: &Netlist) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!(
        "psm power states vs netlist `{}` power intent",
        netlist.name()
    ));
    if !netlist.has_power_intent() {
        return report;
    }
    let max_mu = psm
        .states()
        .map(|(_, s)| s.attrs().mu())
        .fold(f64::NEG_INFINITY, f64::max);
    if !max_mu.is_finite() || max_mu <= 0.0 {
        return report;
    }
    let off_states: Vec<_> = psm
        .states()
        .filter(|(_, s)| s.attrs().mu() <= OFF_STATE_POWER_FRACTION * max_mu)
        .collect();
    if off_states.is_empty() {
        return report;
    }
    let populated = {
        let mut p = vec![false; netlist.domains().len()];
        for &d in netlist.gate_domains() {
            p[d] = true;
        }
        for &d in netlist.dff_domains() {
            p[d] = true;
        }
        for &d in netlist.mem_domains() {
            p[d] = true;
        }
        p
    };
    let candidates: Vec<usize> = match domain {
        Some(name) => netlist
            .domains()
            .iter()
            .position(|d| d == name)
            .into_iter()
            .filter(|&d| d != ALWAYS_ON && populated[d])
            .collect(),
        None => (0..netlist.domains().len())
            .filter(|&d| d != ALWAYS_ON && populated[d])
            .collect(),
    };
    for d in candidates {
        let Some(proof) = prove_domain_off(netlist, d) else {
            continue; // uninterpretable netlists are the structural lints' finding
        };
        if proof.is_isolated() {
            continue;
        }
        let name = &netlist.domains()[d];
        for (id, state) in &off_states {
            report.push(Diagnostic::new(
                &codes::XA005,
                format!("state {id} / domain `{name}`"),
                format!(
                    "state {id} implies domain `{name}` is powered off (μ = {:.6} ≤ {:.0}% \
                     of the maximum state power {max_mu:.6}), but the netlist leaks that \
                     domain's X at {} point(s) (first: {})",
                    state.attrs().mu(),
                    OFF_STATE_POWER_FRACTION * 100.0,
                    proof.leaks.len(),
                    proof.leaks[0].sink
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_core::{ChainAssertion, PowerAttributes, PowerState, SourceWindow, StateId};
    use psm_mining::{PropositionId, TemporalAssertion, TemporalPattern};
    use psm_rtl::{NetlistBuilder, Word};
    use psm_trace::{Direction, SignalSet};

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    fn tiny_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a", 2);
        let x = b.and(a.bit(0), a.bit(1));
        b.output("x", &Word::from_nets(vec![x]));
        b.finish().unwrap()
    }

    fn state(trace: usize, start: usize, stop: usize, delta: &PowerTrace) -> PowerState {
        let p = PropositionId::from_index(0);
        PowerState::new(
            ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, p, p)),
            SourceWindow { trace, start, stop },
            PowerAttributes::from_window(delta, start, stop),
        )
    }

    #[test]
    fn matching_interface_is_clean() {
        let n = tiny_netlist();
        assert!(lint_interface(&n.signal_set(), &n).is_clean());
    }

    #[test]
    fn width_and_missing_signal_are_xa001() {
        let n = tiny_netlist();
        let mut s = SignalSet::new();
        s.push("a", 3, Direction::Input).unwrap(); // wrong width
        s.push("y", 1, Direction::Output).unwrap(); // not a port
        let report = lint_interface(&s, &n);
        // wrong width on `a`, missing port `y`, port `x` absent from set
        assert_eq!(codes_of(&report), vec!["XA001"; 3]);
    }

    #[test]
    fn rederivable_attrs_are_clean() {
        let delta: PowerTrace = [3.0, 3.5, 2.5, 4.0].into_iter().collect();
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 0, 3, &delta));
        psm.add_initial(s0);
        let report = lint_psm_against_training(&psm, &[delta], 0.3);
        assert!(report.is_clean(), "{}", report.text());
    }

    #[test]
    fn drifted_mean_is_xa002() {
        let delta: PowerTrace = [3.0, 3.5, 2.5, 4.0].into_iter().collect();
        let drifted: PowerTrace = [13.0, 13.5, 12.5, 14.0].into_iter().collect();
        let mut psm = Psm::new();
        // Attributes computed from `drifted`, windows claiming `delta`.
        let p = PropositionId::from_index(0);
        let s0 = psm.add_state(PowerState::new(
            ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, p, p)),
            SourceWindow {
                trace: 0,
                start: 0,
                stop: 3,
            },
            PowerAttributes::from_window(&drifted, 0, 3),
        ));
        psm.add_initial(s0);
        let report = lint_psm_against_training(&psm, &[delta], 0.3);
        assert_eq!(codes_of(&report), vec!["XA002"]);
    }

    #[test]
    fn out_of_range_window_is_xa002() {
        let delta: PowerTrace = [3.0, 3.5].into_iter().collect();
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 0, 1, &delta));
        psm.add_initial(s0);
        // Only one training trace given, but the window names trace 0 with
        // a stop beyond its end.
        let short: PowerTrace = [3.0].into_iter().collect();
        let report = lint_psm_against_training(&psm, &[short], 0.3);
        assert_eq!(codes_of(&report), vec!["XA002"]);
    }

    #[test]
    fn phantom_emission_symbol_is_xa003() {
        // Two states, three symbols; symbol 2 is emitted but never seen.
        let a = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        let b = vec![vec![0.5, 0.0, 0.5], vec![0.0, 1.0, 0.0]];
        let pi = vec![1.0, 0.0];
        let hmm = Hmm::new(a, b, pi).unwrap();
        let seen = PropositionTrace::new(vec![
            PropositionId::from_index(0),
            PropositionId::from_index(1),
        ]);
        let report = lint_hmm_against_observations(&hmm, &[seen]);
        assert_eq!(codes_of(&report), vec!["XA003"]);
        assert!(report.diagnostics()[0].message.contains("p2"));
    }

    #[test]
    fn covered_emissions_are_clean() {
        let a = vec![vec![1.0]];
        let b = vec![vec![0.5, 0.5]];
        let hmm = Hmm::new(a, b, vec![1.0]).unwrap();
        let seen = PropositionTrace::new(vec![
            PropositionId::from_index(0),
            PropositionId::from_index(1),
        ]);
        assert!(lint_hmm_against_observations(&hmm, &[seen]).is_clean());
    }

    fn two_state_psm() -> Psm {
        // One busy state (μ = 10) and one off-implying state (μ = 0.1).
        let delta: PowerTrace = [10.0, 10.0, 0.1, 0.1].into_iter().collect();
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 0, 1, &delta));
        psm.add_state(state(0, 2, 3, &delta));
        psm.add_initial(s0);
        psm
    }

    fn intent_netlist(isolated: bool) -> Netlist {
        use psm_rtl::IsolationKind;
        let mut b = NetlistBuilder::new("pi");
        let a = b.input("a", 2);
        let en_n = b.input("en_n", 1);
        b.domain("unit");
        let inv0 = b.not(a.bit(0));
        let inv1 = b.not(a.bit(1));
        b.domain("core");
        let clamped = b.isolation_cell(IsolationKind::Clamp0, inv0, en_n.bit(0));
        let second = if isolated {
            b.isolation_cell(IsolationKind::Clamp0, inv1, en_n.bit(0))
        } else {
            inv1
        };
        let merged = b.or(second, clamped);
        b.output("x", &Word::from_nets(vec![merged]));
        b.finish().unwrap()
    }

    #[test]
    fn off_state_over_leaky_domain_is_xa005() {
        let psm = two_state_psm();
        let leaky = intent_netlist(false);
        let report = lint_psm_power_intent(&psm, None, &leaky);
        assert_eq!(codes_of(&report), vec!["XA005"]);
        assert!(report.diagnostics()[0].message.contains("unit"));
        // Naming a different (or always-on) domain clears it.
        assert!(lint_psm_power_intent(&psm, Some("core"), &leaky).is_clean());
        assert!(lint_psm_power_intent(&psm, Some("nope"), &leaky).is_clean());
        // Naming the leaking domain reproduces it.
        let scoped = lint_psm_power_intent(&psm, Some("unit"), &leaky);
        assert_eq!(codes_of(&scoped), vec!["XA005"]);
    }

    #[test]
    fn isolated_or_intentless_netlists_are_xa005_clean() {
        let psm = two_state_psm();
        let iso = intent_netlist(true);
        assert!(lint_psm_power_intent(&psm, None, &iso).is_clean());
        // No isolation marks → no declared intent → silent, even though
        // the netlist has several domains.
        let mut b = NetlistBuilder::new("flat");
        let a = b.input("a", 1);
        b.domain("unit");
        let inv = b.not(a.bit(0));
        b.domain("core");
        let out = b.not(inv);
        b.output("x", &Word::from_nets(vec![out]));
        let flat = b.finish().unwrap();
        assert!(lint_psm_power_intent(&psm, None, &flat).is_clean());
    }

    #[test]
    fn busy_only_psm_is_xa005_clean() {
        // Every state is busy: nothing implies a power-down.
        let delta: PowerTrace = [10.0, 10.0, 9.5, 9.5].into_iter().collect();
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 0, 1, &delta));
        psm.add_state(state(0, 2, 3, &delta));
        psm.add_initial(s0);
        let leaky = intent_netlist(false);
        assert!(lint_psm_power_intent(&psm, None, &leaky).is_clean());
    }

    #[test]
    fn dangling_guard_is_xa004() {
        let delta: PowerTrace = [3.0, 3.5].into_iter().collect();
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 0, 1, &delta));
        psm.add_initial(s0);
        psm.add_transition(s0, StateId::from_index(0), PropositionId::from_index(7));
        let report = lint_psm_against_table(&psm, 2);
        assert_eq!(codes_of(&report), vec!["XA004"]);
        assert!(lint_psm_against_table(&psm, 8).is_clean());
    }
}
