//! Lints over generated power state machines.

use crate::{codes, AnalysisReport, Diagnostic};
use psm_core::{Psm, StateId};
use std::collections::{HashMap, VecDeque};

/// Statically checks a PSM's structural invariants.
///
/// Emits `PS006` (transitions or initial marks referencing states outside
/// the machine — if any are present the remaining checks are skipped),
/// `PS005` (no initial state), `PS001` (states unreachable from every
/// initial state), `PS002` (invalid power attributes: n = 0, σ < 0,
/// non-finite μ/σ or a non-finite output function), `PS003` (distinct
/// states sharing one assertion label) and `PS004` (transition guards that
/// are not the exit proposition of the source and the entry proposition of
/// the destination — chain adjacency broken by a bad edit or merge).
pub fn lint_psm(psm: &Psm) -> AnalysisReport {
    let mut report = AnalysisReport::new(format!("psm ({} states)", psm.state_count()));
    let n = psm.state_count();

    // PS006: dangling endpoints poison every later check.
    let mut dangling = false;
    for (ti, t) in psm.transitions().iter().enumerate() {
        for (role, s) in [("source", t.from), ("destination", t.to)] {
            if s.index() >= n {
                dangling = true;
                report.push(Diagnostic::new(
                    &codes::PS006,
                    format!("transition #{ti}"),
                    format!("{role} state s{} is beyond the {n}-state table", s.index()),
                ));
            }
        }
    }
    for &(s, _) in psm.initials() {
        if s.index() >= n {
            dangling = true;
            report.push(Diagnostic::new(
                &codes::PS006,
                format!("initial s{}", s.index()),
                format!("initial state s{} is beyond the {n}-state table", s.index()),
            ));
        }
    }
    if dangling {
        return report;
    }

    // PS005: a machine with states must have somewhere to start.
    if n > 0 && psm.initials().is_empty() {
        report.push(Diagnostic::new(
            &codes::PS005,
            "initials",
            format!("PSM has {n} state(s) but no initial state"),
        ));
    }

    // PS001: breadth-first reachability from the initial states.
    let mut reachable = vec![false; n];
    let mut queue: VecDeque<StateId> = VecDeque::new();
    for &(s, _) in psm.initials() {
        if !reachable[s.index()] {
            reachable[s.index()] = true;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for t in psm.successors(s) {
            if !reachable[t.to.index()] {
                reachable[t.to.index()] = true;
                queue.push_back(t.to);
            }
        }
    }
    if !psm.initials().is_empty() {
        for (id, _) in psm.states() {
            if !reachable[id.index()] {
                report.push(Diagnostic::new(
                    &codes::PS001,
                    format!("state s{}", id.index()),
                    format!(
                        "state s{} is unreachable from the initial states",
                        id.index()
                    ),
                ));
            }
        }
    }

    // PS002: the attributes every estimate is built from.
    for (id, state) in psm.states() {
        let a = state.attrs();
        let mut problems = Vec::new();
        if a.n() == 0 {
            problems.push("n = 0".to_string());
        }
        if !a.mu().is_finite() {
            problems.push(format!("μ = {}", a.mu()));
        }
        if a.sigma() < 0.0 || !a.sigma().is_finite() {
            problems.push(format!("σ = {}", a.sigma()));
        }
        let out = state.output();
        if !out.evaluate(0.0).is_finite() || !out.evaluate(1.0).is_finite() {
            problems.push("non-finite output function".to_string());
        }
        if !problems.is_empty() {
            report.push(Diagnostic::new(
                &codes::PS002,
                format!("state s{}", id.index()),
                format!("invalid power attributes: {}", problems.join(", ")),
            ));
        }
    }

    // PS003: two states whose (sorted, deduplicated) chain labels coincide.
    let mut by_label: HashMap<String, Vec<usize>> = HashMap::new();
    for (id, state) in psm.states() {
        let mut labels: Vec<String> = state.chains().iter().map(|c| c.to_string()).collect();
        labels.sort();
        labels.dedup();
        by_label
            .entry(labels.join(" ∨ "))
            .or_default()
            .push(id.index());
    }
    let mut groups: Vec<(&String, &Vec<usize>)> =
        by_label.iter().filter(|(_, ids)| ids.len() > 1).collect();
    groups.sort_by_key(|(_, ids)| ids[0]);
    for (label, ids) in groups {
        report.push(Diagnostic::new(
            &codes::PS003,
            format!("states {:?}", ids),
            format!("{} states share the label `{label}`", ids.len()),
        ));
    }

    // PS004: chain adjacency — a guard is the proposition observed when
    // leaving the source chain and entering the destination chain.
    for (ti, t) in psm.transitions().iter().enumerate() {
        let from = psm.state(t.from);
        let to = psm.state(t.to);
        let exits = from
            .chains()
            .iter()
            .any(|c| c.exit_proposition() == t.guard);
        let enters = to.chains().iter().any(|c| c.entry_proposition() == t.guard);
        if !exits || !enters {
            let side = if !exits { "exit" } else { "entry" };
            report.push(Diagnostic::new(
                &codes::PS004,
                format!("transition #{ti} (s{} → s{})", t.from.index(), t.to.index()),
                format!(
                    "guard {} is not an {side} proposition of its {} state",
                    t.guard,
                    if !exits { "source" } else { "destination" }
                ),
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_core::{ChainAssertion, PowerAttributes, PowerState, SourceWindow};
    use psm_mining::{PropositionId, TemporalAssertion, TemporalPattern};
    use psm_trace::PowerTrace;

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    fn state(left: u32, right: u32) -> PowerState {
        let delta: PowerTrace = [3.0, 3.1].into_iter().collect();
        PowerState::new(
            ChainAssertion::single(TemporalAssertion::new(
                TemporalPattern::Until,
                PropositionId::from_index(left),
                PropositionId::from_index(right),
            )),
            SourceWindow {
                trace: 0,
                start: 0,
                stop: 1,
            },
            PowerAttributes::from_window(&delta, 0, 1),
        )
    }

    #[test]
    fn chain_of_states_is_clean() {
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 1));
        let s1 = psm.add_state(state(1, 2));
        psm.add_transition(s0, s1, PropositionId::from_index(1));
        psm.add_initial(s0);
        let report = lint_psm(&psm);
        assert!(report.is_clean(), "{}", report.text());
    }

    #[test]
    fn orphan_state_is_ps001() {
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 1));
        let _orphan = psm.add_state(state(1, 2));
        psm.add_initial(s0);
        let report = lint_psm(&psm);
        assert_eq!(codes_of(&report), vec!["PS001"]);
        assert!(report.diagnostics()[0].location.contains("s1"));
    }

    #[test]
    fn missing_initial_is_ps005() {
        let mut psm = Psm::new();
        psm.add_state(state(0, 1));
        let report = lint_psm(&psm);
        assert!(codes_of(&report).contains(&"PS005"), "{}", report.text());
    }

    #[test]
    fn duplicate_labels_are_ps003() {
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 1));
        let s1 = psm.add_state(state(0, 1));
        psm.add_initial(s0);
        psm.add_initial(s1);
        let report = lint_psm(&psm);
        assert_eq!(codes_of(&report), vec!["PS003"], "{}", report.text());
    }

    #[test]
    fn broken_guard_is_ps004() {
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 1));
        let s1 = psm.add_state(state(1, 2));
        psm.add_transition(s0, s1, PropositionId::from_index(7));
        psm.add_initial(s0);
        let report = lint_psm(&psm);
        assert!(codes_of(&report).contains(&"PS004"), "{}", report.text());
    }

    #[test]
    fn dangling_transition_is_ps006_and_stops_analysis() {
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 1));
        psm.add_transition(s0, StateId::from_index(9), PropositionId::from_index(1));
        psm.add_initial(s0);
        let report = lint_psm(&psm);
        assert_eq!(codes_of(&report), vec!["PS006"]);
    }
}
