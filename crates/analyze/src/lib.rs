//! Static analyses over the `psmgen` pipeline artifacts.
//!
//! The methodology of Danese et al. (DATE 2016) is only trustworthy when
//! its intermediate artifacts uphold their invariants: the netlist must be
//! acyclic and single-driven, the training traces must carry finite
//! non-negative power samples, **exactly one proposition** must hold at
//! every instant, the PSM's power attributes ⟨μ, σ, n⟩ must be well-formed
//! and the HMM's matrices row-stochastic. This crate checks all of that
//! *statically* — before a malformed input can surface as a confusing
//! panic deep inside training or estimation — and reports what it finds as
//! structured [`Diagnostic`]s grouped into an [`AnalysisReport`] that
//! renders as text or JSON.
//!
//! Every diagnostic carries a stable code (`NL…` netlist, `TR…` trace,
//! `PS…` PSM, `HM…` HMM, `XA…` cross-artifact); the full catalogue lives
//! in [`codes`] and is documented in the repository's `DIAGNOSTICS.md`.
//!
//! Beyond the per-artifact surface checks, the crate carries a semantic
//! layer: a ternary-lattice dataflow interpreter over the netlist
//! ([`analyze_dataflow`], powering [`lint_netlist_dataflow`]) and
//! cross-artifact consistency analyses ([`lint_interface`],
//! [`lint_psm_against_training`], [`lint_hmm_against_observations`],
//! [`lint_psm_against_table`]) that validate the mined models back
//! against the traces and structures they came from. Reports render as
//! text, JSON or SARIF 2.1.0 ([`to_sarif`]); policy is applied through
//! [`LintConfig`] (per-code allow/warn/deny) and [`Baseline`]
//! suppression files.
//!
//! # Examples
//!
//! Lint a PSM with an unreachable state:
//!
//! ```
//! use psm_analyze::lint_psm;
//! use psm_core::{ChainAssertion, PowerAttributes, PowerState, Psm, SourceWindow};
//! use psm_mining::{PropositionId, TemporalAssertion, TemporalPattern};
//! use psm_trace::PowerTrace;
//!
//! let p = |i| PropositionId::from_index(i);
//! let delta: PowerTrace = [3.0, 3.1].into_iter().collect();
//! let state = |l, r| {
//!     PowerState::new(
//!         ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, p(l), p(r))),
//!         SourceWindow { trace: 0, start: 0, stop: 1 },
//!         PowerAttributes::from_window(&delta, 0, 1),
//!     )
//! };
//! let mut psm = Psm::new();
//! let s0 = psm.add_state(state(0, 1));
//! let _orphan = psm.add_state(state(1, 2));
//! psm.add_initial(s0);
//!
//! let report = lint_psm(&psm);
//! assert!(report.diagnostics().iter().any(|d| d.code == "PS001"));
//! ```

#![deny(missing_docs)]

mod config;
mod cross;
mod dataflow;
mod hmm;
mod netlist;
mod powerintent;
mod psm;
mod sarif;
mod trace;
mod verify;

pub use config::{Baseline, LintConfig, LintLevel};
pub use cross::{
    lint_hmm_against_observations, lint_interface, lint_psm_against_table,
    lint_psm_against_training, lint_psm_power_intent, OFF_STATE_POWER_FRACTION,
};
pub use dataflow::{
    analyze_dataflow, eval_ternary, lint_netlist_dataflow, DataflowResult, Ternary,
};
pub use hmm::{lint_hmm, lint_hmm_against_psm, lint_model, ROW_SUM_TOLERANCE};
pub use netlist::lint_netlist;
pub use powerintent::{lint_power_intent, prove_domain_off, DomainOffProof, IsolationLeak};
pub use psm::lint_psm;
pub use sarif::{sarif_level, to_sarif};
pub use trace::{
    lint_functional_trace, lint_power_trace, lint_proposition_coverage, lint_trace_pair,
};
pub use verify::{
    replay_witness, unroll_ternary, verify_model, AssertionCheck, Counterexample, Verdict,
    VerifyConfig, VerifyMode, VerifyOutcome,
};

use psm_persist::JsonValue;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never wrong.
    Info,
    /// Suspicious but survivable: the pipeline still produces a result.
    Warn,
    /// A broken invariant: downstream stages may panic or mis-estimate.
    Error,
}

impl Severity {
    /// Stable lowercase name (used in both report formats).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The static description of one diagnostic code: the row it contributes
/// to `DIAGNOSTICS.md`.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// Stable code, e.g. `NL002`.
    pub code: &'static str,
    /// Severity every diagnostic with this code carries.
    pub severity: Severity,
    /// One-line meaning.
    pub summary: &'static str,
    /// The typical fix.
    pub help: &'static str,
}

/// The diagnostic-code catalogue, grouped by artifact prefix: `NL` netlist,
/// `TR` trace, `PS` power state machine, `HM` hidden Markov model and
/// `XA` cross-artifact consistency.
pub mod codes {
    use super::{CodeInfo, Severity};

    /// Combinational logic contains a cycle.
    pub const NL001: CodeInfo = CodeInfo {
        code: "NL001",
        severity: Severity::Error,
        summary: "combinational cycle through a net",
        help: "break the feedback path with a flip-flop or remove the loop",
    };
    /// A net is driven by more than one cell.
    pub const NL002: CodeInfo = CodeInfo {
        code: "NL002",
        severity: Severity::Error,
        summary: "net driven by more than one gate, flip-flop or input",
        help: "keep exactly one driver per net; mux the sources together instead",
    };
    /// A read net has no driver.
    pub const NL003: CodeInfo = CodeInfo {
        code: "NL003",
        severity: Severity::Error,
        summary: "net is read but never driven (floating input)",
        help: "drive the net from a gate, register, constant or input port",
    };
    /// Logic that reaches no observable point.
    pub const NL004: CodeInfo = CodeInfo {
        code: "NL004",
        severity: Severity::Warn,
        summary: "dead logic cone: cells that reach no output, register or memory",
        help: "remove the unused logic or connect it to an observable point",
    };
    /// Input bits nothing reads.
    pub const NL005: CodeInfo = CodeInfo {
        code: "NL005",
        severity: Severity::Warn,
        summary: "input port bits that are never read",
        help: "drop the unused bits from the port or wire them into the design",
    };
    /// A gate with the wrong number of input pins.
    pub const NL006: CodeInfo = CodeInfo {
        code: "NL006",
        severity: Severity::Error,
        summary: "cell input count does not match the cell kind's arity",
        help: "rebuild the cell with the pin count its kind expects",
    };
    /// A cell references a net outside the netlist.
    pub const NL007: CodeInfo = CodeInfo {
        code: "NL007",
        severity: Severity::Error,
        summary: "cell or port references a net beyond the netlist's net count",
        help: "the netlist is corrupt; regenerate it from its source",
    };
    /// A gate that is provably constant yet reads live logic.
    pub const NL008: CodeInfo = CodeInfo {
        code: "NL008",
        severity: Severity::Warn,
        summary: "gate output provably constant while reading non-constant nets",
        help: "the gate masks live logic; replace it with the constant or fix the masking input",
    };
    /// An output-port bit stuck at a provable constant.
    pub const NL009: CodeInfo = CodeInfo {
        code: "NL009",
        severity: Severity::Warn,
        summary: "output port bit provably constant (mining will see a stuck PO)",
        help: "drive the bit from live logic or drop it from the interface",
    };
    /// A floating net observable at an output port.
    pub const NL010: CodeInfo = CodeInfo {
        code: "NL010",
        severity: Severity::Error,
        summary: "the X of an undriven net reaches an output port",
        help: "drive the floating net; its unknown value corrupts an observable output",
    };
    /// An input bit that provably cannot influence any output.
    pub const NL011: CodeInfo = CodeInfo {
        code: "NL011",
        severity: Severity::Warn,
        summary: "input bit read by logic but provably unable to influence any output",
        help: "remove the masking constant or drop the bit from the interface",
    };

    /// A power sample that is NaN or infinite.
    pub const TR001: CodeInfo = CodeInfo {
        code: "TR001",
        severity: Severity::Error,
        summary: "non-finite power sample (NaN or infinity)",
        help: "re-capture the trace; check the power model for overflow",
    };
    /// A negative power sample.
    pub const TR002: CodeInfo = CodeInfo {
        code: "TR002",
        severity: Severity::Error,
        summary: "negative power sample",
        help: "dynamic power is non-negative; check the capture pipeline's noise model",
    };
    /// Functional and power traces of different lengths.
    pub const TR003: CodeInfo = CodeInfo {
        code: "TR003",
        severity: Severity::Error,
        summary: "functional and power trace lengths disagree",
        help: "capture both traces from the same simulation run",
    };
    /// A signal that never changes.
    pub const TR004: CodeInfo = CodeInfo {
        code: "TR004",
        severity: Severity::Warn,
        summary: "signal stuck at one constant value for the whole trace",
        help: "extend the stimulus to exercise the signal, or drop it from the interface",
    };
    /// An instant no mined proposition classifies.
    pub const TR005: CodeInfo = CodeInfo {
        code: "TR005",
        severity: Severity::Error,
        summary: "instant where no mined proposition holds (exactly-one violation)",
        help: "re-mine the propositions over a training set that covers this behaviour",
    };

    /// A state unreachable from every initial state.
    pub const PS001: CodeInfo = CodeInfo {
        code: "PS001",
        severity: Severity::Warn,
        summary: "state unreachable from the initial states",
        help: "remove the orphan state or add the missing transitions",
    };
    /// Malformed power attributes.
    pub const PS002: CodeInfo = CodeInfo {
        code: "PS002",
        severity: Severity::Error,
        summary: "invalid power attributes (n = 0, σ < 0 or non-finite μ/σ)",
        help: "recompute the attributes from the training windows",
    };
    /// Two states with one label.
    pub const PS003: CodeInfo = CodeInfo {
        code: "PS003",
        severity: Severity::Warn,
        summary: "distinct states share one assertion label",
        help: "expected when a merge was rejected on power statistics; review the merge policy",
    };
    /// A transition whose guard matches neither endpoint.
    pub const PS004: CodeInfo = CodeInfo {
        code: "PS004",
        severity: Severity::Error,
        summary: "transition guard matches no exit/entry proposition of its endpoints",
        help: "regenerate the PSM; chain adjacency was broken by a bad edit or merge",
    };
    /// No entry point into the machine.
    pub const PS005: CodeInfo = CodeInfo {
        code: "PS005",
        severity: Severity::Error,
        summary: "PSM has states but no initial state",
        help: "mark the state each training trace starts in as initial",
    };
    /// A transition or initial mark pointing outside the state table.
    pub const PS006: CodeInfo = CodeInfo {
        code: "PS006",
        severity: Severity::Error,
        summary: "transition or initial mark references a state outside the PSM",
        help: "the PSM is corrupt; regenerate it from its source",
    };

    /// A probability row that does not sum to one.
    pub const HM001: CodeInfo = CodeInfo {
        code: "HM001",
        severity: Severity::Error,
        summary: "matrix row is not a probability distribution (beyond tolerance)",
        help: "renormalise the row; probabilities must lie in [0, 1] and sum to 1",
    };
    /// A state the chain can never leave.
    pub const HM002: CodeInfo = CodeInfo {
        code: "HM002",
        severity: Severity::Warn,
        summary: "absorbing hidden state (self-loop probability 1)",
        help: "expected for terminal training behaviours; otherwise add outgoing transitions",
    };
    /// HMM shape or emissions disagreeing with the backing PSM.
    pub const HM003: CodeInfo = CodeInfo {
        code: "HM003",
        severity: Severity::Error,
        summary: "HMM shape or emissions inconsistent with the backing PSM",
        help: "rebuild the HMM from the PSM and proposition table with build_hmm",
    };
    /// An initial distribution with no mass.
    pub const HM004: CodeInfo = CodeInfo {
        code: "HM004",
        severity: Severity::Error,
        summary: "initial distribution π carries no probability mass",
        help: "give at least one state a non-zero initial probability",
    };

    /// A trace signal set disagreeing with the netlist port interface.
    pub const XA001: CodeInfo = CodeInfo {
        code: "XA001",
        severity: Severity::Error,
        summary: "trace signal set and netlist port interface disagree (name, width or direction)",
        help: "capture the trace from this netlist, or fix the IP's declared interface",
    };
    /// PSM attributes no longer re-derivable from their training windows.
    pub const XA002: CodeInfo = CodeInfo {
        code: "XA002",
        severity: Severity::Error,
        summary: "state power attributes not re-derivable from the recorded training windows",
        help: "retrain the PSM; its attributes drifted from the traces they claim to summarise",
    };
    /// HMM emission mass on symbols the observations never produce.
    pub const XA003: CodeInfo = CodeInfo {
        code: "XA003",
        severity: Severity::Warn,
        summary: "HMM emission symbols that never occur in the observation traces",
        help: "rebuild the HMM from the mined table, or extend the training set",
    };
    /// A transition guard naming an unmined proposition.
    pub const XA004: CodeInfo = CodeInfo {
        code: "XA004",
        severity: Severity::Error,
        summary: "transition guard references a proposition absent from the mined dictionary",
        help: "regenerate the PSM against the dictionary it was mined with",
    };
    /// A mined low-power state whose implied power-down the netlist cannot
    /// survive.
    pub const XA005: CodeInfo = CodeInfo {
        code: "XA005",
        severity: Severity::Error,
        summary: "mined PSM state implies a domain is off, but the netlist leaks that domain's X",
        help: "add isolation at the leaking crossing before gating the domain this state \
               implies is powered down, or retrain if the state's near-zero power is spurious",
    };

    /// `MC001` — a mined temporal assertion is refuted on the netlist: a
    /// concrete, re-simulated input stimulus drives the design through a
    /// proposition transition the assertion forbids.
    pub const MC001: CodeInfo = CodeInfo {
        code: "MC001",
        severity: Severity::Error,
        summary: "mined temporal assertion refuted on the netlist (concrete counterexample)",
        help: "replay the attached witness stimulus with `psmlint --replay`; either the \
               netlist diverged from the behaviour the model was trained on, or the \
               training traces missed this behaviour — retrain with richer stimuli",
    };
    /// `MC002` — a mined temporal assertion is vacuous: its antecedent
    /// proposition is unreachable on the netlist within the unroll depth.
    pub const MC002: CodeInfo = CodeInfo {
        code: "MC002",
        severity: Severity::Warn,
        summary: "mined temporal assertion vacuous: antecedent unreachable within the bound",
        help: "the assertion can never fire on this implementation up to the checked \
               depth; the training trace exercised behaviour the netlist cannot reach \
               — check for a stale model or raise `--depth`",
    };
    /// `MC003` — one informational summary per bounded-verification run:
    /// engine mode, depth and the proved/refuted/vacuous/unknown tallies.
    pub const MC003: CodeInfo = CodeInfo {
        code: "MC003",
        severity: Severity::Info,
        summary: "bounded verification summary (mode, depth, per-verdict tallies)",
        help: "informational only; `proved` holds to the stated depth, `unknown` means \
               the abstract engine could neither prove nor refute within the bound",
    };
    /// `MC004` — a PSM state is dead on the implementation: no entry
    /// proposition of any of its chains is reachable within the bound.
    pub const MC004: CodeInfo = CodeInfo {
        code: "MC004",
        severity: Severity::Warn,
        summary: "PSM state dead on the implementation: entry unreachable within the bound",
        help: "the estimator can never enter this state on traces of this netlist; \
               drop the state or retrain against the current implementation",
    };
    /// `MC005` — two transitions leave one state under the same guard
    /// towards different targets, breaking the paper's "exactly one
    /// successor per proposition" reading of the PSM.
    pub const MC005: CodeInfo = CodeInfo {
        code: "MC005",
        severity: Severity::Warn,
        summary: "overlapping transition guards: one guard, two different successors",
        help: "the PSM is nondeterministic here and estimation falls back on HMM \
               likelihoods; tighten the merge policy if determinism is required",
    };
    /// `MC006` — a reachable PSM state has no outgoing transitions: once
    /// entered, the estimator can only leave it through a resync.
    pub const MC006: CodeInfo = CodeInfo {
        code: "MC006",
        severity: Severity::Warn,
        summary: "resync-unrecoverable sink: reachable state with no outgoing transitions",
        help: "behaviour after this state was never observed during training; extend \
               the training stimuli past the sink or accept resync-based recovery",
    };
    /// `MC007` — the netlist reaches a port valuation that matches no
    /// mined proposition, so the model has no symbol for the behaviour.
    pub const MC007: CodeInfo = CodeInfo {
        code: "MC007",
        severity: Severity::Warn,
        summary: "netlist reaches behaviour outside the mined proposition dictionary",
        help: "the estimator will resync when this behaviour occurs; retrain with \
               stimuli that cover it so the model gains a proposition for it",
    };
    /// `PD001` — a net leaves a gateable power domain and is consumed
    /// directly by logic in another domain with no isolation cell at the
    /// boundary.
    pub const PD001: CodeInfo = CodeInfo {
        code: "PD001",
        severity: Severity::Error,
        summary: "unisolated domain crossing: gateable-domain net read across the boundary",
        help: "insert an isolation cell (clamp0/clamp1) on the crossing net, in the \
               still-on domain, before the first consumer",
    };
    /// `PD002` — an isolation cell whose declared clamp polarity its gate
    /// kind can provably never produce.
    pub const PD002: CodeInfo = CodeInfo {
        code: "PD002",
        severity: Severity::Error,
        summary: "isolation cell clamp polarity contradicts its gate kind",
        help: "a clamp0 cell must be able to force 0 (AND/NOR), a clamp1 cell to force 1 \
               (OR/NAND); fix the polarity attribute or swap the gate",
    };
    /// `PD003` — an isolation mark that isolates nothing: the cell kind
    /// cannot clamp at all, or no gateable-domain net passes through it.
    pub const PD003: CodeInfo = CodeInfo {
        code: "PD003",
        severity: Severity::Warn,
        summary: "ambiguous isolation cell: kind cannot clamp, or no crossing passes through it",
        help: "use a two-input AND/OR/NAND/NOR (or mux) as the isolation cell and place it \
               on a net that actually leaves a gateable domain",
    };
    /// `PD004` — a gateable domain none of whose cells are reachable from
    /// any primary input.
    pub const PD004: CodeInfo = CodeInfo {
        code: "PD004",
        severity: Severity::Warn,
        summary: "gateable domain with no primary-input controllability of its activity",
        help: "wire a primary input (enable, clock gate or data) into the domain so its \
               power state can be driven and observed from outside",
    };
    /// `PD005` — always-on logic wedged between gateable domains.
    pub const PD005: CodeInfo = CodeInfo {
        code: "PD005",
        severity: Severity::Warn,
        summary: "always-on logic sandwiched between gateable domains",
        help: "the cell reads from and feeds only gateable domains yet can never power \
               down; move it into one of its neighbour domains",
    };
    /// `PD006` — the ternary off-domain proof found an X from a powered-off
    /// domain reaching logic in a still-on domain.
    pub const PD006: CodeInfo = CodeInfo {
        code: "PD006",
        severity: Severity::Error,
        summary: "isolation hole: powered-off domain's X reaches a still-on domain",
        help: "the attached path is a concrete X-propagation route; clamp it with an \
               isolation cell at the domain boundary",
    };
    /// `PD007` — the ternary off-domain proof found an X from a powered-off
    /// domain reaching a primary output.
    pub const PD007: CodeInfo = CodeInfo {
        code: "PD007",
        severity: Severity::Error,
        summary: "isolation hole: powered-off domain's X reaches a primary output",
        help: "outputs must stay defined while a domain is gated; clamp the crossing so \
               the off domain cannot corrupt the interface",
    };
    /// `PD008` — one informational summary per power-intent analysis run.
    pub const PD008: CodeInfo = CodeInfo {
        code: "PD008",
        severity: Severity::Info,
        summary: "power-intent summary (domains, crossings, isolation cells, proof verdicts)",
        help: "informational only; emitted whenever a netlist declares power intent",
    };

    /// Every code, in catalogue order.
    pub const ALL: [&CodeInfo; 46] = [
        &NL001, &NL002, &NL003, &NL004, &NL005, &NL006, &NL007, &NL008, &NL009, &NL010, &NL011,
        &TR001, &TR002, &TR003, &TR004, &TR005, &PS001, &PS002, &PS003, &PS004, &PS005, &PS006,
        &HM001, &HM002, &HM003, &HM004, &XA001, &XA002, &XA003, &XA004, &XA005, &MC001, &MC002,
        &MC003, &MC004, &MC005, &MC006, &MC007, &PD001, &PD002, &PD003, &PD004, &PD005, &PD006,
        &PD007, &PD008,
    ];
}

/// One finding of a static analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from the [`codes`] catalogue.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where in the artifact the problem sits (`net n5`, `state s3`,
    /// `instant 17`, `A row 2`, …).
    pub location: String,
    /// What is wrong, concretely.
    pub message: String,
    /// The typical fix.
    pub help: &'static str,
    /// Optional execution trace behind the finding — one human-readable
    /// step per cycle of a counterexample (empty for ordinary findings).
    /// Rendered as SARIF `codeFlows` by [`to_sarif`].
    pub steps: Vec<String>,
    /// Artifact paths beyond the primary one that the finding spans —
    /// non-empty only for cross-artifact diagnostics (XA/PD), where e.g. a
    /// model and a netlist are both implicated. Rendered as SARIF
    /// `relatedLocations` by [`to_sarif`].
    pub related: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic for a catalogued code; severity and help come
    /// from the catalogue entry.
    pub fn new(info: &CodeInfo, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code: info.code,
            severity: info.severity,
            location: location.into(),
            message: message.into(),
            help: info.help,
            steps: Vec::new(),
            related: Vec::new(),
        }
    }

    /// Attaches a per-cycle execution trace (builder style).
    #[must_use]
    pub fn with_steps(mut self, steps: Vec<String>) -> Self {
        self.steps = steps;
        self
    }

    /// Attaches the paths of further artifacts the finding spans
    /// (builder style).
    #[must_use]
    pub fn with_related(mut self, related: Vec<String>) -> Self {
        self.related = related;
        self
    }

    /// The diagnostic as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("code", JsonValue::from(self.code)),
            ("severity", JsonValue::from(self.severity.name())),
            ("location", JsonValue::from(self.location.as_str())),
            ("message", JsonValue::from(self.message.as_str())),
            ("help", JsonValue::from(self.help)),
        ];
        if !self.steps.is_empty() {
            fields.push((
                "steps",
                JsonValue::arr(self.steps.iter().map(|s| JsonValue::from(s.as_str()))),
            ));
        }
        if !self.related.is_empty() {
            fields.push((
                "related",
                JsonValue::arr(self.related.iter().map(|s| JsonValue::from(s.as_str()))),
            ));
        }
        JsonValue::obj(fields)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// A set of diagnostics about one artifact, renderable as text or JSON
/// (mirroring the pipeline's telemetry reports).
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    artifact: String,
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Starts an empty report about `artifact` (a human-readable name such
    /// as ``netlist `multsum```).
    pub fn new(artifact: impl Into<String>) -> Self {
        AnalysisReport {
            artifact: artifact.into(),
            diagnostics: Vec::new(),
        }
    }

    /// The analysed artifact's name.
    pub fn artifact(&self) -> &str {
        &self.artifact
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs all diagnostics of another report (its artifact name is
    /// dropped; locations identify the findings).
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All diagnostics, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Tags every diagnostic that does not yet name related artifacts with
    /// `related` — for callers (like the `psmlint` CLI) that know the
    /// on-disk paths a cross-artifact check spanned, so SARIF
    /// `relatedLocations` resolve to real files.
    pub fn tag_related(&mut self, related: &[String]) {
        for d in &mut self.diagnostics {
            if d.related.is_empty() {
                d.related = related.to_vec();
            }
        }
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when at least one [`Severity::Error`] diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// `true` when the report carries no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The report as readable text: a summary line, then one line per
    /// diagnostic with its help underneath.
    pub fn text(&self) -> String {
        let mut out = format!(
            "{}: {} error(s), {} warning(s), {} info(s)\n",
            self.artifact,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n  help: {}\n", d.help));
        }
        out
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("artifact", JsonValue::from(self.artifact.as_str())),
            ("errors", JsonValue::from(self.count(Severity::Error))),
            ("warnings", JsonValue::from(self.count(Severity::Warn))),
            ("infos", JsonValue::from(self.count(Severity::Info))),
            (
                "diagnostics",
                JsonValue::arr(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
        ])
    }
}

/// Whether validation failures abort the pipeline or merely annotate its
/// telemetry (the `PsmFlow` builder knob).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Strictness {
    /// Any [`Severity::Error`] diagnostic fails the run fast.
    Strict,
    /// Errors are demoted to report entries; the run continues.
    #[default]
    Lenient,
}

impl Strictness {
    /// `true` for [`Strictness::Strict`].
    pub fn is_strict(self) -> bool {
        matches!(self, Strictness::Strict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order_and_name() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
        assert_eq!(Severity::Warn.to_string(), "warning");
    }

    #[test]
    fn catalogue_codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for info in codes::ALL {
            assert!(seen.insert(info.code), "duplicate code {}", info.code);
            assert_eq!(info.code.len(), 5, "{} must be XXnnn", info.code);
            assert!(!info.summary.is_empty() && !info.help.is_empty());
        }
    }

    #[test]
    fn report_counts_render_and_json() {
        let mut r = AnalysisReport::new("unit artifact");
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(
            &codes::NL002,
            "net n7",
            "net n7 has 2 drivers",
        ));
        r.push(Diagnostic::new(
            &codes::TR004,
            "signal `en`",
            "stuck at 1'h1",
        ));
        assert!(r.has_errors() && !r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Info), 0);

        let text = r.text();
        assert!(text.contains("unit artifact"), "{text}");
        assert!(text.contains("error[NL002] net n7"), "{text}");
        assert!(text.contains("help:"), "{text}");

        let json = r.to_json();
        assert_eq!(json.u64_field("errors").unwrap(), 1);
        let diags = json.arr_field("diagnostics").unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].str_field("code").unwrap(), "NL002");
        // The rendered document survives a parse round-trip.
        let back = JsonValue::parse(&json.render()).unwrap();
        assert_eq!(back.arr_field("diagnostics").unwrap().len(), 2);
    }

    #[test]
    fn merge_concatenates_diagnostics() {
        let mut a = AnalysisReport::new("a");
        a.push(Diagnostic::new(&codes::PS005, "psm", "no initial state"));
        let mut b = AnalysisReport::new("b");
        b.push(Diagnostic::new(&codes::HM004, "pi", "no mass"));
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
        assert_eq!(a.artifact(), "a");
    }

    #[test]
    fn strictness_default_is_lenient() {
        assert!(!Strictness::default().is_strict());
        assert!(Strictness::Strict.is_strict());
    }
}
