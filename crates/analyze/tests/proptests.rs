//! Property-style tests of the ternary dataflow lattice and fixpoint,
//! driven by `psm-prng` so every run is reproducible from its seed.
//!
//! Three layers of properties:
//!
//! * the **lattice laws** of [`Ternary`] (exhaustive — the carrier has
//!   three points, so "property-style" here means checking every case);
//! * **transfer-function monotonicity and concrete agreement** for every
//!   gate kind, including randomly tabulated LUTs: widening an input to X
//!   can only widen the output, and an all-constant evaluation must match
//!   [`GateKind::eval`] exactly;
//! * **fixpoint termination and soundness** on randomized netlists: the
//!   abstract values [`analyze_dataflow`] computes must over-approximate
//!   every value an 8-cycle concrete simulation with random stimuli can
//!   produce.

use psm_analyze::{analyze_dataflow, eval_ternary, Ternary};
use psm_prng::Prng;
use psm_rtl::{levelize, GateKind, NetId, Netlist, NetlistBuilder, Word};
use psm_trace::Direction;

const ALL: [Ternary; 3] = [Ternary::Zero, Ternary::One, Ternary::X];

#[test]
fn lattice_laws_hold_exhaustively() {
    // The meet of three points, where every pairwise meet exists.
    let meet3 = |a: Ternary, b: Ternary, c: Ternary| a.meet(b).and_then(|ab| ab.meet(c));
    for a in ALL {
        // Idempotence and the identity of le with join.
        assert_eq!(a.join(a), a);
        assert_eq!(a.meet(a), Some(a));
        assert!(a.le(Ternary::X), "X is top");
        for b in ALL {
            // Commutativity.
            assert_eq!(a.join(b), b.join(a));
            assert_eq!(a.meet(b), b.meet(a));
            // Consistency: a ⊑ b exactly when join(a, b) = b.
            assert_eq!(a.le(b), a.join(b) == b);
            // The meet exists exactly for comparable pairs (the flat
            // lattice has no bottom), and is then the lower of the two.
            assert_eq!(a.meet(b).is_some(), a.le(b) || b.le(a));
            if let Some(m) = a.meet(b) {
                assert!(m.le(a) && m.le(b), "meet is a lower bound");
                // Absorption, where defined.
                assert_eq!(a.join(m), a);
            }
            assert_eq!(a.meet(a.join(b)), Some(a));
            for c in ALL {
                // Associativity (meet lifted over partiality).
                assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                assert_eq!(meet3(a, b, c), meet3(c, b, a));
            }
        }
    }
}

/// A random gate kind with its arity; LUT tables cover 1..=6 inputs.
fn random_kind(rng: &mut Prng) -> (GateKind, usize) {
    match rng.range_usize(0..9) {
        0 => (GateKind::Buf, 1),
        1 => (GateKind::Not, 1),
        2 => (GateKind::And2, 2),
        3 => (GateKind::Or2, 2),
        4 => (GateKind::Xor2, 2),
        5 => (GateKind::Nand2, 2),
        6 => (GateKind::Nor2, 2),
        7 => (GateKind::Mux2, 3),
        _ => {
            let n = rng.range_usize(1..7);
            let rows = 1u64 << n;
            let mask = if rows == 64 {
                u64::MAX
            } else {
                (1 << rows) - 1
            };
            (
                GateKind::Lut {
                    table: vec![rng.next_u64() & mask],
                },
                n,
            )
        }
    }
}

#[test]
fn transfer_functions_are_monotone() {
    let mut rng = Prng::seed_from_u64(0x7E57_DF01);
    for _ in 0..2000 {
        let (kind, arity) = random_kind(&mut rng);
        let u: Vec<Ternary> = (0..arity).map(|_| *rng.pick(&ALL)).collect();
        // Widen a random subset of the inputs: u ⊑ v pointwise.
        let v: Vec<Ternary> = u
            .iter()
            .map(|&t| if rng.chance(0.4) { Ternary::X } else { t })
            .collect();
        let fu = eval_ternary(&kind, &u);
        let fv = eval_ternary(&kind, &v);
        assert!(
            fu.le(fv),
            "{kind:?}: f({u:?}) = {fu:?} must be ⊑ f({v:?}) = {fv:?}"
        );
    }
}

#[test]
fn transfer_functions_agree_with_concrete_eval() {
    let mut rng = Prng::seed_from_u64(0x7E57_DF02);
    for _ in 0..2000 {
        let (kind, arity) = random_kind(&mut rng);
        let bits: Vec<bool> = (0..arity).map(|_| rng.chance(0.5)).collect();
        let abstr: Vec<Ternary> = bits.iter().map(|&b| Ternary::from_bool(b)).collect();
        assert_eq!(
            eval_ternary(&kind, &abstr),
            Ternary::from_bool(kind.eval(&bits)),
            "{kind:?} on {bits:?}"
        );
    }
}

/// Builds a random acyclic netlist: a few input words, optional 1-bit
/// registers (closed with random feedback at the end), and a soup of
/// random gates over the nets created so far.
fn random_netlist(rng: &mut Prng) -> Netlist {
    let mut b = NetlistBuilder::new("rand");
    let mut pool: Vec<NetId> = vec![b.const0(), b.const1()];
    for i in 0..rng.range_usize(1..4) {
        let width = rng.range_usize(1..5);
        let word = b.input(format!("i{i}"), width);
        for j in 0..width {
            pool.push(word.bit(j));
        }
    }
    let regs: Vec<_> = (0..rng.range_usize(0..3))
        .map(|i| b.register(format!("r{i}"), 1))
        .collect();
    for r in &regs {
        pool.push(r.q().bit(0));
    }
    for _ in 0..rng.range_usize(5..40) {
        let p0 = *rng.pick(&pool);
        let p1 = *rng.pick(&pool);
        let p2 = *rng.pick(&pool);
        let out = match rng.range_usize(0..9) {
            0 => b.not(p0),
            1 => b.and(p0, p1),
            2 => b.or(p0, p1),
            3 => b.xor(p0, p1),
            4 => b.nand(p0, p1),
            5 => b.nor(p0, p1),
            6 => b.mux(p0, p1, p2),
            7 => {
                let addr = Word::from_nets(vec![p0, p1]);
                let contents: Vec<u64> = (0..4).map(|_| rng.next_u64() & 1).collect();
                b.rom(&addr, &contents, 1).bit(0)
            }
            _ => b.mux(p2, p0, p1),
        };
        pool.push(out);
    }
    for r in &regs {
        let d = *rng.pick(&pool);
        b.connect_register(r, &Word::from_nets(vec![d]));
    }
    for i in 0..rng.range_usize(1..3) {
        let o = *rng.pick(&pool);
        b.output(format!("o{i}"), &Word::from_nets(vec![o]));
    }
    b.finish().expect("randomized netlist is well-formed")
}

#[test]
fn fixpoint_terminates_and_over_approximates_concrete_runs() {
    let mut rng = Prng::seed_from_u64(0x7E57_DF03);
    for _case in 0..40 {
        let netlist = random_netlist(&mut rng);
        // Termination: random netlists are combinationally acyclic by
        // construction, so analysis must succeed (the widening loop over
        // register feedback is finite on the three-point lattice).
        let df = analyze_dataflow(&netlist).expect("acyclic netlist analyzes");
        let order = levelize(&netlist).expect("acyclic netlist levelizes");

        // Soundness oracle: any concrete run from the reset state, under
        // any stimulus, must stay inside the abstract values.
        let n = netlist.net_count();
        let mut val = vec![false; n];
        val[Netlist::CONST1.index()] = true;
        let mut state: Vec<bool> = netlist.dffs().iter().map(|d| d.init).collect();
        for _cycle in 0..8 {
            for p in netlist.ports() {
                if p.direction() == Direction::Input {
                    for &nid in p.nets() {
                        val[nid.index()] = rng.chance(0.5);
                    }
                }
            }
            for (d, s) in netlist.dffs().iter().zip(&state) {
                val[d.q.index()] = *s;
            }
            for &gi in &order {
                let g = &netlist.gates()[gi];
                let ins: Vec<bool> = g.inputs.iter().map(|x| val[x.index()]).collect();
                val[g.output.index()] = g.kind.eval(&ins);
            }
            for (idx, &abstr) in df.values().iter().enumerate() {
                if let Some(c) = abstr.as_const() {
                    assert_eq!(
                        c, val[idx],
                        "net index {idx} proven {abstr:?} but concretely {}",
                        val[idx]
                    );
                }
            }
            state = netlist.dffs().iter().map(|d| val[d.d.index()]).collect();
        }
    }
}
