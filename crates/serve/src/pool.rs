//! The estimation worker pool: bounded queue, per-model batching,
//! explicit backpressure, graceful drain.
//!
//! Requests land in one bounded FIFO. A fixed set of workers pull from
//! it; each pull takes the oldest job **plus every other queued job for
//! the same model** (up to [`PoolConfig::max_batch`]), builds one
//! [`HmmSimulator`](psm_hmm::HmmSimulator) — the forward-cache setup the
//! batch amortises — and answers the whole batch through it. Because
//! responses carry the request id, batch reordering is invisible to
//! clients.
//!
//! A full queue never blocks and never grows: [`Pool::submit`] returns
//! [`SubmitOutcome::Busy`] and the daemon turns that into the wire-level
//! `BUSY` status — backpressure is explicit, not an OOM or a hang.
//!
//! [`Pool::drain`] is the graceful-shutdown half: refuse new work,
//! run the queue dry, join the workers. Every accepted request gets its
//! response before drain returns.

use crate::registry::ServedModel;
use psm_hmm::HmmOutcome;
use psm_telemetry::{Stage, Telemetry};
use psm_trace::FunctionalTrace;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Gauge: jobs waiting in the queue, sampled at every push and pull.
pub const GAUGE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Gauge: size of the batch a worker just pulled.
pub const GAUGE_BATCH_SIZE: &str = "serve.batch_size";
/// Counter: batches executed.
pub const COUNTER_BATCHES: &str = "serve.batches";
/// Counter: submissions rejected with `BUSY`.
pub const COUNTER_BUSY: &str = "serve.busy";

/// Worker-pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Queue slots; a submission beyond this is rejected `Busy`.
    pub queue_capacity: usize,
    /// Most jobs one worker answers through a single simulator.
    pub max_batch: usize,
    /// Fault-injection: how long a worker sleeps before executing a
    /// batch. Zero in production; tests raise it to hold jobs in the
    /// queue deterministically (forcing `BUSY`, observing batching, or
    /// racing a `RELOAD`/`SHUTDOWN` against in-flight work).
    pub stall: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
            max_batch: 8,
            stall: Duration::ZERO,
        }
    }
}

/// One queued estimation: the resolved model, the workload, and the
/// callback that delivers the outcome (for the daemon, a closure that
/// writes the response frame).
pub struct EstimateJob {
    /// Echoed in the response; also labels the telemetry span.
    pub request_id: u64,
    /// The model snapshot resolved at submission time. Holding the
    /// `Arc` here is what makes registry reloads atomic towards
    /// in-flight work.
    pub model: Arc<ServedModel>,
    /// The functional trace to estimate.
    pub trace: FunctionalTrace,
    /// Receives the outcome, exactly once.
    pub respond: Box<dyn FnOnce(HmmOutcome) + Send>,
}

impl std::fmt::Debug for EstimateJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimateJob")
            .field("request_id", &self.request_id)
            .field("model", &self.model.name)
            .field("cycles", &self.trace.len())
            .finish_non_exhaustive()
    }
}

/// What [`Pool::submit`] did with a job.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Queued; the callback will run.
    Accepted,
    /// Queue full; the job was dropped and its callback will not run.
    Busy(EstimateJob),
    /// The pool is draining for shutdown; the job was dropped.
    Draining(EstimateJob),
}

impl PartialEq<&str> for SubmitOutcome {
    fn eq(&self, other: &&str) -> bool {
        matches!(
            (self, *other),
            (SubmitOutcome::Accepted, "accepted")
                | (SubmitOutcome::Busy(_), "busy")
                | (SubmitOutcome::Draining(_), "draining")
        )
    }
}

struct PoolState {
    queue: VecDeque<EstimateJob>,
    busy_workers: usize,
    draining: bool,
    stop: bool,
}

struct Shared {
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    work: Condvar,
    idle: Condvar,
    telemetry: Arc<Telemetry>,
}

/// The fixed worker pool. See the [module docs](self).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.shared.cfg.workers)
            .field("queue_capacity", &self.shared.cfg.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Starts the workers.
    pub fn new(cfg: PoolConfig, telemetry: Arc<Telemetry>) -> Pool {
        let cfg = PoolConfig {
            workers: cfg.workers.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            stall: cfg.stall,
        };
        let worker_count = cfg.workers;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                busy_workers: 0,
                draining: false,
                stop: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            telemetry,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("psmd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Offers a job to the queue; never blocks.
    ///
    /// `Busy`/`Draining` hand the job back so the caller can answer the
    /// client without running the estimate.
    pub fn submit(&self, job: EstimateJob) -> SubmitOutcome {
        let mut st = self.shared.state.lock().expect("pool lock poisoned");
        if st.draining {
            return SubmitOutcome::Draining(job);
        }
        if st.queue.len() >= self.shared.cfg.queue_capacity {
            self.shared.telemetry.add_named(COUNTER_BUSY, 1);
            return SubmitOutcome::Busy(job);
        }
        st.queue.push_back(job);
        self.shared
            .telemetry
            .set_gauge(GAUGE_QUEUE_DEPTH, st.queue.len() as u64);
        drop(st);
        self.shared.work.notify_one();
        SubmitOutcome::Accepted
    }

    /// Jobs currently waiting (not counting ones a worker already
    /// pulled). Test/introspection aid.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .queue
            .len()
    }

    /// Refuses new work, runs the queue dry, joins the workers.
    ///
    /// Every job accepted before the call gets its callback before this
    /// returns. Idempotent.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().expect("pool lock poisoned");
        st.draining = true;
        while !(st.queue.is_empty() && st.busy_workers == 0) {
            st = self.shared.idle.wait(st).expect("pool lock poisoned");
        }
        st.stop = true;
        drop(st);
        self.shared.work.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("pool lock poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.stop {
                    return;
                }
                st = shared.work.wait(st).expect("pool lock poisoned");
            }
            let first = st.queue.pop_front().expect("queue non-empty");
            let model = first.model.clone();
            let mut batch = vec![first];
            // Steal every queued job for the same model (same Arc — a
            // reload makes new Arcs, so jobs resolved against different
            // snapshots never share a simulator).
            let mut i = 0;
            while batch.len() < shared.cfg.max_batch && i < st.queue.len() {
                if Arc::ptr_eq(&st.queue[i].model, &model) {
                    batch.push(st.queue.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
            st.busy_workers += 1;
            shared
                .telemetry
                .set_gauge(GAUGE_QUEUE_DEPTH, st.queue.len() as u64);
            batch
        };

        shared
            .telemetry
            .set_gauge(GAUGE_BATCH_SIZE, batch.len() as u64);
        shared.telemetry.add_named(COUNTER_BATCHES, 1);
        if !shared.cfg.stall.is_zero() {
            std::thread::sleep(shared.cfg.stall);
        }

        let model = batch[0].model.clone();
        let sim = model.simulator();
        for job in batch {
            let outcome = shared.telemetry.time(
                Stage::Serve,
                format!(
                    "estimate {}@{} req {}",
                    model.name, model.version, job.request_id
                ),
                || job.model.estimate_with(&sim, &job.trace),
            );
            (job.respond)(outcome);
        }
        drop(sim);

        let mut st = shared.state.lock().expect("pool lock poisoned");
        st.busy_workers -= 1;
        if st.queue.is_empty() && st.busy_workers == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::test_support::{toy_model_json, toy_trace};
    use std::sync::mpsc;
    use std::time::Instant;

    fn toy_model() -> Arc<ServedModel> {
        let dir = std::env::temp_dir().join(format!(
            "psm-serve-pool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("toy@1.json"),
            psm_persist::encode_artifact(&toy_model_json()),
        )
        .unwrap();
        let model = Registry::open(&dir)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        model
    }

    fn job(id: u64, model: &Arc<ServedModel>, tx: &mpsc::Sender<(u64, HmmOutcome)>) -> EstimateJob {
        let tx = tx.clone();
        EstimateJob {
            request_id: id,
            model: model.clone(),
            trace: toy_trace(),
            respond: Box::new(move |out| {
                let _ = tx.send((id, out));
            }),
        }
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < deadline, "condition not reached in time");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn batches_answer_every_job_identically() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 8,
                stall: Duration::ZERO,
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let expected = model.estimate(&toy_trace());
        let (tx, rx) = mpsc::channel();
        for id in 0..16 {
            assert_eq!(pool.submit(job(id, &model, &tx)), "accepted");
        }
        let mut got = Vec::new();
        for _ in 0..16 {
            got.push(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got.len(), 16);
        for (id, out) in got {
            assert_eq!(out, expected, "request {id} diverged");
        }
        pool.drain();
        let report = telemetry.report();
        assert!(report.named_counter(COUNTER_BATCHES) >= 1);
        assert_eq!(report.named_counter(COUNTER_BUSY), 0);
    }

    #[test]
    fn full_queue_is_busy_not_a_hang() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                stall: Duration::from_millis(400),
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let (tx, rx) = mpsc::channel();
        // First job: wait until the (stalled) worker has pulled it, so
        // the queue state below is deterministic.
        assert_eq!(pool.submit(job(0, &model, &tx)), "accepted");
        wait_until(Duration::from_secs(10), || pool.queue_depth() == 0);
        // Fill both queue slots, then overflow.
        assert_eq!(pool.submit(job(1, &model, &tx)), "accepted");
        assert_eq!(pool.submit(job(2, &model, &tx)), "accepted");
        let overflow = pool.submit(job(3, &model, &tx));
        let SubmitOutcome::Busy(rejected) = overflow else {
            panic!("expected Busy, got {overflow:?}");
        };
        assert_eq!(rejected.request_id, 3);
        // The three accepted jobs all complete; the rejected one never
        // responds.
        let mut ids: Vec<u64> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(30)).unwrap().0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(rx.try_recv().is_err());
        assert_eq!(telemetry.report().named_counter(COUNTER_BUSY), 1);
        pool.drain();
    }

    #[test]
    fn stalled_queue_forms_batches() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_capacity: 32,
                max_batch: 8,
                stall: Duration::from_millis(200),
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let (tx, rx) = mpsc::channel();
        assert_eq!(pool.submit(job(0, &model, &tx)), "accepted");
        wait_until(Duration::from_secs(10), || pool.queue_depth() == 0);
        // These four queue up behind the stalled worker and come out as
        // one batch through one simulator.
        for id in 1..5 {
            assert_eq!(pool.submit(job(id, &model, &tx)), "accepted");
        }
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        }
        pool.drain();
        let report = telemetry.report();
        assert_eq!(report.named_counter(COUNTER_BATCHES), 2);
        assert_eq!(report.gauge(GAUGE_BATCH_SIZE).unwrap().max, 4);
    }

    #[test]
    fn drain_answers_accepted_work_then_refuses_more() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 4,
                stall: Duration::from_millis(100),
            },
            telemetry,
        );
        let model = toy_model();
        let (tx, rx) = mpsc::channel();
        for id in 0..6 {
            assert_eq!(pool.submit(job(id, &model, &tx)), "accepted");
        }
        pool.drain();
        // All six responses are already in the channel once drain returns.
        let mut ids: Vec<u64> = (0..6).map(|_| rx.try_recv().unwrap().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(pool.submit(job(9, &model, &tx)), "draining");
        pool.drain(); // idempotent
    }
}
