//! The estimation worker pool: bounded queue, per-model batching,
//! explicit backpressure, graceful drain.
//!
//! Requests land in one bounded FIFO. A fixed set of workers pull from
//! it; each pull takes the oldest job **plus every other queued job for
//! the same model** (up to [`PoolConfig::max_batch`]), builds one
//! engine context ([`ServedModel::batch_runner`] — for the interpreted
//! engine that is the forward-cache setup the batch amortises; the
//! compiled engine's flat tables cost nothing to set up) — and answers
//! the whole batch through it. Because
//! responses carry the request id, batch reordering is invisible to
//! clients.
//!
//! A full queue never blocks and never grows: [`Pool::submit`] returns
//! [`SubmitOutcome::Busy`] and the daemon turns that into the wire-level
//! `BUSY` status — backpressure is explicit, not an OOM or a hang.
//!
//! [`Pool::drain`] is the graceful-shutdown half: refuse new work,
//! run the queue dry, join the workers. Every accepted request gets its
//! response before drain returns.
//!
//! # Streams
//!
//! Alongside one-shot estimates the queue carries *session turns*. A
//! [`SessionEntry`] wraps one [`StreamSession`] plus its FIFO of pending
//! chunk/close jobs; [`Pool::submit_stream`] enqueues a turn only when
//! the session is not already scheduled, so each session occupies at
//! most one queue slot and is processed by at most one worker at a time
//! — per-session ordering with cross-session parallelism. A worker
//! taking a turn lifts the session out of the entry, answers pending
//! jobs one at a time (re-locking between jobs, so the I/O loop never
//! blocks behind an in-flight chunk), and puts it back. Because pending
//! jobs are only reachable through scheduled turns, [`Pool::drain`]'s
//! queue-dry wait already covers sessions.

use crate::registry::ServedModel;
use crate::session::{ChunkOutcome, StreamSession};
use psm_hmm::HmmOutcome;
use psm_telemetry::{Stage, Telemetry};
use psm_trace::FunctionalTrace;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Gauge: jobs waiting in the queue, sampled at every push and pull.
pub const GAUGE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Gauge: size of the batch a worker just pulled.
pub const GAUGE_BATCH_SIZE: &str = "serve.batch_size";
/// Counter: batches executed.
pub const COUNTER_BATCHES: &str = "serve.batches";
/// Counter: submissions rejected with `BUSY`.
pub const COUNTER_BUSY: &str = "serve.busy";
/// Counter: stream chunks estimated.
pub const COUNTER_STREAM_CHUNKS: &str = "serve.stream_chunks";

/// Worker-pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Queue slots; a submission beyond this is rejected `Busy`.
    pub queue_capacity: usize,
    /// Most jobs one worker answers through a single engine context.
    pub max_batch: usize,
    /// Fault-injection: how long a worker sleeps before executing a
    /// batch. Zero in production; tests raise it to hold jobs in the
    /// queue deterministically (forcing `BUSY`, observing batching, or
    /// racing a `RELOAD`/`SHUTDOWN` against in-flight work).
    pub stall: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
            max_batch: 8,
            stall: Duration::ZERO,
        }
    }
}

/// One queued estimation: the resolved model, the workload, and the
/// callback that delivers the outcome (for the daemon, a closure that
/// writes the response frame).
pub struct EstimateJob {
    /// Echoed in the response; also labels the telemetry span.
    pub request_id: u64,
    /// The model snapshot resolved at submission time. Holding the
    /// `Arc` here is what makes registry reloads atomic towards
    /// in-flight work.
    pub model: Arc<ServedModel>,
    /// The functional trace to estimate.
    pub trace: FunctionalTrace,
    /// Receives the outcome, exactly once.
    pub respond: Box<dyn FnOnce(HmmOutcome) + Send>,
}

impl std::fmt::Debug for EstimateJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimateJob")
            .field("request_id", &self.request_id)
            .field("model", &self.model.name)
            .field("cycles", &self.trace.len())
            .finish_non_exhaustive()
    }
}

/// What [`Pool::submit`] did with a job.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Queued; the callback will run.
    Accepted,
    /// Queue full; the job was dropped and its callback will not run.
    Busy(EstimateJob),
    /// The pool is draining for shutdown; the job was dropped.
    Draining(EstimateJob),
}

impl PartialEq<&str> for SubmitOutcome {
    fn eq(&self, other: &&str) -> bool {
        matches!(
            (self, *other),
            (SubmitOutcome::Accepted, "accepted")
                | (SubmitOutcome::Busy(_), "busy")
                | (SubmitOutcome::Draining(_), "draining")
        )
    }
}

/// One unit of stream work queued on a session.
pub struct StreamJob {
    /// Echoed in the response frame.
    pub request_id: u64,
    /// Chunk to estimate, or a close.
    pub kind: StreamWork,
    /// Receives the reply, exactly once.
    pub respond: Box<dyn FnOnce(StreamReply) + Send>,
}

impl std::fmt::Debug for StreamJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamJob")
            .field("request_id", &self.request_id)
            .field(
                "kind",
                &match &self.kind {
                    StreamWork::Chunk(c) => format!("chunk({} cycles)", c.len()),
                    StreamWork::Close => "close".to_owned(),
                },
            )
            .finish_non_exhaustive()
    }
}

/// The payload of a [`StreamJob`].
#[derive(Debug)]
pub enum StreamWork {
    /// Estimate the next chunk of the stream.
    Chunk(FunctionalTrace),
    /// Finish the stream and report its totals.
    Close,
}

/// What a worker sends back for one [`StreamJob`].
#[derive(Debug)]
pub enum StreamReply {
    /// The chunk's estimate plus cumulative counters.
    Chunk(ChunkOutcome),
    /// The stream's final totals.
    Closed(StreamTotals),
    /// The chunk could not be estimated (e.g. interface drift); the
    /// stream stays open.
    Failed(String),
}

/// Cumulative counters of a finished stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTotals {
    /// Total instants estimated.
    pub instants: usize,
    /// Wrong-state predictions across the stream.
    pub wrong_state_predictions: usize,
    /// Unknown instants across the stream.
    pub unknown_instants: usize,
}

/// What [`Pool::submit_stream`] did with a job.
#[derive(Debug)]
pub enum StreamSubmit {
    /// Queued on the session; the callback will run.
    Accepted,
    /// The session's pending queue is full; the job was handed back.
    Busy(StreamJob),
    /// The pool is draining; the job was handed back.
    Draining(StreamJob),
}

impl PartialEq<&str> for StreamSubmit {
    fn eq(&self, other: &&str) -> bool {
        matches!(
            (self, *other),
            (StreamSubmit::Accepted, "accepted")
                | (StreamSubmit::Busy(_), "busy")
                | (StreamSubmit::Draining(_), "draining")
        )
    }
}

/// One live stream registered with the pool: the session plus its FIFO
/// of pending jobs. Connections hold this in an `Arc`; the queue holds
/// a clone of the same `Arc` while a turn is scheduled.
pub struct SessionEntry {
    model: Arc<ServedModel>,
    inner: Mutex<SessionInner>,
}

impl std::fmt::Debug for SessionEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionEntry")
            .field("model", &self.model.name)
            .finish_non_exhaustive()
    }
}

impl SessionEntry {
    /// The model the stream is pinned to.
    pub fn model(&self) -> &Arc<ServedModel> {
        &self.model
    }
}

struct SessionInner {
    /// `None` while a worker has lifted the session out for a turn.
    session: Option<StreamSession>,
    pending: VecDeque<StreamJob>,
    scheduled: bool,
}

enum Work {
    Batch(EstimateJob),
    Session(Arc<SessionEntry>),
}

struct PoolState {
    queue: VecDeque<Work>,
    busy_workers: usize,
    draining: bool,
    stop: bool,
}

struct Shared {
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    work: Condvar,
    idle: Condvar,
    telemetry: Arc<Telemetry>,
}

/// The fixed worker pool. See the [module docs](self).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.shared.cfg.workers)
            .field("queue_capacity", &self.shared.cfg.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Starts the workers.
    pub fn new(cfg: PoolConfig, telemetry: Arc<Telemetry>) -> Pool {
        let cfg = PoolConfig {
            workers: cfg.workers.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            stall: cfg.stall,
        };
        let worker_count = cfg.workers;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                busy_workers: 0,
                draining: false,
                stop: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            telemetry,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("psmd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Offers a job to the queue; never blocks.
    ///
    /// `Busy`/`Draining` hand the job back so the caller can answer the
    /// client without running the estimate.
    pub fn submit(&self, job: EstimateJob) -> SubmitOutcome {
        let mut st = self.shared.state.lock().expect("pool lock poisoned");
        if st.draining {
            return SubmitOutcome::Draining(job);
        }
        if st.queue.len() >= self.shared.cfg.queue_capacity {
            self.shared.telemetry.add_named(COUNTER_BUSY, 1);
            return SubmitOutcome::Busy(job);
        }
        st.queue.push_back(Work::Batch(job));
        self.shared
            .telemetry
            .set_gauge(GAUGE_QUEUE_DEPTH, st.queue.len() as u64);
        drop(st);
        self.shared.work.notify_one();
        SubmitOutcome::Accepted
    }

    /// Opens a streaming session pinned to `model`, or `None` when the
    /// pool is draining. Opening is cheap (one forward-state allocation)
    /// and happens inline — no worker turn is consumed.
    pub fn open_session(&self, model: Arc<ServedModel>) -> Option<Arc<SessionEntry>> {
        let st = self.shared.state.lock().expect("pool lock poisoned");
        if st.draining {
            return None;
        }
        let session = StreamSession::open(model.clone());
        Some(Arc::new(SessionEntry {
            model,
            inner: Mutex::new(SessionInner {
                session: Some(session),
                pending: VecDeque::new(),
                scheduled: false,
            }),
        }))
    }

    /// Queues one chunk/close on a session; never blocks.
    ///
    /// A session turn is enqueued only when the session is not already
    /// scheduled, so per-session jobs run in submission order while
    /// different sessions estimate in parallel. A chunk beyond the
    /// session's pending capacity is rejected `Busy`; a close is always
    /// accepted unless the pool is draining.
    pub fn submit_stream(&self, entry: &Arc<SessionEntry>, job: StreamJob) -> StreamSubmit {
        let mut st = self.shared.state.lock().expect("pool lock poisoned");
        if st.draining {
            return StreamSubmit::Draining(job);
        }
        let mut inner = entry.inner.lock().expect("session lock poisoned");
        if matches!(job.kind, StreamWork::Chunk(_))
            && inner.pending.len() >= self.shared.cfg.queue_capacity
        {
            self.shared.telemetry.add_named(COUNTER_BUSY, 1);
            return StreamSubmit::Busy(job);
        }
        inner.pending.push_back(job);
        if !inner.scheduled {
            inner.scheduled = true;
            st.queue.push_back(Work::Session(entry.clone()));
        }
        drop(inner);
        self.shared
            .telemetry
            .set_gauge(GAUGE_QUEUE_DEPTH, st.queue.len() as u64);
        drop(st);
        self.shared.work.notify_one();
        StreamSubmit::Accepted
    }

    /// Jobs currently waiting (not counting ones a worker already
    /// pulled). Test/introspection aid.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .queue
            .len()
    }

    /// Refuses new work, runs the queue dry, joins the workers.
    ///
    /// Every job accepted before the call gets its callback before this
    /// returns. Idempotent.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().expect("pool lock poisoned");
        st.draining = true;
        while !(st.queue.is_empty() && st.busy_workers == 0) {
            st = self.shared.idle.wait(st).expect("pool lock poisoned");
        }
        st.stop = true;
        drop(st);
        self.shared.work.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("pool lock poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.stop {
                    return;
                }
                st = shared.work.wait(st).expect("pool lock poisoned");
            }
            let first = st.queue.pop_front().expect("queue non-empty");
            let work = match first {
                Work::Session(entry) => Pulled::Session(entry),
                Work::Batch(first) => {
                    let model = first.model.clone();
                    let mut batch = vec![first];
                    // Steal every queued estimate for the same model
                    // (same Arc — a reload makes new Arcs, so jobs
                    // resolved against different snapshots never share
                    // a simulator). Session turns are never stolen.
                    let mut i = 0;
                    while batch.len() < shared.cfg.max_batch && i < st.queue.len() {
                        let steal = match &st.queue[i] {
                            Work::Batch(job) => Arc::ptr_eq(&job.model, &model),
                            Work::Session(_) => false,
                        };
                        if steal {
                            match st.queue.remove(i).expect("index in range") {
                                Work::Batch(job) => batch.push(job),
                                Work::Session(_) => unreachable!("steal checked the variant"),
                            }
                        } else {
                            i += 1;
                        }
                    }
                    Pulled::Batch(batch)
                }
            };
            st.busy_workers += 1;
            shared
                .telemetry
                .set_gauge(GAUGE_QUEUE_DEPTH, st.queue.len() as u64);
            work
        };

        if !shared.cfg.stall.is_zero() {
            std::thread::sleep(shared.cfg.stall);
        }

        match work {
            Pulled::Batch(batch) => run_batch(shared, batch),
            Pulled::Session(entry) => run_session_turn(shared, &entry),
        }

        let mut st = shared.state.lock().expect("pool lock poisoned");
        st.busy_workers -= 1;
        if st.queue.is_empty() && st.busy_workers == 0 {
            shared.idle.notify_all();
        }
    }
}

enum Pulled {
    Batch(Vec<EstimateJob>),
    Session(Arc<SessionEntry>),
}

fn run_batch(shared: &Shared, batch: Vec<EstimateJob>) {
    shared
        .telemetry
        .set_gauge(GAUGE_BATCH_SIZE, batch.len() as u64);
    shared.telemetry.add_named(COUNTER_BATCHES, 1);

    let model = batch[0].model.clone();
    let runner = model.batch_runner();
    for job in batch {
        let outcome = shared.telemetry.time(
            Stage::Serve,
            format!(
                "estimate {}@{} req {}",
                model.name, model.version, job.request_id
            ),
            || job.model.estimate_with_runner(&runner, &job.trace),
        );
        (job.respond)(outcome);
    }
}

/// Answers one session's pending jobs in order. The session is lifted
/// out of the entry for the duration, so [`Pool::submit_stream`] keeps
/// appending without blocking behind an in-flight chunk; the
/// `scheduled` flag (flipped only under the entry lock, with the
/// pending queue known empty) guarantees at most one concurrent turn
/// per session.
fn run_session_turn(shared: &Shared, entry: &Arc<SessionEntry>) {
    let mut session = {
        let mut inner = entry.inner.lock().expect("session lock poisoned");
        match inner.session.take() {
            Some(s) => s,
            None => {
                // Unreachable by construction; fail safe by yielding
                // the turn rather than poisoning the worker.
                inner.scheduled = false;
                return;
            }
        }
    };
    loop {
        let job = {
            let mut inner = entry.inner.lock().expect("session lock poisoned");
            match inner.pending.pop_front() {
                Some(job) => job,
                None => {
                    inner.session = Some(session);
                    inner.scheduled = false;
                    return;
                }
            }
        };
        match job.kind {
            StreamWork::Chunk(chunk) => {
                let model = session.model().clone();
                let reply = shared.telemetry.time(
                    Stage::Serve,
                    format!(
                        "stream chunk {}@{} req {}",
                        model.name, model.version, job.request_id
                    ),
                    || match session.feed(&chunk) {
                        Ok(out) => StreamReply::Chunk(out),
                        Err(e) => StreamReply::Failed(e.to_string()),
                    },
                );
                shared.telemetry.add_named(COUNTER_STREAM_CHUNKS, 1);
                (job.respond)(reply);
            }
            StreamWork::Close => {
                (job.respond)(StreamReply::Closed(StreamTotals {
                    instants: session.instants(),
                    wrong_state_predictions: session.wrong_state_predictions(),
                    unknown_instants: session.unknown_instants(),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::test_support::{toy_model_json, toy_trace};
    use std::sync::mpsc;
    use std::time::Instant;

    fn toy_model() -> Arc<ServedModel> {
        let dir = std::env::temp_dir().join(format!(
            "psm-serve-pool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("toy@1.json"),
            psm_persist::encode_artifact(&toy_model_json()),
        )
        .unwrap();
        let model = Registry::open(&dir)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        model
    }

    fn job(id: u64, model: &Arc<ServedModel>, tx: &mpsc::Sender<(u64, HmmOutcome)>) -> EstimateJob {
        let tx = tx.clone();
        EstimateJob {
            request_id: id,
            model: model.clone(),
            trace: toy_trace(),
            respond: Box::new(move |out| {
                let _ = tx.send((id, out));
            }),
        }
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < deadline, "condition not reached in time");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn batches_answer_every_job_identically() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 8,
                stall: Duration::ZERO,
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let expected = model.estimate(&toy_trace());
        let (tx, rx) = mpsc::channel();
        for id in 0..16 {
            assert_eq!(pool.submit(job(id, &model, &tx)), "accepted");
        }
        let mut got = Vec::new();
        for _ in 0..16 {
            got.push(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got.len(), 16);
        for (id, out) in got {
            assert_eq!(out, expected, "request {id} diverged");
        }
        pool.drain();
        let report = telemetry.report();
        assert!(report.named_counter(COUNTER_BATCHES) >= 1);
        assert_eq!(report.named_counter(COUNTER_BUSY), 0);
    }

    #[test]
    fn full_queue_is_busy_not_a_hang() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                stall: Duration::from_millis(400),
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let (tx, rx) = mpsc::channel();
        // First job: wait until the (stalled) worker has pulled it, so
        // the queue state below is deterministic.
        assert_eq!(pool.submit(job(0, &model, &tx)), "accepted");
        wait_until(Duration::from_secs(10), || pool.queue_depth() == 0);
        // Fill both queue slots, then overflow.
        assert_eq!(pool.submit(job(1, &model, &tx)), "accepted");
        assert_eq!(pool.submit(job(2, &model, &tx)), "accepted");
        let overflow = pool.submit(job(3, &model, &tx));
        let SubmitOutcome::Busy(rejected) = overflow else {
            panic!("expected Busy, got {overflow:?}");
        };
        assert_eq!(rejected.request_id, 3);
        // The three accepted jobs all complete; the rejected one never
        // responds.
        let mut ids: Vec<u64> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(30)).unwrap().0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(rx.try_recv().is_err());
        assert_eq!(telemetry.report().named_counter(COUNTER_BUSY), 1);
        pool.drain();
    }

    #[test]
    fn stalled_queue_forms_batches() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_capacity: 32,
                max_batch: 8,
                stall: Duration::from_millis(200),
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let (tx, rx) = mpsc::channel();
        assert_eq!(pool.submit(job(0, &model, &tx)), "accepted");
        wait_until(Duration::from_secs(10), || pool.queue_depth() == 0);
        // These four queue up behind the stalled worker and come out as
        // one batch through one simulator.
        for id in 1..5 {
            assert_eq!(pool.submit(job(id, &model, &tx)), "accepted");
        }
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        }
        pool.drain();
        let report = telemetry.report();
        assert_eq!(report.named_counter(COUNTER_BATCHES), 2);
        assert_eq!(report.gauge(GAUGE_BATCH_SIZE).unwrap().max, 4);
    }

    #[test]
    fn drain_answers_accepted_work_then_refuses_more() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 4,
                stall: Duration::from_millis(100),
            },
            telemetry,
        );
        let model = toy_model();
        let (tx, rx) = mpsc::channel();
        for id in 0..6 {
            assert_eq!(pool.submit(job(id, &model, &tx)), "accepted");
        }
        pool.drain();
        // All six responses are already in the channel once drain returns.
        let mut ids: Vec<u64> = (0..6).map(|_| rx.try_recv().unwrap().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(pool.submit(job(9, &model, &tx)), "draining");
        pool.drain(); // idempotent
    }

    fn chunk_job(
        id: u64,
        chunk: FunctionalTrace,
        tx: &mpsc::Sender<(u64, StreamReply)>,
    ) -> StreamJob {
        let tx = tx.clone();
        StreamJob {
            request_id: id,
            kind: StreamWork::Chunk(chunk),
            respond: Box::new(move |reply| {
                let _ = tx.send((id, reply));
            }),
        }
    }

    #[test]
    fn stream_chunks_run_in_order_and_match_one_shot() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 8,
                stall: Duration::ZERO,
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let expected = model.estimate(&toy_trace());
        let entry = pool.open_session(model.clone()).unwrap();
        let (tx, rx) = mpsc::channel();
        let chunks = toy_trace().split_windows(2);
        let n = chunks.len() as u64;
        for (i, chunk) in chunks.into_iter().enumerate() {
            assert_eq!(
                pool.submit_stream(&entry, chunk_job(i as u64, chunk, &tx)),
                "accepted"
            );
        }
        let close_tx = tx.clone();
        assert_eq!(
            pool.submit_stream(
                &entry,
                StreamJob {
                    request_id: n,
                    kind: StreamWork::Close,
                    respond: Box::new(move |reply| {
                        let _ = close_tx.send((n, reply));
                    }),
                },
            ),
            "accepted"
        );
        let mut streamed: Vec<f64> = Vec::new();
        for want in 0..n {
            let (id, reply) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(id, want, "per-session replies arrive in order");
            match reply {
                StreamReply::Chunk(out) => streamed.extend(out.estimate.iter()),
                other => panic!("expected chunk reply, got {other:?}"),
            }
        }
        let (_, last) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let StreamReply::Closed(totals) = last else {
            panic!("expected close reply, got {last:?}");
        };
        assert_eq!(totals.instants, expected.estimate.len());
        assert_eq!(
            totals.wrong_state_predictions,
            expected.wrong_state_predictions
        );
        assert_eq!(totals.unknown_instants, expected.unknown_instants);
        assert_eq!(streamed.len(), expected.estimate.len());
        for (s, o) in streamed.iter().zip(expected.estimate.iter()) {
            assert_eq!(s.to_bits(), o.to_bits());
        }
        assert!(telemetry.report().named_counter(COUNTER_STREAM_CHUNKS) >= 1);
        pool.drain();
    }

    #[test]
    fn drain_refuses_new_stream_work_but_answers_pending() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_capacity: 8,
                max_batch: 4,
                stall: Duration::from_millis(100),
            },
            telemetry,
        );
        let model = toy_model();
        let entry = pool.open_session(model.clone()).unwrap();
        let (tx, rx) = mpsc::channel();
        for id in 0..3 {
            assert_eq!(
                pool.submit_stream(&entry, chunk_job(id, toy_trace(), &tx)),
                "accepted"
            );
        }
        pool.drain();
        // All three pending chunks were answered before drain returned…
        let mut ids: Vec<u64> = (0..3).map(|_| rx.try_recv().unwrap().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        // …and both new chunks and new sessions are now refused.
        assert_eq!(
            pool.submit_stream(&entry, chunk_job(9, toy_trace(), &tx)),
            "draining"
        );
        assert!(pool.open_session(model).is_none());
    }

    #[test]
    fn per_session_pending_overflow_is_busy() {
        let telemetry = Arc::new(Telemetry::new());
        let pool = Pool::new(
            PoolConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                stall: Duration::from_millis(300),
            },
            telemetry.clone(),
        );
        let model = toy_model();
        let (btx, _brx) = mpsc::channel();
        // Park the single worker on a slow one-shot batch…
        assert_eq!(pool.submit(job(0, &model, &btx)), "accepted");
        wait_until(Duration::from_secs(10), || pool.queue_depth() == 0);
        // …then overfill one session's pending queue.
        let entry = pool.open_session(model).unwrap();
        let (tx, rx) = mpsc::channel();
        assert_eq!(
            pool.submit_stream(&entry, chunk_job(1, toy_trace(), &tx)),
            "accepted"
        );
        assert_eq!(
            pool.submit_stream(&entry, chunk_job(2, toy_trace(), &tx)),
            "accepted"
        );
        let overflow = pool.submit_stream(&entry, chunk_job(3, toy_trace(), &tx));
        let StreamSubmit::Busy(rejected) = overflow else {
            panic!("expected Busy, got {overflow:?}");
        };
        assert_eq!(rejected.request_id, 3);
        // A close still lands even with pending at capacity.
        let close_tx = tx.clone();
        assert_eq!(
            pool.submit_stream(
                &entry,
                StreamJob {
                    request_id: 4,
                    kind: StreamWork::Close,
                    respond: Box::new(move |r| {
                        let _ = close_tx.send((4, r));
                    }),
                },
            ),
            "accepted"
        );
        let ids: Vec<u64> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(30)).unwrap().0)
            .collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert_eq!(telemetry.report().named_counter(COUNTER_BUSY), 1);
        pool.drain();
    }
}
