//! Streaming estimation sessions: resumable per-stream forward state.
//!
//! A [`StreamSession`] is the server-side object behind one `STREAM_OPEN`.
//! It pins an `Arc<ServedModel>` (so registry reloads never invalidate a
//! live stream) and carries the forward state of the model's
//! [`Engine`] — the interpreted [`ForwardState`] or the allocation-free
//! compiled [`CompiledForwardState`] — plus the last cycle of the
//! previous chunk, which stitches the input-Hamming series across
//! chunk boundaries. Feeding chunks c₁, …, cₖ produces, instant for
//! instant, the *bit-identical* estimate of a one-shot run over the
//! concatenated trace c₁‖…‖cₖ — the session is the one-shot path with a
//! pause button, not an approximation of it.

use crate::registry::{Engine, ServedModel};
use psm_compile::CompiledForwardState;
use psm_hmm::ForwardState;
use psm_trace::{Bits, FunctionalTrace, PowerTrace, TraceError};
use std::sync::Arc;

/// The incremental result of feeding one chunk into a session.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkOutcome {
    /// Per-instant power estimate (mW) for *this chunk only*.
    pub estimate: PowerTrace,
    /// Cumulative wrong-state predictions across the whole stream so far.
    pub wrong_state_predictions: usize,
    /// Cumulative unknown instants across the whole stream so far.
    pub unknown_instants: usize,
    /// Total instants estimated across the whole stream so far.
    pub instants: usize,
}

/// The resumable forward state of one stream, matching the pinned
/// model's [`Engine`]. Both variants produce bit-identical estimates;
/// the compiled one additionally never allocates per chunk.
#[derive(Debug)]
enum SessionState {
    Interpreted(ForwardState),
    Compiled(CompiledForwardState),
}

/// One live estimation stream over a pinned model.
#[derive(Debug)]
pub struct StreamSession {
    model: Arc<ServedModel>,
    state: SessionState,
    prev_cycle: Option<Vec<Bits>>,
}

impl StreamSession {
    /// Opens a session against `model`, positioned before the first
    /// instant, on the model's engine. No allocation beyond the forward
    /// state itself happens per chunk after this point.
    pub fn open(model: Arc<ServedModel>) -> StreamSession {
        let state = match model.engine() {
            Engine::Compiled => SessionState::Compiled(model.compiled().begin()),
            Engine::Interpreted => SessionState::Interpreted(model.forward_pass().begin()),
        };
        StreamSession {
            model,
            state,
            prev_cycle: None,
        }
    }

    /// The model this stream is pinned to.
    pub fn model(&self) -> &Arc<ServedModel> {
        &self.model
    }

    /// Total instants estimated so far.
    pub fn instants(&self) -> usize {
        match &self.state {
            SessionState::Interpreted(s) => s.instants(),
            SessionState::Compiled(s) => s.instants(),
        }
    }

    /// Cumulative wrong-state predictions so far.
    pub fn wrong_state_predictions(&self) -> usize {
        match &self.state {
            SessionState::Interpreted(s) => s.wrong_state_predictions(),
            SessionState::Compiled(s) => s.wrong_state_predictions(),
        }
    }

    /// Cumulative unknown instants so far.
    pub fn unknown_instants(&self) -> usize {
        match &self.state {
            SessionState::Interpreted(s) => s.unknown_instants(),
            SessionState::Compiled(s) => s.unknown_instants(),
        }
    }

    /// Feeds the next chunk of the trace and returns its estimate plus
    /// the stream's cumulative counters.
    ///
    /// # Errors
    ///
    /// [`TraceError::CycleShapeMismatch`] when the chunk's interface
    /// does not match the previous chunk's (the daemon decodes chunks
    /// against the `STREAM_OPEN` dictionary, so this is defensive).
    pub fn feed(&mut self, chunk: &FunctionalTrace) -> Result<ChunkOutcome, TraceError> {
        let observations = self.model.classify_chunk(chunk);
        let mut hamming = chunk.input_hamming_series();
        if let (Some(prev), Some(first)) = (&self.prev_cycle, hamming.first_mut()) {
            *first = chunk.input_hamming_vs(prev, 0)?;
        }
        let mut estimate = PowerTrace::with_capacity(chunk.len());
        match &mut self.state {
            SessionState::Interpreted(state) => {
                self.model
                    .forward_pass()
                    .resume(state, &observations, &hamming, &mut estimate)
            }
            SessionState::Compiled(state) => {
                self.model
                    .compiled()
                    .resume(state, &observations, &hamming, &mut estimate)
            }
        }
        if !chunk.is_empty() {
            self.prev_cycle = Some(chunk.cycle(chunk.len() - 1).to_vec());
        }
        Ok(ChunkOutcome {
            estimate,
            wrong_state_predictions: self.wrong_state_predictions(),
            unknown_instants: self.unknown_instants(),
            instants: self.instants(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::test_support::{toy_model_json, toy_trace};

    fn toy_model() -> Arc<ServedModel> {
        let dir = std::env::temp_dir().join("psm-serve-session-toy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("toy@1.json"),
            psm_persist::encode_artifact(&toy_model_json()),
        )
        .unwrap();
        let model = Registry::open(&dir)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        model
    }

    #[test]
    fn chunked_stream_is_bit_identical_to_one_shot() {
        let model = toy_model();
        let trace = toy_trace();
        let oneshot = model.estimate(&trace);
        for window in 1..=trace.len() {
            let mut session = StreamSession::open(model.clone());
            let mut streamed: Vec<f64> = Vec::new();
            let mut last = None;
            for chunk in trace.split_windows(window) {
                let out = session.feed(&chunk).unwrap();
                streamed.extend(out.estimate.iter());
                last = Some(out);
            }
            let last = last.unwrap();
            assert_eq!(streamed.len(), oneshot.estimate.len());
            for (s, o) in streamed.iter().zip(oneshot.estimate.iter()) {
                assert_eq!(s.to_bits(), o.to_bits(), "window {window}");
            }
            assert_eq!(
                last.wrong_state_predictions,
                oneshot.wrong_state_predictions
            );
            assert_eq!(last.unknown_instants, oneshot.unknown_instants);
            assert_eq!(last.instants, trace.len());
        }
    }

    #[test]
    fn empty_chunk_is_a_no_op() {
        let model = toy_model();
        let trace = toy_trace();
        let mut session = StreamSession::open(model.clone());
        let empty = FunctionalTrace::new(trace.signals().clone());
        let out = session.feed(&empty).unwrap();
        assert!(out.estimate.is_empty());
        assert_eq!(out.instants, 0);
        // Estimation continues unperturbed after the empty chunk.
        let out = session.feed(&trace).unwrap();
        assert_eq!(out.instants, trace.len());
        let oneshot = model.estimate(&trace);
        for (s, o) in out.estimate.iter().zip(oneshot.estimate.iter()) {
            assert_eq!(s.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn shape_drift_is_rejected() {
        let model = toy_model();
        let trace = toy_trace();
        let mut session = StreamSession::open(model);
        session.feed(&trace).unwrap();
        // A chunk over a wider interface cannot follow.
        let mut wide = psm_trace::SignalSet::new();
        wide.push("en", 1, psm_trace::Direction::Input).unwrap();
        wide.push("extra", 1, psm_trace::Direction::Input).unwrap();
        let mut bad = FunctionalTrace::new(wide);
        bad.push_cycle(vec![Bits::from_bool(true), Bits::from_bool(false)])
            .unwrap();
        assert!(matches!(
            session.feed(&bad),
            Err(TraceError::CycleShapeMismatch { .. })
        ));
    }

    #[test]
    fn compiled_and_interpreted_sessions_agree_bit_for_bit() {
        let dir = std::env::temp_dir().join("psm-serve-session-engines");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("toy@1.json"),
            psm_persist::encode_artifact(&toy_model_json()),
        )
        .unwrap();
        let compiled = Registry::open_with_engine(&dir, Engine::Compiled)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        let interpreted = Registry::open_with_engine(&dir, Engine::Interpreted)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let trace = toy_trace();
        for window in [1, 2, 3, 5, trace.len()] {
            let mut fast = StreamSession::open(compiled.clone());
            let mut slow = StreamSession::open(interpreted.clone());
            for chunk in trace.split_windows(window) {
                let f = fast.feed(&chunk).unwrap();
                let s = slow.feed(&chunk).unwrap();
                assert_eq!(f.instants, s.instants, "window {window}");
                assert_eq!(
                    f.wrong_state_predictions, s.wrong_state_predictions,
                    "window {window}"
                );
                assert_eq!(f.unknown_instants, s.unknown_instants, "window {window}");
                assert_eq!(f.estimate.len(), s.estimate.len());
                for (a, b) in f.estimate.iter().zip(s.estimate.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "window {window}");
                }
            }
        }
    }

    #[test]
    fn session_pins_its_model() {
        let model = toy_model();
        let session = StreamSession::open(model.clone());
        assert!(Arc::ptr_eq(session.model(), &model));
    }
}
