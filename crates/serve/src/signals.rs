//! SIGTERM → graceful-drain bridge, via the classic self-pipe trick.
//!
//! A signal handler may only do async-signal-safe work, so the handler
//! here writes one byte into a pipe and returns; a watcher thread blocks
//! on the read end and runs the (arbitrary, non-signal-safe) callback —
//! for `psmd`, the same drain path the `SHUTDOWN` opcode takes.
//!
//! The workspace builds with no external crates, so the three libc
//! entry points involved (`signal`, `pipe`, `read`/`write`) are declared
//! directly; `std` already links libc on every Unix target. On
//! non-Unix targets [`on_sigterm`] is a no-op returning `Ok(())` —
//! `psmd` still shuts down through the `SHUTDOWN` opcode there.

#[cfg(unix)]
mod imp {
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// Write end of the self-pipe, set once before the handler installs.
    static PIPE_WRITE_FD: AtomicI32 = AtomicI32::new(-1);
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    /// Async-signal-safe: one `write` on a pre-opened fd, nothing else.
    extern "C" fn handle_sigterm(_signum: i32) {
        let fd = PIPE_WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = [1u8];
            unsafe {
                let _ = write(fd, byte.as_ptr(), 1);
            }
        }
    }

    pub fn on_sigterm(callback: impl FnOnce() + Send + 'static) -> io::Result<()> {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "a SIGTERM handler is already installed in this process",
            ));
        }
        let mut fds = [-1i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let (read_fd, write_fd) = (fds[0], fds[1]);
        PIPE_WRITE_FD.store(write_fd, Ordering::SeqCst);
        std::thread::Builder::new()
            .name("psmd-sigterm".to_owned())
            .spawn(move || {
                let mut byte = 0u8;
                loop {
                    let n = unsafe { read(read_fd, &mut byte, 1) };
                    // Retry EINTR (-1); anything read means a signal fired.
                    if n > 0 {
                        callback();
                        return;
                    }
                    if n == 0 {
                        return; // write end closed — process is exiting
                    }
                }
            })?;
        let previous = unsafe { signal(SIGTERM, handle_sigterm as *const () as usize) };
        const SIG_ERR: usize = usize::MAX;
        if previous == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(not(unix))]
mod imp {
    use std::io;

    pub fn on_sigterm(_callback: impl FnOnce() + Send + 'static) -> io::Result<()> {
        Ok(())
    }
}

/// Installs a process-wide SIGTERM handler that runs `callback` (once,
/// on a dedicated thread) when the signal arrives.
///
/// # Errors
///
/// [`std::io::Error`] when the pipe or handler cannot be installed, or
/// when a handler was already installed — the daemon installs exactly
/// one per process.
pub fn on_sigterm(callback: impl FnOnce() + Send + 'static) -> std::io::Result<()> {
    imp::on_sigterm(callback)
}
