//! The `psmd` daemon: connection engine, dispatch, stats, graceful drain.
//!
//! Two I/O engines share one dispatch path ([`IoMode`]):
//!
//! * **Readiness** (the default on Unix) — a single event-loop thread
//!   drives every connection through `poll(2)`
//!   ([`poll`](crate::poll)): non-blocking accepts, per-connection read
//!   buffers parsed at frame granularity
//!   ([`protocol::parse_frame_bytes`]), and per-connection outboxes
//!   flushed as sockets become writable. A peer trickling a frame in
//!   byte-sized writes owns a buffer, not a thread — it cannot stall
//!   other connections. Worker-pool callbacks append responses to the
//!   outbox and wake the loop through the wake pipe.
//! * **Threads** — the classic thread-per-connection fallback (also the
//!   automatic fallback off Unix): blocking reads with an idle timeout,
//!   responses written under a per-connection mutex.
//!
//! Estimations go through the [`pool`](crate::pool) (bounded queue,
//! per-model batching, per-stream session turns); everything else is
//! answered inline. Responses echo the request frame's protocol version,
//! so v1 clients interoperate with this v2 daemon untouched.
//!
//! Shutdown — the `SHUTDOWN` opcode or SIGTERM via
//! [`signals::on_sigterm`](crate::signals::on_sigterm) — is graceful by
//! construction: the flag stops accepts and reads, the pool drains
//! (every accepted job still gets its response), outboxes flush, stats
//! land in the final [`TelemetryReport`], and [`Server::run`] returns it.

use crate::poll::Waker;
use crate::pool::{
    EstimateJob, Pool, PoolConfig, SessionEntry, StreamJob, StreamReply, StreamSubmit, StreamWork,
    SubmitOutcome,
};
use crate::protocol::{self, Frame, Opcode, Status, MIN_PROTOCOL_VERSION};
use crate::registry::{Engine, Registry, RegistryError, Snapshot};
use psm_persist::JsonValue;
use psm_telemetry::{Stage, Telemetry, TelemetryReport};
use psm_trace::SignalSet;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default listen address of `psmd` (and default target of `psmctl`).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";

/// How long a blocking connection reader (threads mode) waits for the
/// first byte of a frame before re-checking the shutdown flag; also the
/// readiness loop's poll timeout. Only the first byte is read under the
/// blocking timeout, so an idle wait can never split a frame.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Read timeout for the remainder of a frame once its first byte
/// arrived (threads mode) — generous, because a large trace payload
/// crosses the loopback in many segments.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// How long the readiness loop keeps flushing outboxes after drain.
const FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// Which connection engine the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One event-loop thread, `poll(2)` readiness, non-blocking I/O.
    /// Falls back to [`IoMode::Threads`] on targets without `poll`.
    #[default]
    Readiness,
    /// One blocking thread per connection.
    Threads,
}

/// Daemon configuration: where to listen, what to serve, how to pool.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; `127.0.0.1:0` (the default) takes an ephemeral
    /// loopback port, reported by [`Server::local_addr`].
    pub addr: String,
    /// The model registry directory (see [`Registry`]).
    pub registry_dir: PathBuf,
    /// Worker-pool tuning.
    pub pool: PoolConfig,
    /// Connection engine (readiness-driven by default).
    pub io: IoMode,
    /// Estimation engine (compiled flat tables by default).
    pub engine: Engine,
}

impl ServerConfig {
    /// A loopback config serving `registry_dir` with default pooling.
    pub fn new(registry_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            registry_dir: registry_dir.into(),
            pool: PoolConfig::default(),
            io: IoMode::default(),
            engine: Engine::default(),
        }
    }
}

/// A daemon startup or accept-loop failure.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, local_addr).
    Io(io::Error),
    /// The model registry could not be loaded.
    Registry(RegistryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server socket error: {e}"),
            ServeError::Registry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Registry(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

/// Shared daemon state: everything a connection needs.
struct Ctx {
    registry: Registry,
    pool: Pool,
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
    local: SocketAddr,
    connections: AtomicU64,
}

impl Ctx {
    /// Sets the shutdown flag and pokes the I/O engine awake.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks a blocking accept and makes
        // the readiness loop's listener fd readable; either engine
        // re-checks the flag before serving it.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_secs(1));
    }
}

/// A cloneable shutdown trigger, usable from another thread or a signal
/// watcher ([`crate::signals::on_sigterm`]).
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: drain, flush stats, exit.
    pub fn shutdown(&self) {
        self.ctx.trigger_shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.ctx.local)
            .finish()
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    io: IoMode,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.ctx.local)
            .field("io", &self.io)
            .finish()
    }
}

impl Server {
    /// Loads the registry and binds the listen socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when any registry artifact fails to
    /// load (the daemon never comes up half-populated), or
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(cfg: ServerConfig) -> Result<Server, ServeError> {
        let telemetry = Arc::new(Telemetry::new());
        let registry = telemetry.time(Stage::Serve, "registry load", || {
            Registry::open_with_engine(&cfg.registry_dir, cfg.engine)
        })?;
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let local = listener.local_addr()?;
        let pool = Pool::new(cfg.pool, telemetry.clone());
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                registry,
                pool,
                telemetry,
                shutdown: AtomicBool::new(false),
                local,
                connections: AtomicU64::new(0),
            }),
            io: cfg.io,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.local
    }

    /// The daemon's telemetry sink (the `STATS` opcode reports it).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.ctx.telemetry.clone()
    }

    /// A shutdown trigger independent of the serving thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: self.ctx.clone(),
        }
    }

    /// Serves until shutdown, then drains and returns the final stats.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] only for fatal listener/poll failures; per-
    /// connection errors are answered on that connection and logged to
    /// the telemetry counters instead.
    pub fn run(self) -> Result<TelemetryReport, ServeError> {
        match self.io {
            IoMode::Readiness => self.run_readiness(),
            IoMode::Threads => self.run_threads(),
        }
    }

    #[cfg(not(unix))]
    fn run_readiness(self) -> Result<TelemetryReport, ServeError> {
        self.run_threads()
    }

    #[cfg(unix)]
    fn run_readiness(self) -> Result<TelemetryReport, ServeError> {
        use crate::poll::{poll_fds, PollFd, WakePipe, POLLHUP, POLLIN, POLLOUT};
        use std::os::unix::io::AsRawFd;
        use std::time::Instant;

        let Ok(wake) = WakePipe::new() else {
            return self.run_threads();
        };
        self.listener.set_nonblocking(true)?;
        let listener_fd = self.listener.as_raw_fd();
        let waker = wake.waker();
        let mut conns: Vec<Conn> = Vec::new();

        while !self.ctx.shutdown.load(Ordering::SeqCst) {
            let mut fds = Vec::with_capacity(2 + conns.len());
            fds.push(PollFd::new(listener_fd, POLLIN));
            fds.push(PollFd::new(wake.read_fd(), POLLIN));
            for conn in &conns {
                let (outbox_empty, outbox_bytes) = {
                    let ob = conn.outbox.lock().expect("outbox poisoned");
                    (ob.is_empty(), ob.bytes)
                };
                let mut events = 0i16;
                // Backpressure: a peer whose outbox is over the cap
                // (it pipelines requests without reading responses)
                // stops being read until the queue drains.
                if !conn.closing && outbox_bytes < OUTBOX_BACKPRESSURE_BYTES {
                    events |= POLLIN;
                }
                if !outbox_empty {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.fd, events));
            }
            poll_fds(&mut fds, IDLE_POLL.as_millis() as i32)?;

            if fds[1].ready(POLLIN) {
                wake.drain();
            }
            if fds[0].ready(POLLIN) && !self.ctx.shutdown.load(Ordering::SeqCst) {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if let Some(conn) = Conn::accept(stream, &self.ctx, waker) {
                                conns.push(conn);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        // Transient accept failures (EMFILE and friends)
                        // must not kill the daemon.
                        Err(_) => break,
                    }
                }
            }
            // Connections accepted above have no pollfd entry yet; they
            // are serviced from the next iteration on.
            for (i, conn) in conns.iter_mut().take(fds.len() - 2).enumerate() {
                let pfd = fds[i + 2];
                if pfd.failed() {
                    conn.dead = true;
                    continue;
                }
                if pfd.ready(POLLIN | POLLHUP) && !conn.closing {
                    conn.service_read(&self.ctx);
                }
                conn.flush_outbox();
            }
            // A closing conn survives while the pool still owes it
            // responses; `inflight` is checked before the outbox so a
            // response queued between the two loads is never missed
            // (the guard decrements only after the response is queued).
            conns.retain(|c| {
                !(c.dead
                    || c.closing
                        && c.inflight.load(Ordering::SeqCst) == 0
                        && c.outbox.lock().expect("outbox poisoned").is_empty())
            });
        }

        // Drain: reads have stopped (the loop exited); every accepted
        // job still runs, its response landing in an outbox…
        self.ctx.pool.drain();
        // …then flush what remains, bounded so a vanished peer cannot
        // wedge shutdown.
        let deadline = Instant::now() + FLUSH_DEADLINE;
        loop {
            for conn in conns.iter_mut() {
                conn.flush_outbox();
            }
            conns.retain(|c| !c.dead && !c.outbox.lock().expect("outbox poisoned").is_empty());
            if conns.is_empty() || Instant::now() >= deadline {
                break;
            }
            let mut fds: Vec<PollFd> = conns.iter().map(|c| PollFd::new(c.fd, POLLOUT)).collect();
            let _ = poll_fds(&mut fds, 50);
        }
        Ok(self.ctx.telemetry.report())
    }

    /// The thread-per-connection engine.
    fn run_threads(self) -> Result<TelemetryReport, ServeError> {
        let mut conn_threads = Vec::new();
        for stream in self.listener.incoming() {
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let ctx = self.ctx.clone();
                    let n = ctx.connections.fetch_add(1, Ordering::SeqCst);
                    let thread = std::thread::Builder::new()
                        .name(format!("psmd-conn-{n}"))
                        .spawn(move || handle_connection(stream, &ctx))?;
                    conn_threads.push(thread);
                }
                // Transient accept failures (EMFILE and friends) must not
                // kill the daemon; re-check the flag and keep accepting.
                Err(_) => {
                    if self.ctx.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // Drain: every estimate accepted before the flag flipped gets
        // its response before the pool stops.
        self.ctx.pool.drain();
        for thread in conn_threads {
            let _ = thread.join();
        }
        Ok(self.ctx.telemetry.report())
    }

    /// Runs the daemon on a background thread.
    pub fn spawn(self) -> RunningServer {
        let addr = self.ctx.local;
        let handle = self.handle();
        let thread = std::thread::Builder::new()
            .name("psmd-accept".to_owned())
            .spawn(move || self.run())
            .expect("spawn server thread");
        RunningServer {
            addr,
            handle,
            thread,
        }
    }
}

/// A daemon running on a background thread (see [`Server::spawn`]).
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<Result<TelemetryReport, ServeError>>,
}

impl RunningServer {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown trigger for this daemon.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Waits for the daemon to exit and returns its final stats.
    ///
    /// # Errors
    ///
    /// The daemon's own [`ServeError`]; a panicked serving thread
    /// surfaces as [`ServeError::Io`].
    pub fn join(self) -> Result<TelemetryReport, ServeError> {
        self.thread
            .join()
            .map_err(|_| ServeError::Io(io::Error::other("daemon thread panicked")))?
    }
}

// ---------------------------------------------------------------------
// Readiness-mode connection state.
// ---------------------------------------------------------------------

/// Bytes a peer may queue in its outbox before the daemon stops
/// reading (and so stops accepting) further requests from it. A peer
/// that pipelines requests without ever reading responses hits this cap
/// and stalls itself instead of growing daemon memory without bound;
/// responses already owed by the pool still land and flush normally.
const OUTBOX_BACKPRESSURE_BYTES: usize = 8 * 1024 * 1024;

/// Bytes queued towards one peer, flushed as the socket drains.
struct Outbox {
    queue: std::collections::VecDeque<Vec<u8>>,
    /// How much of the front entry has been written.
    offset: usize,
    /// Total bytes across `queue` (the front entry counts in full
    /// until it is popped) — the backpressure gauge.
    bytes: usize,
}

impl Outbox {
    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn push(&mut self, buf: Vec<u8>) {
        self.bytes += buf.len();
        self.queue.push_back(buf);
    }
}

/// One readiness-mode connection: non-blocking socket, accumulated read
/// buffer, response outbox, and this connection's open streams.
struct Conn {
    stream: TcpStream,
    fd: i32,
    rbuf: Vec<u8>,
    outbox: Arc<Mutex<Outbox>>,
    /// Pool jobs submitted for this connection whose responses have not
    /// been queued yet; a closing connection is retired only once this
    /// reaches zero *and* the outbox is flushed, so a peer that sends
    /// requests and immediately `shutdown(SHUT_WR)`s still gets its
    /// responses (matching threads-mode behaviour).
    inflight: Arc<AtomicU64>,
    sink: ResponseSink,
    sessions: HashMap<u32, ConnSession>,
    /// Stop reading; close once the outbox is flushed.
    closing: bool,
    /// Remove immediately (peer gone or socket error).
    dead: bool,
}

impl Conn {
    #[cfg(unix)]
    fn accept(stream: TcpStream, ctx: &Arc<Ctx>, waker: Waker) -> Option<Conn> {
        use std::os::unix::io::AsRawFd;
        ctx.telemetry.add_named("serve.connections", 1);
        ctx.connections.fetch_add(1, Ordering::SeqCst);
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        let fd = stream.as_raw_fd();
        let outbox = Arc::new(Mutex::new(Outbox {
            queue: std::collections::VecDeque::new(),
            offset: 0,
            bytes: 0,
        }));
        let inflight = Arc::new(AtomicU64::new(0));
        Some(Conn {
            stream,
            fd,
            rbuf: Vec::new(),
            sink: ResponseSink::Queued {
                outbox: outbox.clone(),
                inflight: inflight.clone(),
                waker,
            },
            outbox,
            inflight,
            sessions: HashMap::new(),
            closing: false,
            dead: false,
        })
    }

    /// Reads until the socket would block, then dispatches every
    /// complete frame in the buffer.
    fn service_read(&mut self, ctx: &Arc<Ctx>) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer closed. Parse what already arrived, then go.
                    self.closing = true;
                    break;
                }
                Ok(n) => self.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        let mut consumed = 0;
        loop {
            match protocol::parse_frame_bytes(&self.rbuf[consumed..]) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    consumed += used;
                    if !dispatch(ctx, &self.sink, &mut self.sessions, frame) {
                        self.closing = true;
                        break;
                    }
                }
                Err(e) => {
                    // A malformed frame desynchronises the stream:
                    // answer once, then hang up (after the flush).
                    ctx.telemetry.add_named("serve.protocol_errors", 1);
                    respond(
                        &self.sink,
                        MIN_PROTOCOL_VERSION,
                        Status::Error,
                        0,
                        protocol::error_payload(&e.to_string()),
                    );
                    self.closing = true;
                    break;
                }
            }
        }
        self.rbuf.drain(..consumed);
        if self.closing {
            self.rbuf.clear();
        }
    }

    /// Writes queued responses until the socket would block.
    fn flush_outbox(&mut self) {
        if self.dead {
            return;
        }
        let mut ob = self.outbox.lock().expect("outbox poisoned");
        while let Some(front) = ob.queue.front() {
            match self.stream.write(&front[ob.offset..]) {
                Ok(n) => {
                    ob.offset += n;
                    if ob.offset == ob.queue.front().expect("front exists").len() {
                        let done = ob.queue.pop_front().expect("front exists");
                        ob.bytes -= done.len();
                        ob.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }
}

/// One open stream on a connection: the pool-side session plus the
/// interned dictionary chunks decode against.
struct ConnSession {
    entry: Arc<SessionEntry>,
    signals: SignalSet,
}

/// Where a response goes: written directly under a mutex (threads mode)
/// or queued on an outbox and signalled to the event loop (readiness).
#[derive(Clone)]
enum ResponseSink {
    Direct(Arc<Mutex<TcpStream>>),
    Queued {
        outbox: Arc<Mutex<Outbox>>,
        inflight: Arc<AtomicU64>,
        waker: Waker,
    },
}

impl ResponseSink {
    /// Registers one pool job against this connection (readiness mode)
    /// so the event loop will not retire a half-closed peer before the
    /// job's response lands in the outbox. `None` in threads mode,
    /// where the blocking writer clone already outlives the read loop.
    fn job_guard(&self) -> Option<JobGuard> {
        match self {
            ResponseSink::Direct(_) => None,
            ResponseSink::Queued {
                inflight, waker, ..
            } => {
                inflight.fetch_add(1, Ordering::SeqCst);
                Some(JobGuard {
                    inflight: inflight.clone(),
                    waker: *waker,
                })
            }
        }
    }
}

/// Releases a [`ResponseSink::job_guard`] registration on drop —
/// whether the job responded, was rejected by a full queue, or was
/// dropped by a draining pool — and wakes the event loop so it
/// re-evaluates the connection.
struct JobGuard {
    inflight: Arc<AtomicU64>,
    waker: Waker,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// Serves one connection until the peer closes, a protocol error, or
/// shutdown (threads mode).
fn handle_connection(mut stream: TcpStream, ctx: &Arc<Ctx>) {
    ctx.telemetry.add_named("serve.connections", 1);
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let sink = ResponseSink::Direct(writer);
    let mut sessions = HashMap::new();
    loop {
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
                let frame = protocol::read_frame_after(&mut stream, first[0]);
                let _ = stream.set_read_timeout(Some(IDLE_POLL));
                match frame {
                    Ok(frame) => {
                        if !dispatch(ctx, &sink, &mut sessions, frame) {
                            return;
                        }
                    }
                    Err(e) => {
                        // A malformed frame desynchronises the stream:
                        // answer once, then hang up.
                        ctx.telemetry.add_named("serve.protocol_errors", 1);
                        respond(
                            &sink,
                            MIN_PROTOCOL_VERSION,
                            Status::Error,
                            0,
                            protocol::error_payload(&e.to_string()),
                        );
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Delivers one response frame, echoing the request's protocol version.
fn respond(sink: &ResponseSink, version: u8, status: Status, request_id: u64, payload: Vec<u8>) {
    let frame = Frame::response_v(version, status, request_id, payload);
    match sink {
        ResponseSink::Direct(writer) => {
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = protocol::write_frame(&mut *w, &frame);
        }
        ResponseSink::Queued { outbox, waker, .. } => {
            let mut buf = Vec::with_capacity(protocol::HEADER_LEN + frame.payload.len());
            protocol::write_frame(&mut buf, &frame).expect("vec write cannot fail");
            outbox.lock().expect("outbox poisoned").push(buf);
            waker.wake();
        }
    }
}

/// Handles one request frame; `false` ends the connection.
fn dispatch(
    ctx: &Arc<Ctx>,
    sink: &ResponseSink,
    sessions: &mut HashMap<u32, ConnSession>,
    frame: Frame,
) -> bool {
    let id = frame.request_id;
    let v = frame.version;
    let Some(op) = frame.opcode() else {
        respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload("frame kind is a response status, not a request opcode"),
        );
        return false;
    };
    ctx.telemetry
        .add_named(&format!("serve.op.{}", op.name()), 1);
    if v < op.min_version() {
        respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload(&format!(
                "opcode {} requires protocol v{} (frame is v{v})",
                op.name(),
                op.min_version()
            )),
        );
        return true;
    }
    match op {
        Opcode::Estimate => dispatch_estimate(ctx, sink, &frame),
        Opcode::EstimateBin => dispatch_estimate_bin(ctx, sink, &frame),
        Opcode::StreamOpen => dispatch_stream_open(ctx, sink, sessions, &frame),
        Opcode::StreamChunk => dispatch_stream_chunk(ctx, sink, sessions, &frame),
        Opcode::StreamClose => dispatch_stream_close(ctx, sink, sessions, &frame),
        Opcode::Stats => {
            let format = frame
                .json()
                .ok()
                .and_then(|doc| doc.str_field("format").map(str::to_owned).ok())
                .unwrap_or_else(|| "text".to_owned());
            let report = ctx.telemetry.report();
            let payload = match format.as_str() {
                "json" => JsonValue::obj([
                    ("format", JsonValue::from("json")),
                    ("stats", report.to_json()),
                ]),
                _ => JsonValue::obj([
                    ("format", JsonValue::from("text")),
                    ("stats", JsonValue::from(report.text())),
                ]),
            };
            respond(sink, v, Status::Ok, id, payload.render().into_bytes());
            true
        }
        Opcode::Reload => {
            let reloaded = ctx
                .telemetry
                .time(Stage::Serve, "registry reload", || ctx.registry.reload());
            match reloaded {
                Ok(snapshot) => respond(sink, v, Status::Ok, id, models_payload(&snapshot)),
                Err(e) => {
                    ctx.telemetry.add_named("serve.reload_failures", 1);
                    respond(
                        sink,
                        v,
                        Status::Error,
                        id,
                        protocol::error_payload(&e.to_string()),
                    );
                }
            }
            true
        }
        Opcode::List => {
            respond(
                sink,
                v,
                Status::Ok,
                id,
                models_payload(&ctx.registry.snapshot()),
            );
            true
        }
        Opcode::Ping => {
            respond(sink, v, Status::Ok, id, protocol::ping_reply(v));
            true
        }
        Opcode::Shutdown => {
            respond(sink, v, Status::Ok, id, Vec::new());
            ctx.trigger_shutdown();
            false
        }
    }
}

/// Resolves the model of an estimate-class request, answering the error
/// inline when it is unknown.
fn resolve_model(
    ctx: &Arc<Ctx>,
    sink: &ResponseSink,
    v: u8,
    id: u64,
    name: &str,
    version: Option<u64>,
) -> Option<Arc<crate::registry::ServedModel>> {
    let model = ctx.registry.snapshot().lookup(name, version);
    if model.is_none() {
        let msg = match version {
            Some(ver) => format!("unknown model {name}@{ver}"),
            None => format!("unknown model {name}"),
        };
        ctx.telemetry.add_named("serve.unknown_model", 1);
        respond(sink, v, Status::Error, id, protocol::error_payload(&msg));
    }
    model
}

/// Submits an estimate job, answering backpressure inline.
fn submit_estimate(ctx: &Arc<Ctx>, sink: &ResponseSink, v: u8, id: u64, job: EstimateJob) {
    match ctx.pool.submit(job) {
        SubmitOutcome::Accepted => {}
        SubmitOutcome::Busy(_) => respond(sink, v, Status::Busy, id, Vec::new()),
        SubmitOutcome::Draining(_) => respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload("daemon is shutting down"),
        ),
    }
}

fn dispatch_estimate(ctx: &Arc<Ctx>, sink: &ResponseSink, frame: &Frame) -> bool {
    let id = frame.request_id;
    let v = frame.version;
    let (name, version, trace) = match protocol::parse_estimate_request(frame) {
        Ok(parts) => parts,
        Err(e) => {
            respond(
                sink,
                v,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    let Some(model) = resolve_model(ctx, sink, v, id, &name, version) else {
        return true;
    };
    let reply_name = model.name.clone();
    let reply_version = model.version;
    let reply_sink = sink.clone();
    let guard = sink.job_guard();
    let job = EstimateJob {
        request_id: id,
        model,
        trace,
        respond: Box::new(move |outcome| {
            let _guard = guard;
            respond(
                &reply_sink,
                v,
                Status::Ok,
                id,
                protocol::estimate_reply(&reply_name, reply_version, &outcome),
            );
        }),
    };
    submit_estimate(ctx, sink, v, id, job);
    true
}

fn dispatch_estimate_bin(ctx: &Arc<Ctx>, sink: &ResponseSink, frame: &Frame) -> bool {
    let id = frame.request_id;
    let v = frame.version;
    let (name, version, trace) = match protocol::parse_estimate_bin_request(frame) {
        Ok(parts) => parts,
        Err(e) => {
            respond(
                sink,
                v,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    let Some(model) = resolve_model(ctx, sink, v, id, &name, version) else {
        return true;
    };
    let reply_name = model.name.clone();
    let reply_version = model.version;
    let reply_sink = sink.clone();
    let guard = sink.job_guard();
    let job = EstimateJob {
        request_id: id,
        model,
        trace,
        respond: Box::new(move |outcome| {
            let _guard = guard;
            let estimate: Vec<f64> = outcome.estimate.iter().collect();
            respond(
                &reply_sink,
                v,
                Status::Ok,
                id,
                protocol::estimate_bin_reply(
                    &reply_name,
                    reply_version,
                    &estimate,
                    outcome.wrong_state_predictions as u64,
                    outcome.unknown_instants as u64,
                ),
            );
        }),
    };
    submit_estimate(ctx, sink, v, id, job);
    true
}

fn dispatch_stream_open(
    ctx: &Arc<Ctx>,
    sink: &ResponseSink,
    sessions: &mut HashMap<u32, ConnSession>,
    frame: &Frame,
) -> bool {
    let id = frame.request_id;
    let v = frame.version;
    let (stream, name, version, signals) = match protocol::parse_stream_open_request(frame) {
        Ok(parts) => parts,
        Err(e) => {
            respond(
                sink,
                v,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    if sessions.contains_key(&stream) {
        respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload(&format!("stream {stream} is already open")),
        );
        return true;
    }
    let Some(model) = resolve_model(ctx, sink, v, id, &name, version) else {
        return true;
    };
    match ctx.pool.open_session(model) {
        Some(entry) => {
            let m = entry.model().clone();
            respond(
                sink,
                v,
                Status::Ok,
                id,
                protocol::stream_open_reply(stream, &m.name, m.version),
            );
            sessions.insert(stream, ConnSession { entry, signals });
        }
        None => respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload("daemon is shutting down"),
        ),
    }
    true
}

fn dispatch_stream_chunk(
    ctx: &Arc<Ctx>,
    sink: &ResponseSink,
    sessions: &mut HashMap<u32, ConnSession>,
    frame: &Frame,
) -> bool {
    let id = frame.request_id;
    let v = frame.version;
    let stream = match protocol::parse_stream_id(frame) {
        Ok(s) => s,
        Err(e) => {
            respond(
                sink,
                v,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    let Some(cs) = sessions.get(&stream) else {
        respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload(&format!("stream {stream} is not open")),
        );
        return true;
    };
    let chunk = match protocol::parse_stream_chunk_cycles(frame, &cs.signals) {
        Ok(c) => c,
        Err(e) => {
            respond(
                sink,
                v,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    let model = cs.entry.model().clone();
    let reply_sink = sink.clone();
    let guard = sink.job_guard();
    let job = StreamJob {
        request_id: id,
        kind: StreamWork::Chunk(chunk),
        respond: Box::new(move |reply| {
            let _guard = guard;
            match reply {
                StreamReply::Chunk(out) => {
                    let estimate: Vec<f64> = out.estimate.iter().collect();
                    respond(
                        &reply_sink,
                        v,
                        Status::Ok,
                        id,
                        protocol::estimate_bin_reply(
                            &model.name,
                            model.version,
                            &estimate,
                            out.wrong_state_predictions as u64,
                            out.unknown_instants as u64,
                        ),
                    );
                }
                StreamReply::Failed(msg) => respond(
                    &reply_sink,
                    v,
                    Status::Error,
                    id,
                    protocol::error_payload(&msg),
                ),
                StreamReply::Closed(_) => respond(
                    &reply_sink,
                    v,
                    Status::Error,
                    id,
                    protocol::error_payload("stream closed before the chunk ran"),
                ),
            }
        }),
    };
    match ctx.pool.submit_stream(&cs.entry, job) {
        StreamSubmit::Accepted => {}
        StreamSubmit::Busy(_) => respond(sink, v, Status::Busy, id, Vec::new()),
        StreamSubmit::Draining(_) => respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload("daemon is shutting down"),
        ),
    }
    true
}

fn dispatch_stream_close(
    ctx: &Arc<Ctx>,
    sink: &ResponseSink,
    sessions: &mut HashMap<u32, ConnSession>,
    frame: &Frame,
) -> bool {
    let id = frame.request_id;
    let v = frame.version;
    let stream = match protocol::parse_stream_id(frame) {
        Ok(s) => s,
        Err(e) => {
            respond(
                sink,
                v,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    let Some(cs) = sessions.remove(&stream) else {
        respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload(&format!("stream {stream} is not open")),
        );
        return true;
    };
    let model = cs.entry.model().clone();
    let reply_sink = sink.clone();
    let guard = sink.job_guard();
    let job = StreamJob {
        request_id: id,
        kind: StreamWork::Close,
        respond: Box::new(move |reply| {
            let _guard = guard;
            match reply {
                StreamReply::Closed(totals) => respond(
                    &reply_sink,
                    v,
                    Status::Ok,
                    id,
                    protocol::stream_close_reply(
                        stream,
                        &model.name,
                        model.version,
                        totals.instants as u64,
                        totals.wrong_state_predictions as u64,
                        totals.unknown_instants as u64,
                    ),
                ),
                StreamReply::Chunk(_) | StreamReply::Failed(_) => respond(
                    &reply_sink,
                    v,
                    Status::Error,
                    id,
                    protocol::error_payload("close answered with a non-close reply"),
                ),
            }
        }),
    };
    match ctx.pool.submit_stream(&cs.entry, job) {
        StreamSubmit::Accepted => {}
        StreamSubmit::Busy(_) => respond(sink, v, Status::Busy, id, Vec::new()),
        StreamSubmit::Draining(_) => respond(
            sink,
            v,
            Status::Error,
            id,
            protocol::error_payload("daemon is shutting down"),
        ),
    }
    true
}

/// Renders a snapshot's model list — the `LIST` and `RELOAD` payload.
fn models_payload(snapshot: &Snapshot) -> Vec<u8> {
    JsonValue::obj([(
        "models",
        JsonValue::arr(snapshot.models().iter().map(|m| {
            JsonValue::obj([
                ("name", JsonValue::from(m.name.as_str())),
                ("version", JsonValue::from(m.version)),
                ("format_version", JsonValue::from(m.format_version)),
                ("states", JsonValue::from(m.state_count())),
                ("propositions", JsonValue::from(m.proposition_count())),
            ])
        })),
    )])
    .render()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_loopback_ephemeral_readiness() {
        let cfg = ServerConfig::new("/tmp/registry");
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert!(cfg.pool.workers >= 1);
        assert_eq!(cfg.io, IoMode::Readiness);
    }

    #[test]
    fn bind_fails_structurally_on_a_missing_registry() {
        let err = Server::bind(ServerConfig::new("/nonexistent/psmd/registry")).unwrap_err();
        assert!(matches!(err, ServeError::Registry(_)), "{err}");
        assert!(err.to_string().contains("registry"), "{err}");
    }
}
