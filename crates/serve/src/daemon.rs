//! The `psmd` daemon: accept loop, dispatch, stats, graceful drain.
//!
//! One thread accepts connections; each connection gets a thread that
//! frames requests off the socket and dispatches them. Estimations go
//! through the [`pool`](crate::pool) (bounded queue, per-model
//! batching); everything else is answered inline. Responses are written
//! under a per-connection mutex keyed by request id, so a batch
//! answering out of submission order is fine.
//!
//! Shutdown — the `SHUTDOWN` opcode or SIGTERM via
//! [`signals::on_sigterm`](crate::signals::on_sigterm) — is graceful by
//! construction: the flag stops the accept loop and the connection
//! readers, the pool drains (every accepted estimate still gets its
//! response), stats flush into the final [`TelemetryReport`], and
//! [`Server::run`] returns it.

use crate::pool::{EstimateJob, Pool, PoolConfig, SubmitOutcome};
use crate::protocol::{self, Frame, Opcode, Status};
use crate::registry::{Registry, RegistryError, Snapshot};
use psm_persist::JsonValue;
use psm_telemetry::{Stage, Telemetry, TelemetryReport};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default listen address of `psmd` (and default target of `psmctl`).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";

/// How long a connection reader waits for the first byte of a frame
/// before re-checking the shutdown flag. Only the first byte is read
/// under this timeout, so an idle wait can never split a frame.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Read timeout for the remainder of a frame once its first byte
/// arrived — generous, because a large trace payload crosses the
/// loopback in many segments.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// Daemon configuration: where to listen, what to serve, how to pool.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; `127.0.0.1:0` (the default) takes an ephemeral
    /// loopback port, reported by [`Server::local_addr`].
    pub addr: String,
    /// The model registry directory (see [`Registry`]).
    pub registry_dir: PathBuf,
    /// Worker-pool tuning.
    pub pool: PoolConfig,
}

impl ServerConfig {
    /// A loopback config serving `registry_dir` with default pooling.
    pub fn new(registry_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            registry_dir: registry_dir.into(),
            pool: PoolConfig::default(),
        }
    }
}

/// A daemon startup or accept-loop failure.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, local_addr).
    Io(io::Error),
    /// The model registry could not be loaded.
    Registry(RegistryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server socket error: {e}"),
            ServeError::Registry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Registry(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

/// Shared daemon state: everything a connection thread needs.
struct Ctx {
    registry: Registry,
    pool: Pool,
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
    local: SocketAddr,
    connections: AtomicU64,
}

impl Ctx {
    /// Sets the shutdown flag and pokes the accept loop awake.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the blocking accept; the loop
        // re-checks the flag before serving it.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_secs(1));
    }
}

/// A cloneable shutdown trigger, usable from another thread or a signal
/// watcher ([`crate::signals::on_sigterm`]).
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: drain, flush stats, exit.
    pub fn shutdown(&self) {
        self.ctx.trigger_shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.ctx.local)
            .finish()
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.ctx.local)
            .finish()
    }
}

impl Server {
    /// Loads the registry and binds the listen socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when any registry artifact fails to
    /// load (the daemon never comes up half-populated), or
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(cfg: ServerConfig) -> Result<Server, ServeError> {
        let telemetry = Arc::new(Telemetry::new());
        let registry = telemetry.time(Stage::Serve, "registry load", || {
            Registry::open(&cfg.registry_dir)
        })?;
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let local = listener.local_addr()?;
        let pool = Pool::new(cfg.pool, telemetry.clone());
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                registry,
                pool,
                telemetry,
                shutdown: AtomicBool::new(false),
                local,
                connections: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.local
    }

    /// The daemon's telemetry sink (the `STATS` opcode reports it).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.ctx.telemetry.clone()
    }

    /// A shutdown trigger independent of the serving thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: self.ctx.clone(),
        }
    }

    /// Serves until shutdown, then drains and returns the final stats.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] only for fatal listener failures; per-
    /// connection errors are answered on that connection and logged to
    /// the telemetry counters instead.
    pub fn run(self) -> Result<TelemetryReport, ServeError> {
        let mut conn_threads = Vec::new();
        for stream in self.listener.incoming() {
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let ctx = self.ctx.clone();
                    let n = ctx.connections.fetch_add(1, Ordering::SeqCst);
                    let thread = std::thread::Builder::new()
                        .name(format!("psmd-conn-{n}"))
                        .spawn(move || handle_connection(stream, &ctx))?;
                    conn_threads.push(thread);
                }
                // Transient accept failures (EMFILE and friends) must not
                // kill the daemon; re-check the flag and keep accepting.
                Err(_) => {
                    if self.ctx.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // Drain: every estimate accepted before the flag flipped gets
        // its response before the pool stops.
        self.ctx.pool.drain();
        for thread in conn_threads {
            let _ = thread.join();
        }
        Ok(self.ctx.telemetry.report())
    }

    /// Runs the daemon on a background thread.
    pub fn spawn(self) -> RunningServer {
        let addr = self.ctx.local;
        let handle = self.handle();
        let thread = std::thread::Builder::new()
            .name("psmd-accept".to_owned())
            .spawn(move || self.run())
            .expect("spawn server thread");
        RunningServer {
            addr,
            handle,
            thread,
        }
    }
}

/// A daemon running on a background thread (see [`Server::spawn`]).
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<Result<TelemetryReport, ServeError>>,
}

impl RunningServer {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown trigger for this daemon.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Waits for the daemon to exit and returns its final stats.
    ///
    /// # Errors
    ///
    /// The daemon's own [`ServeError`]; a panicked serving thread
    /// surfaces as [`ServeError::Io`].
    pub fn join(self) -> Result<TelemetryReport, ServeError> {
        self.thread
            .join()
            .map_err(|_| ServeError::Io(io::Error::other("daemon thread panicked")))?
    }
}

/// Serves one connection until the peer closes, a protocol error, or
/// shutdown.
fn handle_connection(mut stream: TcpStream, ctx: &Arc<Ctx>) {
    ctx.telemetry.add_named("serve.connections", 1);
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    loop {
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
                let frame = protocol::read_frame_after(&mut stream, first[0]);
                let _ = stream.set_read_timeout(Some(IDLE_POLL));
                match frame {
                    Ok(frame) => {
                        if !dispatch(ctx, &writer, frame) {
                            return;
                        }
                    }
                    Err(e) => {
                        // A malformed frame desynchronises the stream:
                        // answer once, then hang up.
                        ctx.telemetry.add_named("serve.protocol_errors", 1);
                        respond(
                            &writer,
                            Status::Error,
                            0,
                            protocol::error_payload(&e.to_string()),
                        );
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Writes one response frame, ignoring a vanished peer.
fn respond(writer: &Arc<Mutex<TcpStream>>, status: Status, request_id: u64, payload: Vec<u8>) {
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = protocol::write_frame(&mut *w, &Frame::response(status, request_id, payload));
}

/// Handles one request frame; `false` ends the connection.
fn dispatch(ctx: &Arc<Ctx>, writer: &Arc<Mutex<TcpStream>>, frame: Frame) -> bool {
    let id = frame.request_id;
    let Some(op) = frame.opcode() else {
        respond(
            writer,
            Status::Error,
            id,
            protocol::error_payload("frame kind is a response status, not a request opcode"),
        );
        return false;
    };
    ctx.telemetry
        .add_named(&format!("serve.op.{}", op.name()), 1);
    match op {
        Opcode::Estimate => dispatch_estimate(ctx, writer, &frame),
        Opcode::Stats => {
            let format = frame
                .json()
                .ok()
                .and_then(|doc| doc.str_field("format").map(str::to_owned).ok())
                .unwrap_or_else(|| "text".to_owned());
            let report = ctx.telemetry.report();
            let payload = match format.as_str() {
                "json" => JsonValue::obj([
                    ("format", JsonValue::from("json")),
                    ("stats", report.to_json()),
                ]),
                _ => JsonValue::obj([
                    ("format", JsonValue::from("text")),
                    ("stats", JsonValue::from(report.text())),
                ]),
            };
            respond(writer, Status::Ok, id, payload.render().into_bytes());
            true
        }
        Opcode::Reload => {
            let reloaded = ctx
                .telemetry
                .time(Stage::Serve, "registry reload", || ctx.registry.reload());
            match reloaded {
                Ok(snapshot) => respond(writer, Status::Ok, id, models_payload(&snapshot)),
                Err(e) => {
                    ctx.telemetry.add_named("serve.reload_failures", 1);
                    respond(
                        writer,
                        Status::Error,
                        id,
                        protocol::error_payload(&e.to_string()),
                    );
                }
            }
            true
        }
        Opcode::List => {
            respond(
                writer,
                Status::Ok,
                id,
                models_payload(&ctx.registry.snapshot()),
            );
            true
        }
        Opcode::Ping => {
            let payload = JsonValue::obj([("protocol", JsonValue::from("psmd/v1"))]);
            respond(writer, Status::Ok, id, payload.render().into_bytes());
            true
        }
        Opcode::Shutdown => {
            respond(writer, Status::Ok, id, Vec::new());
            ctx.trigger_shutdown();
            false
        }
    }
}

fn dispatch_estimate(ctx: &Arc<Ctx>, writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> bool {
    let id = frame.request_id;
    let (name, version, trace) = match protocol::parse_estimate_request(frame) {
        Ok(parts) => parts,
        Err(e) => {
            respond(
                writer,
                Status::Error,
                id,
                protocol::error_payload(&e.to_string()),
            );
            return true;
        }
    };
    let Some(model) = ctx.registry.snapshot().lookup(&name, version) else {
        let msg = match version {
            Some(v) => format!("unknown model {name}@{v}"),
            None => format!("unknown model {name}"),
        };
        ctx.telemetry.add_named("serve.unknown_model", 1);
        respond(writer, Status::Error, id, protocol::error_payload(&msg));
        return true;
    };
    let reply_name = model.name.clone();
    let reply_version = model.version;
    let reply_writer = writer.clone();
    let job = EstimateJob {
        request_id: id,
        model,
        trace,
        respond: Box::new(move |outcome| {
            respond(
                &reply_writer,
                Status::Ok,
                id,
                protocol::estimate_reply(&reply_name, reply_version, &outcome),
            );
        }),
    };
    match ctx.pool.submit(job) {
        SubmitOutcome::Accepted => {}
        SubmitOutcome::Busy(_) => respond(writer, Status::Busy, id, Vec::new()),
        SubmitOutcome::Draining(_) => respond(
            writer,
            Status::Error,
            id,
            protocol::error_payload("daemon is shutting down"),
        ),
    }
    true
}

/// Renders a snapshot's model list — the `LIST` and `RELOAD` payload.
fn models_payload(snapshot: &Snapshot) -> Vec<u8> {
    JsonValue::obj([(
        "models",
        JsonValue::arr(snapshot.models().iter().map(|m| {
            JsonValue::obj([
                ("name", JsonValue::from(m.name.as_str())),
                ("version", JsonValue::from(m.version)),
                ("format_version", JsonValue::from(m.format_version)),
                ("states", JsonValue::from(m.state_count())),
                ("propositions", JsonValue::from(m.proposition_count())),
            ])
        })),
    )])
    .render()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_loopback_ephemeral() {
        let cfg = ServerConfig::new("/tmp/registry");
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert!(cfg.pool.workers >= 1);
    }

    #[test]
    fn bind_fails_structurally_on_a_missing_registry() {
        let err = Server::bind(ServerConfig::new("/nonexistent/psmd/registry")).unwrap_err();
        assert!(matches!(err, ServeError::Registry(_)), "{err}");
        assert!(err.to_string().contains("registry"), "{err}");
    }
}
