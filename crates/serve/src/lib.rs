//! The psmgen estimation service: daemon, wire protocol, registry, pool.
//!
//! The paper's headline result is that simulating mined PSMs through an
//! HMM estimates power orders of magnitude faster than gate-level
//! simulation — fast enough to sit behind an interactive service. This
//! crate is that service:
//!
//! * [`protocol`] — the `psmd` framed wire protocol (magic, version,
//!   request id, opcode, payload) spoken over `std::net` TCP. v1 carries
//!   JSON payloads; v2 adds binary trace frames ([`psm_trace::binary`])
//!   and streaming opcodes, negotiated per connection via `PING`;
//! * [`registry`] — a directory of `psm-persist` artifacts
//!   (`<model>@<version>.json`) loaded into an immutable snapshot that
//!   the `RELOAD` opcode swaps atomically, never failing in-flight
//!   requests;
//! * [`pool`] — a fixed worker pool with a bounded queue and explicit
//!   backpressure (`BUSY`), batching queued requests per model so the
//!   HMM forward-cache setup is amortised across a batch, and running
//!   per-stream session turns for the v2 streaming opcodes;
//! * [`session`] — resumable per-stream forward state: chunked
//!   estimation bit-identical to the one-shot path;
//! * [`daemon`] — the connection engine: by default a readiness-driven
//!   `poll(2)` event loop ([`poll`]) with non-blocking reads and
//!   writes, with a thread-per-connection fallback; `STATS` reports
//!   through [`psm_telemetry`], graceful drain on `SHUTDOWN` or SIGTERM
//!   (self-pipe, [`signals`]);
//! * [`client`] — the blocking client the `psmctl` CLI and the loopback
//!   tests/benches use, including the streaming session API.
//!
//! Everything is `std`-only: the workspace builds fully offline.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod poll;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod session;
pub mod signals;

#[cfg(test)]
pub(crate) mod test_support;

pub use client::{
    ChunkReply, Client, ClientError, EstimateReply, EstimateStream, ModelInfo, StreamSummary,
};
pub use daemon::{
    IoMode, RunningServer, ServeError, Server, ServerConfig, ServerHandle, DEFAULT_ADDR,
};
pub use pool::PoolConfig;
pub use registry::{BatchRunner, Engine, Registry, RegistryError, ServedModel, Snapshot};
pub use session::{ChunkOutcome, StreamSession};
