//! The psmgen estimation service: daemon, wire protocol, registry, pool.
//!
//! The paper's headline result is that simulating mined PSMs through an
//! HMM estimates power orders of magnitude faster than gate-level
//! simulation — fast enough to sit behind an interactive service. This
//! crate is that service:
//!
//! * [`protocol`] — the `psmd/v1` length-prefixed framed wire protocol
//!   (magic, version, request id, opcode, JSON payload) spoken over
//!   `std::net` TCP;
//! * [`registry`] — a directory of `psm-persist` artifacts
//!   (`<model>@<version>.json`) loaded into an immutable snapshot that
//!   the `RELOAD` opcode swaps atomically, never failing in-flight
//!   requests;
//! * [`pool`] — a fixed worker pool with a bounded queue and explicit
//!   backpressure (`BUSY`), batching queued requests per model so the
//!   HMM forward-cache setup is amortised across a batch;
//! * [`daemon`] — the accept loop, per-connection framing, `STATS`
//!   reports through [`psm_telemetry`], and graceful drain on `SHUTDOWN`
//!   or SIGTERM (self-pipe, [`signals`]);
//! * [`client`] — the blocking client the `psmctl` CLI and the loopback
//!   tests/benches use.
//!
//! Everything is `std`-only: the workspace builds fully offline.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod signals;

#[cfg(test)]
pub(crate) mod test_support;

pub use client::{Client, ClientError, EstimateReply, ModelInfo};
pub use daemon::{RunningServer, ServeError, Server, ServerConfig, ServerHandle, DEFAULT_ADDR};
pub use pool::PoolConfig;
pub use registry::{Registry, RegistryError, ServedModel, Snapshot};
