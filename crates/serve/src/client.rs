//! The blocking `psmd` client — what `psmctl` and the loopback tests
//! and benches speak.
//!
//! A [`Client`] owns one connection and keeps one request in flight at
//! a time, so every response on the socket is the answer to its last
//! request (the id is still checked). Concurrency comes from opening
//! more clients — each daemon connection multiplexes through the
//! daemon's readiness loop and submits into the shared pool.
//!
//! The client speaks protocol v2 by default: one-shot estimates travel
//! as binary trace frames ([`Client::estimate_binary`]) and chunked
//! traces stream through [`Client::open_stream`]. [`Client::negotiate`]
//! drops to the JSON-only v1 dialect when the daemon is older;
//! [`Client::estimate_json`] speaks v1's `ESTIMATE` explicitly. The
//! bench harness bypasses the one-in-flight discipline via
//! [`Client::pipeline_request`]/[`Client::pipeline_response`].

use crate::protocol::{self, Frame, Opcode, ProtocolError, Status, PROTOCOL_VERSION};
use psm_persist::{JsonValue, PersistError};
use psm_trace::{FunctionalTrace, SignalSet};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The daemon (or an imposter) sent bytes that are not `psmd`.
    Protocol(ProtocolError),
    /// The daemon's estimation queue is full — retry later. This is the
    /// wire-level `BUSY` status, surfaced as its own variant because
    /// callers handle it differently from a hard error.
    Busy,
    /// The daemon answered with an error message.
    Server(String),
    /// The response payload does not match the documented schema.
    Schema(PersistError),
    /// The daemon closed the connection before answering.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy => write!(f, "daemon busy: estimation queue is full, retry later"),
            ClientError::Server(msg) => write!(f, "daemon error: {msg}"),
            ClientError::Schema(e) => write!(f, "malformed daemon response: {e}"),
            ClientError::Disconnected => write!(f, "daemon closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<PersistError> for ClientError {
    fn from(e: PersistError) -> Self {
        ClientError::Schema(e)
    }
}

/// A successful `ESTIMATE`/`ESTIMATE_BIN` response.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReply {
    /// The model that served the estimate.
    pub model: String,
    /// Its registry version (resolved, when the request left it open).
    pub version: u64,
    /// Per-instant power estimate (mW) — bit-exact across the wire.
    pub estimate: Vec<f64>,
    /// The paper's wrong-state-prediction count for this run.
    pub wrong_state_predictions: usize,
    /// Instants of behaviour unknown to the model.
    pub unknown_instants: usize,
}

impl EstimateReply {
    /// Arithmetic mean of the estimate (0.0 when empty).
    pub fn mean_power(&self) -> f64 {
        if self.estimate.is_empty() {
            0.0
        } else {
            self.estimate.iter().sum::<f64>() / self.estimate.len() as f64
        }
    }
}

/// The incremental answer to one `STREAM_CHUNK`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkReply {
    /// Per-instant power estimate (mW) for *this chunk only*.
    pub estimate: Vec<f64>,
    /// Cumulative wrong-state predictions across the stream so far.
    pub wrong_state_predictions: usize,
    /// Cumulative unknown instants across the stream so far.
    pub unknown_instants: usize,
}

/// The `STREAM_CLOSE` answer: the session's lifetime totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// The model that served the stream.
    pub model: String,
    /// Its resolved registry version.
    pub version: u64,
    /// Total instants estimated across all chunks.
    pub instants: usize,
    /// Total wrong-state predictions.
    pub wrong_state_predictions: usize,
    /// Total unknown instants.
    pub unknown_instants: usize,
}

/// One model of a `LIST`/`RELOAD` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Model name.
    pub name: String,
    /// Registry version.
    pub version: u64,
    /// Artifact format version of the backing file.
    pub format_version: u32,
    /// PSM state count.
    pub states: usize,
    /// Mined proposition count.
    pub propositions: usize,
}

/// A blocking `psmd` client over one TCP connection (v2 by default,
/// v1-compatible after [`Client::negotiate`]).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    next_stream: u32,
    protocol: u8,
}

impl Client {
    /// Connects to a daemon, assuming protocol v2 (every daemon built
    /// from this workspace). Call [`Client::negotiate`] when the peer
    /// might be an older v1 daemon.
    ///
    /// # Errors
    ///
    /// The socket-level [`io::Error`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            next_stream: 1,
            protocol: PROTOCOL_VERSION,
        })
    }

    /// The protocol version this connection speaks (2 until a
    /// negotiation says otherwise).
    pub fn protocol(&self) -> u8 {
        self.protocol
    }

    /// One request/response exchange at an explicit protocol version.
    fn call_v(&mut self, version: u8, op: Opcode, payload: Vec<u8>) -> Result<Frame, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(
            &mut self.stream,
            &Frame::request_v(version, op, id, payload),
        )?;
        let frame = protocol::read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        if frame.request_id != id {
            return Err(ClientError::Server(format!(
                "response id {} does not match request id {id}",
                frame.request_id
            )));
        }
        match frame.status() {
            Some(Status::Ok) => Ok(frame),
            Some(Status::Busy) => Err(ClientError::Busy),
            Some(Status::Error) => Err(ClientError::Server(protocol::parse_error(&frame))),
            None => Err(ClientError::Protocol(ProtocolError::UnknownKind(
                frame.kind,
            ))),
        }
    }

    /// One request/response exchange at the negotiated version.
    fn call(&mut self, op: Opcode, payload: Vec<u8>) -> Result<Frame, ClientError> {
        self.call_v(self.protocol, op, payload)
    }

    /// Fails fast when the connection negotiated down to v1.
    fn require_v2(&self) -> Result<(), ClientError> {
        if self.protocol < 2 {
            return Err(ClientError::Server(
                "peer speaks psmd/v1 only — binary and streaming requests need v2".into(),
            ));
        }
        Ok(())
    }

    /// Probes the daemon with a v1 `PING` — the one frame every daemon
    /// generation accepts — and adopts the highest protocol version both
    /// sides support. Returns the adopted version.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; in particular [`ClientError::Server`] when
    /// the peer does not identify as a psmd daemon at all.
    pub fn negotiate(&mut self) -> Result<u8, ClientError> {
        let frame = self.call_v(1, Opcode::Ping, Vec::new())?;
        let (tag, versions) = protocol::parse_ping_reply(&frame)?;
        if !tag.starts_with("psmd/v") {
            return Err(ClientError::Server(format!(
                "peer identifies as {tag:?}, not a psmd daemon"
            )));
        }
        let best = versions
            .into_iter()
            .filter(|v| *v >= 1 && *v <= PROTOCOL_VERSION)
            .max()
            .unwrap_or(1);
        self.protocol = best;
        Ok(best)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; also checks the daemon names the protocol
    /// version this connection is speaking.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let frame = self.call(Opcode::Ping, Vec::new())?;
        let (tag, _) = protocol::parse_ping_reply(&frame)?;
        let expected = format!("psmd/v{}", self.protocol);
        if tag != expected {
            return Err(ClientError::Server(format!(
                "peer answers {tag:?} where {expected:?} was expected"
            )));
        }
        Ok(())
    }

    /// Estimates `trace` against `model` over the v2 binary codec —
    /// the fast path for large traces (`version: None` = latest).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] under backpressure — the request was *not*
    /// queued and can safely be retried; [`ClientError::Server`] for an
    /// unknown model, a draining daemon, or a v1-only peer.
    pub fn estimate_binary(
        &mut self,
        model: &str,
        version: Option<u64>,
        trace: &FunctionalTrace,
    ) -> Result<EstimateReply, ClientError> {
        self.require_v2()?;
        protocol::validate_model_name(model)?;
        let payload = protocol::estimate_bin_request(model, version, trace);
        let frame = self.call(Opcode::EstimateBin, payload)?;
        let bin = protocol::parse_estimate_bin_reply(&frame)?;
        Ok(EstimateReply {
            model: bin.model,
            version: bin.version,
            estimate: bin.estimate,
            wrong_state_predictions: bin.wrong_state_predictions as usize,
            unknown_instants: bin.unknown_instants as usize,
        })
    }

    /// Estimates `trace` against `model` over the v1 JSON `ESTIMATE`
    /// opcode — the dialect every daemon generation accepts.
    ///
    /// # Errors
    ///
    /// As [`Client::estimate_binary`], minus the v2 requirement.
    pub fn estimate_json(
        &mut self,
        model: &str,
        version: Option<u64>,
        trace: &FunctionalTrace,
    ) -> Result<EstimateReply, ClientError> {
        let payload = protocol::estimate_request(model, version, trace);
        let frame = self.call(Opcode::Estimate, payload)?;
        let doc = frame.json()?;
        Ok(EstimateReply {
            model: doc.str_field("model")?.to_owned(),
            version: doc.u64_field("version")?,
            estimate: doc
                .arr_field("estimate")?
                .iter()
                .map(JsonValue::as_f64)
                .collect::<Result<_, _>>()?,
            wrong_state_predictions: doc.usize_field("wrong_state_predictions")?,
            unknown_instants: doc.usize_field("unknown_instants")?,
        })
    }

    /// Estimates `trace` in one shot (`version: None` = latest).
    ///
    /// # Errors
    ///
    /// As [`Client::estimate_binary`].
    #[deprecated(
        note = "use `estimate_binary` (or `estimate_json` against v1 daemons); \
                this shim routes through one `open_stream` session"
    )]
    pub fn estimate(
        &mut self,
        model: &str,
        version: Option<u64>,
        trace: &FunctionalTrace,
    ) -> Result<EstimateReply, ClientError> {
        let mut stream = self.open_stream(model, version, trace.signals())?;
        let chunk = stream.send_chunk(trace)?;
        let summary = stream.close()?;
        Ok(EstimateReply {
            model: summary.model,
            version: summary.version,
            estimate: chunk.estimate,
            wrong_state_predictions: summary.wrong_state_predictions,
            unknown_instants: summary.unknown_instants,
        })
    }

    /// Opens a streaming estimation session: the daemon pins the model
    /// and interns `signals` once; chunks are cycles-only afterwards.
    /// The concatenated chunk estimates are bit-identical to a one-shot
    /// estimate of the concatenated trace.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown model, a draining daemon,
    /// or a v1-only peer.
    pub fn open_stream(
        &mut self,
        model: &str,
        version: Option<u64>,
        signals: &SignalSet,
    ) -> Result<EstimateStream<'_>, ClientError> {
        self.require_v2()?;
        protocol::validate_model_name(model)?;
        let stream = self.next_stream;
        self.next_stream += 1;
        let payload = protocol::stream_open_request(stream, model, version, signals);
        let frame = self.call(Opcode::StreamOpen, payload)?;
        let doc = frame.json()?;
        let echoed = doc.u64_field("stream")?;
        if echoed != u64::from(stream) {
            return Err(ClientError::Server(format!(
                "daemon opened stream {echoed}, not the requested {stream}"
            )));
        }
        Ok(EstimateStream {
            model: doc.str_field("model")?.to_owned(),
            version: doc.u64_field("version")?,
            client: self,
            stream,
            closed: false,
        })
    }

    /// The daemon's telemetry report, rendered as text.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        let payload = JsonValue::obj([("format", JsonValue::from("text"))]);
        let frame = self.call(Opcode::Stats, payload.render().into_bytes())?;
        Ok(frame.json()?.str_field("stats")?.to_owned())
    }

    /// The daemon's telemetry report, as its JSON document.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats_json(&mut self) -> Result<JsonValue, ClientError> {
        let payload = JsonValue::obj([("format", JsonValue::from("json"))]);
        let frame = self.call(Opcode::Stats, payload.render().into_bytes())?;
        Ok(frame.json()?.field("stats")?.clone())
    }

    /// Lists the models of the daemon's current registry snapshot.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn list(&mut self) -> Result<Vec<ModelInfo>, ClientError> {
        let frame = self.call(Opcode::List, Vec::new())?;
        parse_models(&frame)
    }

    /// Asks the daemon to reload its registry; returns the new model
    /// list on success. A failed reload leaves the old snapshot serving
    /// and surfaces here as [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn reload(&mut self) -> Result<Vec<ModelInfo>, ClientError> {
        let frame = self.call(Opcode::Reload, Vec::new())?;
        parse_models(&frame)
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Opcode::Shutdown, Vec::new())?;
        Ok(())
    }

    /// Writes one request frame without waiting for its response,
    /// returning the request id. Pair each call with one
    /// [`Client::pipeline_response`] — the bench harness uses this to
    /// keep several requests in flight on one connection.
    ///
    /// # Errors
    ///
    /// The socket-level [`ClientError::Io`].
    pub fn pipeline_request(&mut self, op: Opcode, payload: Vec<u8>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(
            &mut self.stream,
            &Frame::request_v(self.protocol, op, id, payload),
        )?;
        Ok(id)
    }

    /// Reads one response frame of a pipelined exchange, whatever its
    /// status. The daemon answers a connection's requests in submission
    /// order, so responses pair with [`Client::pipeline_request`] ids
    /// first-in-first-out.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] on EOF, otherwise socket or framing
    /// errors.
    pub fn pipeline_response(&mut self) -> Result<Frame, ClientError> {
        protocol::read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)
    }
}

/// One open streaming session (see [`Client::open_stream`]). Borrows
/// the client exclusively: a session owns the connection's
/// request/response discipline until closed. Dropping it without
/// [`EstimateStream::close`] sends a best-effort close so the daemon
/// frees the session.
#[derive(Debug)]
pub struct EstimateStream<'a> {
    client: &'a mut Client,
    stream: u32,
    model: String,
    version: u64,
    closed: bool,
}

impl EstimateStream<'_> {
    /// The model serving this stream.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The resolved registry version serving this stream.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Feeds the next chunk and returns its incremental estimate.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] when this session's daemon-side queue is
    /// full — the chunk was *not* applied and resending it preserves the
    /// stream; any other [`ClientError`] for decode failures.
    pub fn send_chunk(&mut self, chunk: &FunctionalTrace) -> Result<ChunkReply, ClientError> {
        let payload = protocol::stream_chunk_request(self.stream, chunk);
        let frame = self.client.call(Opcode::StreamChunk, payload)?;
        let bin = protocol::parse_estimate_bin_reply(&frame)?;
        Ok(ChunkReply {
            estimate: bin.estimate,
            wrong_state_predictions: bin.wrong_state_predictions as usize,
            unknown_instants: bin.unknown_instants as usize,
        })
    }

    /// Closes the stream and returns its lifetime totals.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn close(mut self) -> Result<StreamSummary, ClientError> {
        self.closed = true;
        let payload = protocol::stream_close_request(self.stream);
        let frame = self.client.call(Opcode::StreamClose, payload)?;
        let doc = frame.json()?;
        Ok(StreamSummary {
            model: doc.str_field("model")?.to_owned(),
            version: doc.u64_field("version")?,
            instants: doc.usize_field("instants")?,
            wrong_state_predictions: doc.usize_field("wrong_state_predictions")?,
            unknown_instants: doc.usize_field("unknown_instants")?,
        })
    }
}

impl Drop for EstimateStream<'_> {
    fn drop(&mut self) {
        if !self.closed {
            let payload = protocol::stream_close_request(self.stream);
            let _ = self.client.call(Opcode::StreamClose, payload);
        }
    }
}

fn parse_models(frame: &Frame) -> Result<Vec<ModelInfo>, ClientError> {
    let doc = frame.json()?;
    doc.arr_field("models")?
        .iter()
        .map(|m| {
            Ok(ModelInfo {
                name: m.str_field("name")?.to_owned(),
                version: m.u64_field("version")?,
                format_version: u32::try_from(m.u64_field("format_version")?)
                    .map_err(|_| PersistError::schema("format_version out of range"))?,
                states: m.usize_field("states")?,
                propositions: m.usize_field("propositions")?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Server, ServerConfig};
    use crate::pool::PoolConfig;
    use crate::registry::Registry;
    use crate::test_support::{toy_model_json, toy_trace};
    use std::path::PathBuf;
    use std::time::Duration;

    fn temp_registry(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psm-serve-client-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("toy@1.json"),
            psm_persist::encode_artifact(&toy_model_json()),
        )
        .unwrap();
        dir
    }

    #[test]
    fn full_session_over_loopback() {
        let dir = temp_registry("session");
        let server = Server::bind(ServerConfig::new(&dir)).unwrap();
        let running = server.spawn();
        let mut client = Client::connect(running.addr()).unwrap();

        assert_eq!(client.negotiate().unwrap(), 2);
        client.ping().unwrap();

        let models = client.list().unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!((models[0].name.as_str(), models[0].version), ("toy", 1));
        assert!(models[0].states > 0);

        // The daemon's estimate is bit-identical to estimating directly
        // against the same artifact — over both payload codecs.
        let local = Registry::open(&dir)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        let trace = toy_trace();
        let expected = local.estimate(&trace);
        let expected_bits: Vec<u64> = expected.estimate.iter().map(f64::to_bits).collect();
        let reply = client.estimate_json("toy", None, &trace).unwrap();
        assert_eq!(reply.model, "toy");
        assert_eq!(reply.version, 1);
        assert_eq!(reply.estimate.len(), trace.len());
        let got_bits: Vec<u64> = reply.estimate.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            got_bits, expected_bits,
            "estimates must survive the wire bit-exactly"
        );
        assert_eq!(
            reply.wrong_state_predictions,
            expected.wrong_state_predictions
        );
        assert!(reply.mean_power() > 0.0);
        let bin = client.estimate_binary("toy", None, &trace).unwrap();
        let bin_bits: Vec<u64> = bin.estimate.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bin_bits, expected_bits, "binary codec is bit-exact too");
        assert_eq!(
            bin.wrong_state_predictions,
            expected.wrong_state_predictions
        );

        // Unknown models are structured errors, not hangs.
        let err = client.estimate_json("fft", None, &trace).unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(msg) if msg.contains("fft")),
            "{err}"
        );
        let err = client.estimate_json("toy", Some(9), &trace).unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(msg) if msg.contains("toy@9")),
            "{err}"
        );

        // Stats see the traffic, in both formats.
        let text = client.stats_text().unwrap();
        assert!(text.contains("serve.op.estimate=3"), "{text}");
        assert!(text.contains("serve.op.estimate_bin=1"), "{text}");
        assert!(text.contains("serve.op.list=1"), "{text}");
        let stats = client.stats_json().unwrap();
        let named = stats.arr_field("named_counters").unwrap();
        assert!(!named.is_empty());

        // Hot-reload picks up a new version atomically.
        std::fs::write(
            dir.join("toy@2.json"),
            psm_persist::encode_artifact(&toy_model_json()),
        )
        .unwrap();
        let models = client.reload().unwrap();
        assert_eq!(models.len(), 2);
        let reply = client.estimate_json("toy", None, &trace).unwrap();
        assert_eq!(reply.version, 2);

        // A corrupt artifact fails the reload but keeps serving.
        std::fs::write(dir.join("bad@1.json"), "not an artifact").unwrap();
        let err = client.reload().unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(msg) if msg.contains("bad@1.json")),
            "{err}"
        );
        client.estimate_json("toy", None, &trace).unwrap();

        client.shutdown().unwrap();
        let report = running.join().unwrap();
        assert_eq!(report.named_counter("serve.op.shutdown"), 1);
        assert_eq!(report.named_counter("serve.op.estimate"), 5);
        assert_eq!(report.named_counter("serve.op.estimate_bin"), 1);
        assert_eq!(report.named_counter("serve.unknown_model"), 2);
        assert_eq!(report.named_counter("serve.reload_failures"), 1);
        assert!(report.named_counter("serve.connections") >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deprecated_one_shot_shim_rides_the_session_api() {
        let dir = temp_registry("shim");
        let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
        let mut client = Client::connect(running.addr()).unwrap();
        let trace = toy_trace();
        let local = Registry::open(&dir)
            .unwrap()
            .snapshot()
            .lookup("toy", None)
            .unwrap();
        let expected = local.estimate(&trace);
        #[allow(deprecated)]
        let reply = client.estimate("toy", None, &trace).unwrap();
        assert_eq!(reply.estimate.len(), trace.len());
        let expected_bits: Vec<u64> = expected.estimate.iter().map(f64::to_bits).collect();
        let got_bits: Vec<u64> = reply.estimate.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, expected_bits);
        assert_eq!(
            reply.wrong_state_predictions,
            expected.wrong_state_predictions
        );
        client.shutdown().unwrap();
        let report = running.join().unwrap();
        assert_eq!(report.named_counter("serve.op.stream_open"), 1);
        assert_eq!(report.named_counter("serve.op.stream_chunk"), 1);
        assert_eq!(report.named_counter("serve.op.stream_close"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backpressure_surfaces_as_busy() {
        let dir = temp_registry("busy");
        let mut cfg = ServerConfig::new(&dir);
        cfg.pool = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch: 1,
            stall: Duration::from_millis(500),
        };
        let running = Server::bind(cfg).unwrap().spawn();
        let addr = running.addr();
        let trace = toy_trace();

        // A occupies the worker (stalled 500 ms), B fills the single
        // queue slot, C must bounce with BUSY.
        let t = trace.clone();
        let a = std::thread::spawn(move || {
            Client::connect(addr)
                .unwrap()
                .estimate_json("toy", None, &t)
        });
        std::thread::sleep(Duration::from_millis(150));
        let t = trace.clone();
        let b = std::thread::spawn(move || {
            Client::connect(addr)
                .unwrap()
                .estimate_json("toy", None, &t)
        });
        std::thread::sleep(Duration::from_millis(100));
        let mut c = Client::connect(addr).unwrap();
        let err = c.estimate_json("toy", None, &trace).unwrap_err();
        assert!(matches!(err, ClientError::Busy), "{err}");

        // The accepted requests still complete.
        a.join().unwrap().unwrap();
        b.join().unwrap().unwrap();

        c.shutdown().unwrap();
        let report = running.join().unwrap();
        assert!(report.named_counter("serve.busy") >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_drains_in_flight_estimates() {
        let dir = temp_registry("drain");
        let mut cfg = ServerConfig::new(&dir);
        cfg.pool = PoolConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 8,
            stall: Duration::from_millis(300),
        };
        let running = Server::bind(cfg).unwrap().spawn();
        let addr = running.addr();
        let trace = toy_trace();

        // Two estimates queue behind the stalled worker…
        let mut workers = Vec::new();
        for _ in 0..2 {
            let t = trace.clone();
            workers.push(std::thread::spawn(move || {
                Client::connect(addr)
                    .unwrap()
                    .estimate_json("toy", None, &t)
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        // …and a shutdown lands while they are still in flight.
        Client::connect(addr).unwrap().shutdown().unwrap();
        for w in workers {
            let reply = w.join().unwrap().unwrap();
            assert_eq!(reply.estimate.len(), trace.len(), "drained, not dropped");
        }
        let report = running.join().unwrap();
        assert_eq!(report.named_counter("serve.op.estimate"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
