//! A tiny end-to-end trained model for in-crate tests: one enable line,
//! idle/busy alternation, mined → generated → joined → HMM, rendered as
//! the same `{"table":…,"psm":…,"hmm":…}` JSON body the facade's
//! `TrainedModel::save` writes.

use psm_core::{generate_psm, join, MergePolicy};
use psm_hmm::build_hmm;
use psm_mining::{Miner, MiningConfig};
use psm_persist::{JsonValue, Persist};
use psm_trace::{Bits, Direction, FunctionalTrace, PowerTrace, SignalSet};

/// Idle/busy enable pattern shared by the trace and the power profile.
const PATTERN: [u64; 24] = [
    1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0,
];

/// The training (and test-workload) functional trace.
pub fn toy_trace() -> FunctionalTrace {
    let mut signals = SignalSet::new();
    signals.push("en", 1, Direction::Input).unwrap();
    let mut phi = FunctionalTrace::new(signals);
    for v in PATTERN {
        phi.push_cycle(vec![Bits::from_u64(v, 1)]).unwrap();
    }
    phi
}

/// Trains the toy model and renders its servable JSON body.
pub fn toy_model_json() -> JsonValue {
    let phi = toy_trace();
    let mined = Miner::new(MiningConfig::default()).mine(&[&phi]).unwrap();
    let power: PowerTrace = PATTERN
        .iter()
        .map(|&v| if v == 1 { 9.0 } else { 3.0 })
        .collect();
    let psm = generate_psm(&mined.traces[0], &power, 0).unwrap();
    let joined = join(&[psm], &MergePolicy::default());
    let hmm = build_hmm(&joined, mined.table.len());
    JsonValue::obj([
        ("table", mined.table.to_json()),
        ("psm", joined.to_json()),
        ("hmm", hmm.to_json()),
    ])
}
