//! The `psmd` framed wire protocol, versions 1 (`psmd/v1`) and 2
//! (`psmd/v2`).
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic `PSMD`
//! 4       1     protocol version (1 or 2)
//! 5       1     kind: request opcode (0x01..) or response status (0x80..)
//! 6       8     request id, u64 little-endian (echoed in the response)
//! 14      4     payload length, u32 little-endian (≤ 64 MiB)
//! 18      n     payload: a UTF-8 JSON document or a binary blob
//! ```
//!
//! The fixed header makes the protocol self-describing enough to fail
//! fast: a client that connects to the wrong port gets a structured
//! [`ProtocolError::BadMagic`], not a hung read. The 64 MiB payload cap
//! bounds what one malicious or confused peer can make the daemon
//! allocate.
//!
//! **v1** payloads are JSON via [`psm_persist::JsonValue`] — the same
//! dependency-free document model the artifact files use — so an
//! estimate travels the wire through the identical shortest-round-trip
//! float writer that persisted the model, and survives bit-exactly.
//!
//! **v2** keeps JSON for control opcodes but moves bulk numeric data to
//! the compact binary codec of [`psm_trace::binary`]: the
//! [`Opcode::EstimateBin`] one-shot and the
//! [`Opcode::StreamOpen`]/[`Opcode::StreamChunk`]/[`Opcode::StreamClose`]
//! session opcodes frame traces as an interned-signal dictionary plus raw
//! little-endian cycle words, and estimates return as raw `f64` bits —
//! still bit-exact, without the JSON tax. Responses echo the request
//! frame's version byte, so a v1-built client never sees a version it
//! would reject; negotiation rides on `PING` (see
//! [`ping_reply`]/[`parse_ping_reply`]).

use psm_hmm::HmmOutcome;
use psm_persist::{JsonValue, Persist, PersistError};
use psm_trace::binary::{self, BinCodecError, Reader};
use psm_trace::{FunctionalTrace, SignalSet};
use std::io::{self, Read, Write};

/// First bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PSMD";

/// The newest wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 2;

/// The oldest wire protocol version this build still accepts.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame payload, in bytes.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Size of the fixed frame header.
pub const HEADER_LEN: usize = 18;

/// A request kind (client → daemon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Estimate power for a submitted functional trace.
    Estimate,
    /// Fetch the daemon's telemetry report (text or JSON).
    Stats,
    /// Atomically reload the model registry from disk.
    Reload,
    /// List the models of the current registry snapshot.
    List,
    /// Liveness probe.
    Ping,
    /// Drain in-flight work, flush stats, exit.
    Shutdown,
    /// Estimate power for a binary-encoded trace (v2).
    EstimateBin,
    /// Open a streaming estimation session (v2).
    StreamOpen,
    /// Feed one chunk of cycles into an open session (v2).
    StreamChunk,
    /// Close a session, collecting its summary (v2).
    StreamClose,
}

impl Opcode {
    /// The wire byte of this opcode.
    pub fn as_u8(self) -> u8 {
        match self {
            Opcode::Estimate => 0x01,
            Opcode::Stats => 0x02,
            Opcode::Reload => 0x03,
            Opcode::List => 0x04,
            Opcode::Ping => 0x05,
            Opcode::Shutdown => 0x06,
            Opcode::EstimateBin => 0x07,
            Opcode::StreamOpen => 0x08,
            Opcode::StreamChunk => 0x09,
            Opcode::StreamClose => 0x0a,
        }
    }

    /// Decodes a wire byte, `None` when it is not a request opcode.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Estimate),
            0x02 => Some(Opcode::Stats),
            0x03 => Some(Opcode::Reload),
            0x04 => Some(Opcode::List),
            0x05 => Some(Opcode::Ping),
            0x06 => Some(Opcode::Shutdown),
            0x07 => Some(Opcode::EstimateBin),
            0x08 => Some(Opcode::StreamOpen),
            0x09 => Some(Opcode::StreamChunk),
            0x0a => Some(Opcode::StreamClose),
            _ => None,
        }
    }

    /// Lower-case opcode name, used for per-opcode telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Estimate => "estimate",
            Opcode::Stats => "stats",
            Opcode::Reload => "reload",
            Opcode::List => "list",
            Opcode::Ping => "ping",
            Opcode::Shutdown => "shutdown",
            Opcode::EstimateBin => "estimate_bin",
            Opcode::StreamOpen => "stream_open",
            Opcode::StreamChunk => "stream_chunk",
            Opcode::StreamClose => "stream_close",
        }
    }

    /// The lowest protocol version whose frames may carry this opcode.
    /// The daemon rejects v2-only opcodes arriving in v1 frames with a
    /// structured `ERROR` instead of guessing at the payload format.
    pub fn min_version(self) -> u8 {
        match self {
            Opcode::Estimate
            | Opcode::Stats
            | Opcode::Reload
            | Opcode::List
            | Opcode::Ping
            | Opcode::Shutdown => 1,
            Opcode::EstimateBin
            | Opcode::StreamOpen
            | Opcode::StreamChunk
            | Opcode::StreamClose => 2,
        }
    }

    /// Every opcode, in wire-byte order.
    pub const ALL: [Opcode; 10] = [
        Opcode::Estimate,
        Opcode::Stats,
        Opcode::Reload,
        Opcode::List,
        Opcode::Ping,
        Opcode::Shutdown,
        Opcode::EstimateBin,
        Opcode::StreamOpen,
        Opcode::StreamChunk,
        Opcode::StreamClose,
    ];
}

/// A response kind (daemon → client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request succeeded; the payload is the result.
    Ok,
    /// The request failed; the payload carries `{"error": …}`.
    Error,
    /// The estimation queue is full — explicit backpressure. Retry later.
    Busy,
}

impl Status {
    /// The wire byte of this status.
    pub fn as_u8(self) -> u8 {
        match self {
            Status::Ok => 0x80,
            Status::Error => 0x81,
            Status::Busy => 0x82,
        }
    }

    /// Decodes a wire byte, `None` when it is not a response status.
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0x80 => Some(Status::Ok),
            0x81 => Some(Status::Error),
            0x82 => Some(Status::Busy),
            _ => None,
        }
    }
}

/// One decoded frame: the version and kind bytes, the request id and the
/// raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The protocol version byte of this frame. Requests carry the
    /// version the client chose; responses echo the request's version so
    /// old clients never see a byte they would reject.
    pub version: u8,
    /// The kind byte: a request [`Opcode`] or a response [`Status`].
    pub kind: u8,
    /// Correlates a response with its request. The daemon echoes it
    /// verbatim, which is what lets the pool answer batched requests out
    /// of submission order.
    pub request_id: u64,
    /// The payload bytes (possibly empty).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a request frame speaking the newest protocol version.
    pub fn request(op: Opcode, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame::request_v(PROTOCOL_VERSION, op, request_id, payload)
    }

    /// Builds a request frame pinned to a specific protocol version.
    pub fn request_v(version: u8, op: Opcode, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version,
            kind: op.as_u8(),
            request_id,
            payload,
        }
    }

    /// Builds a response frame speaking the newest protocol version.
    pub fn response(status: Status, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame::response_v(PROTOCOL_VERSION, status, request_id, payload)
    }

    /// Builds a response frame pinned to a specific protocol version —
    /// the daemon answers every request with the request's own version.
    pub fn response_v(version: u8, status: Status, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version,
            kind: status.as_u8(),
            request_id,
            payload,
        }
    }

    /// The frame's request opcode, if it is a request.
    pub fn opcode(&self) -> Option<Opcode> {
        Opcode::from_u8(self.kind)
    }

    /// The frame's response status, if it is a response.
    pub fn status(&self) -> Option<Status> {
        Status::from_u8(self.kind)
    }

    /// Parses the payload as a JSON document; an empty payload is `Null`.
    pub fn json(&self) -> Result<JsonValue, ProtocolError> {
        if self.payload.is_empty() {
            return Ok(JsonValue::Null);
        }
        let text = std::str::from_utf8(&self.payload)
            .map_err(|_| ProtocolError::Payload(PersistError::schema("payload is not UTF-8")))?;
        JsonValue::parse(text).map_err(ProtocolError::Payload)
    }
}

/// A wire-level failure: bad bytes, an unsupported peer, or a payload
/// that is not the JSON the opcode requires.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer did not send the `PSMD` magic — wrong port or protocol.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The kind byte is neither a known opcode nor a known status.
    UnknownKind(u8),
    /// The payload is not the JSON document the opcode requires.
    Payload(PersistError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::BadMagic(bytes) => {
                write!(f, "bad frame magic {bytes:?} (expected \"PSMD\")")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks v{PROTOCOL_VERSION})"
                )
            }
            ProtocolError::Oversize(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_PAYLOAD} cap"
                )
            }
            ProtocolError::UnknownKind(b) => write!(f, "unknown frame kind byte {b:#04x}"),
            ProtocolError::Payload(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<PersistError> for ProtocolError {
    fn from(e: PersistError) -> Self {
        ProtocolError::Payload(e)
    }
}

/// Binary-codec failures surface as payload errors: the frame itself was
/// sound, its body was not.
impl From<BinCodecError> for ProtocolError {
    fn from(e: BinCodecError) -> Self {
        ProtocolError::Payload(PersistError::schema(e.to_string()))
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates the writer's [`io::Error`]s. Panics are impossible: an
/// oversize payload is rejected as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let len = u32::try_from(frame.payload.len())
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "payload of {} bytes exceeds the frame cap",
                    frame.payload.len()
                ),
            )
        })?;
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = frame.version;
    header[5] = frame.kind;
    header[6..14].copy_from_slice(&frame.request_id.to_le_bytes());
    header[14..18].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
///
/// # Errors
///
/// [`ProtocolError::Io`] mid-frame (including EOF inside a frame, which
/// surfaces as [`io::ErrorKind::UnexpectedEof`]), or a structural error
/// for bad magic / version / kind / oversize payloads.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ProtocolError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => return read_frame_after(r, first[0]).map(Some),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
}

/// Reads the rest of a frame whose first magic byte has already been
/// consumed.
///
/// The daemon's connection loop reads the first byte with a short
/// timeout so it can poll the shutdown flag while idle; only that single
/// byte can time out without desynchronising the stream, so the
/// remainder is read here with plain blocking `read_exact`.
///
/// # Errors
///
/// Same conditions as [`read_frame`], except that EOF anywhere is
/// [`ProtocolError::Io`] (the frame has definitely started).
pub fn read_frame_after(r: &mut impl Read, first: u8) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    let (version, kind, request_id, len) = validate_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        version,
        kind,
        request_id,
        payload,
    })
}

/// Validates a complete frame header, returning `(version, kind,
/// request_id, payload_len)`.
fn validate_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u8, u64, u32), ProtocolError> {
    if header[..4] != MAGIC {
        return Err(ProtocolError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = header[4];
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let kind = header[5];
    if Opcode::from_u8(kind).is_none() && Status::from_u8(kind).is_none() {
        return Err(ProtocolError::UnknownKind(kind));
    }
    let request_id = u64::from_le_bytes(header[6..14].try_into().expect("8-byte slice"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversize(len));
    }
    Ok((version, kind, request_id, len))
}

/// Extracts one complete frame from the front of an in-memory buffer —
/// the zero-copy entry point of the daemon's readiness loop, which
/// accumulates nonblocking reads and parses at frame granularity.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a frame
/// (more bytes must arrive), or `Ok(Some((frame, consumed)))` where
/// `consumed` bytes should be drained from the buffer's front.
///
/// # Errors
///
/// Structural errors (bad magic / version / kind / oversize) surface as
/// soon as the 18-byte header is present, so a peer streaming garbage is
/// rejected without waiting for its declared payload.
pub fn parse_frame_bytes(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtocolError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("18-byte slice");
    let (version, kind, request_id, len) = validate_header(header)?;
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Frame {
            version,
            kind,
            request_id,
            payload: buf[HEADER_LEN..total].to_vec(),
        },
        total,
    )))
}

// ---------------------------------------------------------------------
// Payload builders/parsers shared by the daemon and the client.
// ---------------------------------------------------------------------

/// Builds an `ESTIMATE` request payload: the target model (optionally
/// pinned to a version) and the functional trace to estimate.
pub fn estimate_request(model: &str, version: Option<u64>, trace: &FunctionalTrace) -> Vec<u8> {
    let mut fields = vec![("model", JsonValue::from(model))];
    if let Some(v) = version {
        fields.push(("version", JsonValue::from(v)));
    }
    fields.push(("trace", trace.to_json()));
    JsonValue::obj(fields).render().into_bytes()
}

/// Parses an `ESTIMATE` request payload.
///
/// # Errors
///
/// [`ProtocolError::Payload`] when the payload is not the documented
/// shape or the embedded trace is malformed.
pub fn parse_estimate_request(
    payload: &Frame,
) -> Result<(String, Option<u64>, FunctionalTrace), ProtocolError> {
    let doc = payload.json()?;
    let model = doc.str_field("model")?.to_owned();
    let version = match doc.get("version") {
        Some(v) => Some(v.as_u64()?),
        None => None,
    };
    let trace = FunctionalTrace::from_json(doc.field("trace")?)?;
    Ok((model, version, trace))
}

/// Builds the `OK` payload of an `ESTIMATE` response.
///
/// The per-instant estimate travels as a JSON array rendered through the
/// shortest-round-trip float writer, so the client recovers the daemon's
/// `f64`s bit-exactly.
pub fn estimate_reply(model: &str, version: u64, outcome: &HmmOutcome) -> Vec<u8> {
    JsonValue::obj([
        ("model", JsonValue::from(model)),
        ("version", JsonValue::from(version)),
        (
            "estimate",
            JsonValue::arr(outcome.estimate.iter().map(JsonValue::from_f64)),
        ),
        (
            "wrong_state_predictions",
            JsonValue::from(outcome.wrong_state_predictions),
        ),
        (
            "unknown_instants",
            JsonValue::from(outcome.unknown_instants),
        ),
    ])
    .render()
    .into_bytes()
}

// ---------------------------------------------------------------------
// v2 binary payloads: one-shot and streaming estimation.
// ---------------------------------------------------------------------

/// Magic bytes opening a binary estimate *reply* payload.
pub const BIN_REPLY_MAGIC: [u8; 4] = *b"PSTE";

/// Greatest model-name length in bytes the binary payloads can carry
/// (they length-prefix the name with a `u16`).
pub const MAX_MODEL_NAME_BYTES: usize = u16::MAX as usize;

/// Checks that `model` fits the binary payloads' `u16` length prefix.
///
/// Request builders call `put_name` infallibly, so every path that
/// accepts an arbitrary model name must validate it first — truncating
/// would silently ask the daemon about a *different* (shortened) name.
///
/// # Errors
///
/// [`ProtocolError::Payload`] for names over [`MAX_MODEL_NAME_BYTES`].
pub fn validate_model_name(model: &str) -> Result<(), ProtocolError> {
    if model.len() > MAX_MODEL_NAME_BYTES {
        return Err(ProtocolError::Payload(PersistError::schema(format!(
            "model name of {} bytes exceeds the wire limit of {MAX_MODEL_NAME_BYTES}",
            model.len()
        ))));
    }
    Ok(())
}

/// Appends `u16 len + bytes` of a model name.
///
/// Callers with externally supplied names go through
/// [`validate_model_name`] first; names decoded off the wire and
/// registry names (bounded by the filesystem) always fit.
fn put_name(out: &mut Vec<u8>, model: &str) {
    let name = model.as_bytes();
    debug_assert!(
        name.len() <= MAX_MODEL_NAME_BYTES,
        "model name exceeds the u16 length prefix; call validate_model_name first"
    );
    let len = name.len().min(MAX_MODEL_NAME_BYTES);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&name[..len]);
}

/// Reads a `u16 len + bytes` model name.
fn take_name(r: &mut Reader<'_>) -> Result<String, ProtocolError> {
    let len = r.u16()? as usize;
    let raw = r.bytes(len)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| ProtocolError::Payload(PersistError::schema("model name is not UTF-8")))
}

/// Appends the optional pinned model version.
fn put_version(out: &mut Vec<u8>, version: Option<u64>) {
    match version {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Reads the optional pinned model version.
fn take_version(r: &mut Reader<'_>) -> Result<Option<u64>, ProtocolError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        other => Err(ProtocolError::Payload(PersistError::schema(format!(
            "version presence byte must be 0 or 1, got {other}"
        )))),
    }
}

/// Builds an `ESTIMATE_BIN` request payload: binary codec header, model
/// selector, then the trace as dictionary + cycles frames.
pub fn estimate_bin_request(model: &str, version: Option<u64>, trace: &FunctionalTrace) -> Vec<u8> {
    let mut out = Vec::new();
    binary::write_header(&mut out);
    put_name(&mut out, model);
    put_version(&mut out, version);
    binary::write_dict(trace.signals(), &mut out);
    binary::write_cycles(trace, &mut out);
    out
}

/// Parses an `ESTIMATE_BIN` request payload.
///
/// # Errors
///
/// [`ProtocolError::Payload`] for truncated, bad-magic or otherwise
/// malformed binary bodies — always a structured error, never a panic.
pub fn parse_estimate_bin_request(
    frame: &Frame,
) -> Result<(String, Option<u64>, FunctionalTrace), ProtocolError> {
    let mut r = Reader::new(&frame.payload);
    binary::read_header(&mut r)?;
    let model = take_name(&mut r)?;
    let version = take_version(&mut r)?;
    let signals = binary::read_dict(&mut r)?;
    let mut trace = FunctionalTrace::new(signals);
    while !r.is_empty() {
        binary::read_cycles_into(&mut r, &mut trace)?;
    }
    Ok((model, version, trace))
}

/// Builds a `STREAM_OPEN` request payload: the client-chosen stream id,
/// the model selector and the session's signal dictionary (sent once —
/// chunks are cycles-only afterwards).
pub fn stream_open_request(
    stream: u32,
    model: &str,
    version: Option<u64>,
    signals: &SignalSet,
) -> Vec<u8> {
    let mut out = Vec::new();
    binary::write_header(&mut out);
    out.extend_from_slice(&stream.to_le_bytes());
    put_name(&mut out, model);
    put_version(&mut out, version);
    binary::write_dict(signals, &mut out);
    out
}

/// Parses a `STREAM_OPEN` request payload.
pub fn parse_stream_open_request(
    frame: &Frame,
) -> Result<(u32, String, Option<u64>, SignalSet), ProtocolError> {
    let mut r = Reader::new(&frame.payload);
    binary::read_header(&mut r)?;
    let stream = r.u32()?;
    let model = take_name(&mut r)?;
    let version = take_version(&mut r)?;
    let signals = binary::read_dict(&mut r)?;
    if !r.is_empty() {
        return Err(ProtocolError::Payload(PersistError::schema(
            "trailing bytes after STREAM_OPEN dictionary",
        )));
    }
    Ok((stream, model, version, signals))
}

/// Builds a `STREAM_CHUNK` request payload: the stream id plus the
/// chunk's cycles (no dictionary — the session interned it at open).
pub fn stream_chunk_request(stream: u32, chunk: &FunctionalTrace) -> Vec<u8> {
    let mut out = Vec::new();
    binary::write_header(&mut out);
    out.extend_from_slice(&stream.to_le_bytes());
    binary::write_cycles(chunk, &mut out);
    out
}

/// Builds a `STREAM_CLOSE` request payload: just the stream id.
pub fn stream_close_request(stream: u32) -> Vec<u8> {
    let mut out = Vec::new();
    binary::write_header(&mut out);
    out.extend_from_slice(&stream.to_le_bytes());
    out
}

/// Parses the stream id common to `STREAM_CHUNK`/`STREAM_CLOSE` payloads
/// without touching the cycle data that may follow.
pub fn parse_stream_id(frame: &Frame) -> Result<u32, ProtocolError> {
    let mut r = Reader::new(&frame.payload);
    binary::read_header(&mut r)?;
    Ok(r.u32()?)
}

/// Parses the cycles of a `STREAM_CHUNK` payload against the session's
/// interned dictionary, returning the decoded chunk.
pub fn parse_stream_chunk_cycles(
    frame: &Frame,
    signals: &SignalSet,
) -> Result<FunctionalTrace, ProtocolError> {
    let mut r = Reader::new(&frame.payload);
    binary::read_header(&mut r)?;
    let _stream = r.u32()?;
    let mut chunk = FunctionalTrace::new(signals.clone());
    while !r.is_empty() {
        binary::read_cycles_into(&mut r, &mut chunk)?;
    }
    Ok(chunk)
}

/// A parsed binary estimate reply — the v2 counterpart of the JSON
/// `ESTIMATE` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct BinEstimate {
    /// Name of the model that produced the estimate.
    pub model: String,
    /// Registry version of that model.
    pub version: u64,
    /// Per-instant power estimate, recovered bit-exactly from raw
    /// little-endian `f64` bits.
    pub estimate: Vec<f64>,
    /// Wrong-state predictions (cumulative across a stream's chunks).
    pub wrong_state_predictions: u64,
    /// Unknown instants (cumulative across a stream's chunks).
    pub unknown_instants: u64,
}

/// Builds the binary `OK` payload answering `ESTIMATE_BIN` and
/// `STREAM_CHUNK`: raw `f64` bits, no JSON float round-trip needed.
///
/// ```text
/// "PSTE" ver:u8 model_len:u16 model version:u64 wrong:u64 unknown:u64
/// n:u32 { estimate_bits:u64 }*
/// ```
pub fn estimate_bin_reply(
    model: &str,
    version: u64,
    estimate: &[f64],
    wrong_state_predictions: u64,
    unknown_instants: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(31 + model.len() + estimate.len() * 8);
    out.extend_from_slice(&BIN_REPLY_MAGIC);
    out.push(binary::VERSION);
    put_name(&mut out, model);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&wrong_state_predictions.to_le_bytes());
    out.extend_from_slice(&unknown_instants.to_le_bytes());
    out.extend_from_slice(&(estimate.len() as u32).to_le_bytes());
    for v in estimate {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Parses a binary estimate reply payload.
pub fn parse_estimate_bin_reply(frame: &Frame) -> Result<BinEstimate, ProtocolError> {
    let mut r = Reader::new(&frame.payload);
    let magic = r.bytes(4)?;
    if magic != BIN_REPLY_MAGIC {
        return Err(ProtocolError::Payload(PersistError::schema(
            "binary estimate reply does not start with PSTE",
        )));
    }
    let codec = r.u8()?;
    if codec != binary::VERSION {
        return Err(ProtocolError::Payload(PersistError::schema(format!(
            "unsupported binary reply codec version {codec}"
        ))));
    }
    let model = take_name(&mut r)?;
    let version = r.u64()?;
    let wrong_state_predictions = r.u64()?;
    let unknown_instants = r.u64()?;
    let n = r.u32()? as usize;
    if (r.remaining() as u64) < (n as u64) * 8 {
        return Err(BinCodecError::Truncated {
            offset: r.offset(),
            need: n * 8,
            have: r.remaining(),
        }
        .into());
    }
    let mut estimate = Vec::with_capacity(n);
    for _ in 0..n {
        estimate.push(f64::from_bits(r.u64()?));
    }
    Ok(BinEstimate {
        model,
        version,
        estimate,
        wrong_state_predictions,
        unknown_instants,
    })
}

/// Builds the JSON `OK` payload of a `STREAM_OPEN` response.
pub fn stream_open_reply(stream: u32, model: &str, version: u64) -> Vec<u8> {
    JsonValue::obj([
        ("stream", JsonValue::from(stream as u64)),
        ("model", JsonValue::from(model)),
        ("version", JsonValue::from(version)),
    ])
    .render()
    .into_bytes()
}

/// Builds the JSON `OK` payload of a `STREAM_CLOSE` response: the
/// session's lifetime totals.
pub fn stream_close_reply(
    stream: u32,
    model: &str,
    version: u64,
    instants: u64,
    wrong_state_predictions: u64,
    unknown_instants: u64,
) -> Vec<u8> {
    JsonValue::obj([
        ("stream", JsonValue::from(stream as u64)),
        ("model", JsonValue::from(model)),
        ("version", JsonValue::from(version)),
        ("instants", JsonValue::from(instants)),
        (
            "wrong_state_predictions",
            JsonValue::from(wrong_state_predictions),
        ),
        ("unknown_instants", JsonValue::from(unknown_instants)),
    ])
    .render()
    .into_bytes()
}

// ---------------------------------------------------------------------
// Version negotiation over PING.
// ---------------------------------------------------------------------

/// Builds the `OK` payload of a `PING` response for a request that
/// arrived with protocol version `version`.
///
/// The `protocol` field names the version the conversation is using —
/// v1-built clients assert it is exactly `"psmd/v1"` — while the
/// `versions` array advertises everything this daemon accepts, which is
/// what lets a v2-capable client upgrade after a v1 probe. v1 clients
/// ignore unknown fields, so the advertisement is fully backward
/// compatible.
pub fn ping_reply(version: u8) -> Vec<u8> {
    JsonValue::obj([
        ("protocol", JsonValue::from(format!("psmd/v{version}"))),
        (
            "versions",
            JsonValue::arr(
                (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).map(|v| JsonValue::from(v as u64)),
            ),
        ),
    ])
    .render()
    .into_bytes()
}

/// Parses a `PING` response: the protocol tag plus the peer's supported
/// versions. A v1 daemon predates the `versions` field; its absence
/// means "v1 only".
pub fn parse_ping_reply(frame: &Frame) -> Result<(String, Vec<u8>), ProtocolError> {
    let doc = frame.json()?;
    let protocol = doc.str_field("protocol")?.to_owned();
    let versions = match doc.get("versions") {
        Some(JsonValue::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for v in items {
                out.push(u8::try_from(v.as_u64()?).map_err(|_| {
                    ProtocolError::Payload(PersistError::schema("protocol version exceeds u8"))
                })?);
            }
            out
        }
        _ => vec![1],
    };
    Ok((protocol, versions))
}

/// Builds an `ERROR` response payload.
pub fn error_payload(message: &str) -> Vec<u8> {
    JsonValue::obj([("error", JsonValue::from(message))])
        .render()
        .into_bytes()
}

/// Extracts the message of an `ERROR` response payload, falling back to
/// a generic description when the payload itself is malformed.
pub fn parse_error(frame: &Frame) -> String {
    frame
        .json()
        .ok()
        .and_then(|doc| doc.str_field("error").map(str::to_owned).ok())
        .unwrap_or_else(|| "unspecified server error".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_trace::{Bits, Direction, SignalSet};

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(&got, frame);
        got
    }

    #[test]
    fn frames_round_trip() {
        round_trip(&Frame::request(Opcode::Ping, 7, Vec::new()));
        round_trip(&Frame::request(Opcode::Estimate, u64::MAX, b"{}".to_vec()));
        for status in [Status::Ok, Status::Error, Status::Busy] {
            round_trip(&Frame::response(status, 42, b"{\"a\":1}".to_vec()));
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_an_error() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::request(Opcode::Ping, 1, Vec::new())).unwrap();
        buf.truncate(HEADER_LEN - 3);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)), "{err}");
    }

    #[test]
    fn structural_failures_are_structured() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::request(Opcode::Ping, 1, Vec::new())).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::BadMagic(_))
        ));

        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::UnsupportedVersion(9))
        ));

        let mut bad = buf.clone();
        bad[5] = 0x7f;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::UnknownKind(0x7f))
        ));

        let mut bad = buf;
        bad[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::Oversize(_))
        ));
    }

    #[test]
    fn oversize_writes_are_rejected_without_panicking() {
        // Fake the length without allocating 64 MiB: write_frame checks the
        // declared length before touching the wire.
        let frame = Frame {
            version: PROTOCOL_VERSION,
            kind: Opcode::Estimate.as_u8(),
            request_id: 1,
            payload: vec![0u8; (MAX_PAYLOAD as usize) + 1],
        };
        let err = write_frame(&mut Vec::new(), &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn estimate_request_round_trips() {
        let mut signals = SignalSet::new();
        signals.push("en", 1, Direction::Input).unwrap();
        let mut trace = FunctionalTrace::new(signals);
        trace.push_cycle(vec![Bits::from_bool(true)]).unwrap();

        let payload = estimate_request("ram1k", Some(3), &trace);
        let frame = Frame::request(Opcode::Estimate, 5, payload);
        let (model, version, back) = parse_estimate_request(&frame).unwrap();
        assert_eq!(model, "ram1k");
        assert_eq!(version, Some(3));
        assert_eq!(back, trace);

        let payload = estimate_request("ram1k", None, &trace);
        let frame = Frame::request(Opcode::Estimate, 6, payload);
        let (_, version, _) = parse_estimate_request(&frame).unwrap();
        assert_eq!(version, None);
    }

    #[test]
    fn error_payloads_degrade_gracefully() {
        let frame = Frame::response(Status::Error, 1, error_payload("no such model"));
        assert_eq!(parse_error(&frame), "no such model");
        let frame = Frame::response(Status::Error, 1, b"garbage".to_vec());
        assert_eq!(parse_error(&frame), "unspecified server error");
    }

    #[test]
    fn opcode_bytes_and_names_are_stable() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op.as_u8()), Some(op));
            assert!(Status::from_u8(op.as_u8()).is_none());
            assert!(!op.name().is_empty());
            assert!(op.min_version() >= 1 && op.min_version() <= PROTOCOL_VERSION);
        }
        assert!(Opcode::from_u8(0x80).is_none());
        // The v1 wire bytes must never move.
        assert_eq!(Opcode::Estimate.as_u8(), 0x01);
        assert_eq!(Opcode::Shutdown.as_u8(), 0x06);
        assert_eq!(Opcode::EstimateBin.as_u8(), 0x07);
        assert_eq!(Opcode::StreamClose.as_u8(), 0x0a);
    }

    #[test]
    fn both_protocol_versions_round_trip_and_are_preserved() {
        for version in [1u8, 2] {
            let frame = Frame::request_v(version, Opcode::Ping, 9, Vec::new());
            let mut buf = Vec::new();
            write_frame(&mut buf, &frame).unwrap();
            assert_eq!(buf[4], version, "header carries the frame's version");
            let got = read_frame(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(got.version, version);
        }
    }

    #[test]
    fn parse_frame_bytes_handles_partials_and_pipelining() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::request(Opcode::Ping, 1, Vec::new())).unwrap();
        write_frame(&mut buf, &Frame::request(Opcode::List, 2, Vec::new())).unwrap();

        // Every proper prefix of the first frame parses to "need more".
        for cut in 0..HEADER_LEN {
            assert!(parse_frame_bytes(&buf[..cut]).unwrap().is_none());
        }
        // Both pipelined frames come out in order.
        let (first, used) = parse_frame_bytes(&buf).unwrap().unwrap();
        assert_eq!(first.opcode(), Some(Opcode::Ping));
        let (second, used2) = parse_frame_bytes(&buf[used..]).unwrap().unwrap();
        assert_eq!(second.opcode(), Some(Opcode::List));
        assert_eq!(used + used2, buf.len());

        // Structural garbage fails as soon as the header is complete.
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(matches!(
            parse_frame_bytes(&bad),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut bad = buf;
        bad[4] = 77;
        assert!(matches!(
            parse_frame_bytes(&bad),
            Err(ProtocolError::UnsupportedVersion(77))
        ));
    }

    fn two_cycle_trace() -> FunctionalTrace {
        let mut signals = SignalSet::new();
        signals.push("en", 1, Direction::Input).unwrap();
        signals.push("q", 8, Direction::Output).unwrap();
        let mut trace = FunctionalTrace::new(signals);
        trace
            .push_cycle(vec![Bits::from_bool(true), Bits::from_u64(3, 8)])
            .unwrap();
        trace
            .push_cycle(vec![Bits::from_bool(false), Bits::from_u64(250, 8)])
            .unwrap();
        trace
    }

    #[test]
    fn estimate_bin_request_round_trips() {
        let trace = two_cycle_trace();
        let payload = estimate_bin_request("aes", Some(4), &trace);
        let frame = Frame::request(Opcode::EstimateBin, 11, payload);
        let (model, version, back) = parse_estimate_bin_request(&frame).unwrap();
        assert_eq!(model, "aes");
        assert_eq!(version, Some(4));
        assert_eq!(back, trace);

        let frame = Frame::request(
            Opcode::EstimateBin,
            12,
            estimate_bin_request("aes", None, &trace),
        );
        let (_, version, _) = parse_estimate_bin_request(&frame).unwrap();
        assert_eq!(version, None);
    }

    #[test]
    fn oversized_model_names_are_rejected_not_truncated() {
        assert!(validate_model_name("aes").is_ok());
        assert!(validate_model_name(&"x".repeat(MAX_MODEL_NAME_BYTES)).is_ok());
        let err = validate_model_name(&"x".repeat(MAX_MODEL_NAME_BYTES + 1)).unwrap_err();
        assert!(err.to_string().contains("wire limit"), "{err}");
    }

    #[test]
    fn malformed_binary_estimate_requests_are_structured_errors() {
        let trace = two_cycle_trace();
        let good = estimate_bin_request("aes", None, &trace);

        // Truncation at every prefix: error or shorter trace, no panic.
        for cut in 0..good.len() {
            let frame = Frame::request(Opcode::EstimateBin, 1, good[..cut].to_vec());
            if let Ok((_, _, partial)) = parse_estimate_bin_request(&frame) {
                assert!(partial.len() < trace.len(), "cut at {cut}");
            }
        }

        // Bad inner magic.
        let mut bad = good.clone();
        bad[0] = b'J';
        let frame = Frame::request(Opcode::EstimateBin, 1, bad);
        assert!(matches!(
            parse_estimate_bin_request(&frame),
            Err(ProtocolError::Payload(_))
        ));
    }

    #[test]
    fn stream_payloads_round_trip() {
        let trace = two_cycle_trace();
        let open = Frame::request(
            Opcode::StreamOpen,
            1,
            stream_open_request(7, "multsum", Some(2), trace.signals()),
        );
        let (stream, model, version, signals) = parse_stream_open_request(&open).unwrap();
        assert_eq!((stream, model.as_str(), version), (7, "multsum", Some(2)));
        assert_eq!(signals.len(), trace.signals().len());

        let chunk = Frame::request(Opcode::StreamChunk, 2, stream_chunk_request(7, &trace));
        assert_eq!(parse_stream_id(&chunk).unwrap(), 7);
        let decoded = parse_stream_chunk_cycles(&chunk, &signals).unwrap();
        assert_eq!(decoded, trace);

        let close = Frame::request(Opcode::StreamClose, 3, stream_close_request(7));
        assert_eq!(parse_stream_id(&close).unwrap(), 7);
    }

    #[test]
    fn binary_estimate_reply_is_bit_exact() {
        let estimate = [1.0_f64 / 3.0, f64::MIN_POSITIVE, 0.1 + 0.2, -0.0];
        let payload = estimate_bin_reply("ram1k", 9, &estimate, 3, 1);
        let frame = Frame::response(Status::Ok, 5, payload);
        let got = parse_estimate_bin_reply(&frame).unwrap();
        assert_eq!(got.model, "ram1k");
        assert_eq!(got.version, 9);
        assert_eq!(got.wrong_state_predictions, 3);
        assert_eq!(got.unknown_instants, 1);
        let got_bits: Vec<u64> = got.estimate.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = estimate.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits);

        // A reply lying about its estimate count is a structured error.
        let mut bad = estimate_bin_reply("ram1k", 9, &estimate, 3, 1);
        let n_at = bad.len() - estimate.len() * 8 - 4;
        bad[n_at..n_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let frame = Frame::response(Status::Ok, 5, bad);
        assert!(matches!(
            parse_estimate_bin_reply(&frame),
            Err(ProtocolError::Payload(_))
        ));
    }

    #[test]
    fn ping_negotiation_is_backward_compatible() {
        // The v1 conversation still reads exactly "psmd/v1" …
        let v1 = Frame::response_v(1, Status::Ok, 1, ping_reply(1));
        let (protocol, versions) = parse_ping_reply(&v1).unwrap();
        assert_eq!(protocol, "psmd/v1");
        // … while advertising the upgrade path.
        assert_eq!(versions, vec![1, 2]);

        let v2 = Frame::response(Status::Ok, 1, ping_reply(2));
        let (protocol, _) = parse_ping_reply(&v2).unwrap();
        assert_eq!(protocol, "psmd/v2");

        // A legacy daemon's reply (no `versions` field) means v1-only.
        let legacy = Frame::response_v(
            1,
            Status::Ok,
            1,
            JsonValue::obj([("protocol", JsonValue::from("psmd/v1"))])
                .render()
                .into_bytes(),
        );
        let (_, versions) = parse_ping_reply(&legacy).unwrap();
        assert_eq!(versions, vec![1]);
    }

    #[test]
    fn stream_control_replies_parse() {
        let open = Frame::response(Status::Ok, 1, stream_open_reply(3, "aes", 2));
        let doc = open.json().unwrap();
        assert_eq!(doc.u64_field("stream").unwrap(), 3);
        assert_eq!(doc.str_field("model").unwrap(), "aes");

        let close = Frame::response(Status::Ok, 2, stream_close_reply(3, "aes", 2, 100, 4, 1));
        let doc = close.json().unwrap();
        assert_eq!(doc.u64_field("instants").unwrap(), 100);
        assert_eq!(doc.u64_field("wrong_state_predictions").unwrap(), 4);
        assert_eq!(doc.u64_field("unknown_instants").unwrap(), 1);
    }
}
