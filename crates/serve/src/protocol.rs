//! The `psmd/v1` framed wire protocol.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic `PSMD`
//! 4       1     protocol version (1)
//! 5       1     kind: request opcode (0x01..) or response status (0x80..)
//! 6       8     request id, u64 little-endian (echoed in the response)
//! 14      4     payload length, u32 little-endian (≤ 64 MiB)
//! 18      n     payload: a UTF-8 JSON document, or empty
//! ```
//!
//! The fixed header makes the protocol self-describing enough to fail
//! fast: a client that connects to the wrong port gets a structured
//! [`ProtocolError::BadMagic`], not a hung read. The 64 MiB payload cap
//! bounds what one malicious or confused peer can make the daemon
//! allocate.
//!
//! Payloads are JSON via [`psm_persist::JsonValue`] — the same
//! dependency-free document model the artifact files use — so an
//! estimate travels the wire through the identical shortest-round-trip
//! float writer that persisted the model, and survives bit-exactly.

use psm_hmm::HmmOutcome;
use psm_persist::{JsonValue, Persist, PersistError};
use psm_trace::FunctionalTrace;
use std::io::{self, Read, Write};

/// First bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PSMD";

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame payload, in bytes.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Size of the fixed frame header.
pub const HEADER_LEN: usize = 18;

/// A request kind (client → daemon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Estimate power for a submitted functional trace.
    Estimate,
    /// Fetch the daemon's telemetry report (text or JSON).
    Stats,
    /// Atomically reload the model registry from disk.
    Reload,
    /// List the models of the current registry snapshot.
    List,
    /// Liveness probe.
    Ping,
    /// Drain in-flight work, flush stats, exit.
    Shutdown,
}

impl Opcode {
    /// The wire byte of this opcode.
    pub fn as_u8(self) -> u8 {
        match self {
            Opcode::Estimate => 0x01,
            Opcode::Stats => 0x02,
            Opcode::Reload => 0x03,
            Opcode::List => 0x04,
            Opcode::Ping => 0x05,
            Opcode::Shutdown => 0x06,
        }
    }

    /// Decodes a wire byte, `None` when it is not a request opcode.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Estimate),
            0x02 => Some(Opcode::Stats),
            0x03 => Some(Opcode::Reload),
            0x04 => Some(Opcode::List),
            0x05 => Some(Opcode::Ping),
            0x06 => Some(Opcode::Shutdown),
            _ => None,
        }
    }

    /// Lower-case opcode name, used for per-opcode telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Estimate => "estimate",
            Opcode::Stats => "stats",
            Opcode::Reload => "reload",
            Opcode::List => "list",
            Opcode::Ping => "ping",
            Opcode::Shutdown => "shutdown",
        }
    }

    /// Every opcode, in wire-byte order.
    pub const ALL: [Opcode; 6] = [
        Opcode::Estimate,
        Opcode::Stats,
        Opcode::Reload,
        Opcode::List,
        Opcode::Ping,
        Opcode::Shutdown,
    ];
}

/// A response kind (daemon → client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request succeeded; the payload is the result.
    Ok,
    /// The request failed; the payload carries `{"error": …}`.
    Error,
    /// The estimation queue is full — explicit backpressure. Retry later.
    Busy,
}

impl Status {
    /// The wire byte of this status.
    pub fn as_u8(self) -> u8 {
        match self {
            Status::Ok => 0x80,
            Status::Error => 0x81,
            Status::Busy => 0x82,
        }
    }

    /// Decodes a wire byte, `None` when it is not a response status.
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0x80 => Some(Status::Ok),
            0x81 => Some(Status::Error),
            0x82 => Some(Status::Busy),
            _ => None,
        }
    }
}

/// One decoded frame: the kind byte, the request id and the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The kind byte: a request [`Opcode`] or a response [`Status`].
    pub kind: u8,
    /// Correlates a response with its request. The daemon echoes it
    /// verbatim, which is what lets the pool answer batched requests out
    /// of submission order.
    pub request_id: u64,
    /// The JSON payload bytes (possibly empty).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a request frame.
    pub fn request(op: Opcode, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind: op.as_u8(),
            request_id,
            payload,
        }
    }

    /// Builds a response frame.
    pub fn response(status: Status, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind: status.as_u8(),
            request_id,
            payload,
        }
    }

    /// The frame's request opcode, if it is a request.
    pub fn opcode(&self) -> Option<Opcode> {
        Opcode::from_u8(self.kind)
    }

    /// The frame's response status, if it is a response.
    pub fn status(&self) -> Option<Status> {
        Status::from_u8(self.kind)
    }

    /// Parses the payload as a JSON document; an empty payload is `Null`.
    pub fn json(&self) -> Result<JsonValue, ProtocolError> {
        if self.payload.is_empty() {
            return Ok(JsonValue::Null);
        }
        let text = std::str::from_utf8(&self.payload)
            .map_err(|_| ProtocolError::Payload(PersistError::schema("payload is not UTF-8")))?;
        JsonValue::parse(text).map_err(ProtocolError::Payload)
    }
}

/// A wire-level failure: bad bytes, an unsupported peer, or a payload
/// that is not the JSON the opcode requires.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer did not send the `PSMD` magic — wrong port or protocol.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The kind byte is neither a known opcode nor a known status.
    UnknownKind(u8),
    /// The payload is not the JSON document the opcode requires.
    Payload(PersistError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::BadMagic(bytes) => {
                write!(f, "bad frame magic {bytes:?} (expected \"PSMD\")")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks v{PROTOCOL_VERSION})"
                )
            }
            ProtocolError::Oversize(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_PAYLOAD} cap"
                )
            }
            ProtocolError::UnknownKind(b) => write!(f, "unknown frame kind byte {b:#04x}"),
            ProtocolError::Payload(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<PersistError> for ProtocolError {
    fn from(e: PersistError) -> Self {
        ProtocolError::Payload(e)
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates the writer's [`io::Error`]s. Panics are impossible: an
/// oversize payload is rejected as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let len = u32::try_from(frame.payload.len())
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "payload of {} bytes exceeds the frame cap",
                    frame.payload.len()
                ),
            )
        })?;
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = PROTOCOL_VERSION;
    header[5] = frame.kind;
    header[6..14].copy_from_slice(&frame.request_id.to_le_bytes());
    header[14..18].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
///
/// # Errors
///
/// [`ProtocolError::Io`] mid-frame (including EOF inside a frame, which
/// surfaces as [`io::ErrorKind::UnexpectedEof`]), or a structural error
/// for bad magic / version / kind / oversize payloads.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ProtocolError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => return read_frame_after(r, first[0]).map(Some),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
}

/// Reads the rest of a frame whose first magic byte has already been
/// consumed.
///
/// The daemon's connection loop reads the first byte with a short
/// timeout so it can poll the shutdown flag while idle; only that single
/// byte can time out without desynchronising the stream, so the
/// remainder is read here with plain blocking `read_exact`.
///
/// # Errors
///
/// Same conditions as [`read_frame`], except that EOF anywhere is
/// [`ProtocolError::Io`] (the frame has definitely started).
pub fn read_frame_after(r: &mut impl Read, first: u8) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    if header[..4] != MAGIC {
        return Err(ProtocolError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion(header[4]));
    }
    let kind = header[5];
    if Opcode::from_u8(kind).is_none() && Status::from_u8(kind).is_none() {
        return Err(ProtocolError::UnknownKind(kind));
    }
    let request_id = u64::from_le_bytes(header[6..14].try_into().expect("8-byte slice"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        kind,
        request_id,
        payload,
    })
}

// ---------------------------------------------------------------------
// Payload builders/parsers shared by the daemon and the client.
// ---------------------------------------------------------------------

/// Builds an `ESTIMATE` request payload: the target model (optionally
/// pinned to a version) and the functional trace to estimate.
pub fn estimate_request(model: &str, version: Option<u64>, trace: &FunctionalTrace) -> Vec<u8> {
    let mut fields = vec![("model", JsonValue::from(model))];
    if let Some(v) = version {
        fields.push(("version", JsonValue::from(v)));
    }
    fields.push(("trace", trace.to_json()));
    JsonValue::obj(fields).render().into_bytes()
}

/// Parses an `ESTIMATE` request payload.
///
/// # Errors
///
/// [`ProtocolError::Payload`] when the payload is not the documented
/// shape or the embedded trace is malformed.
pub fn parse_estimate_request(
    payload: &Frame,
) -> Result<(String, Option<u64>, FunctionalTrace), ProtocolError> {
    let doc = payload.json()?;
    let model = doc.str_field("model")?.to_owned();
    let version = match doc.get("version") {
        Some(v) => Some(v.as_u64()?),
        None => None,
    };
    let trace = FunctionalTrace::from_json(doc.field("trace")?)?;
    Ok((model, version, trace))
}

/// Builds the `OK` payload of an `ESTIMATE` response.
///
/// The per-instant estimate travels as a JSON array rendered through the
/// shortest-round-trip float writer, so the client recovers the daemon's
/// `f64`s bit-exactly.
pub fn estimate_reply(model: &str, version: u64, outcome: &HmmOutcome) -> Vec<u8> {
    JsonValue::obj([
        ("model", JsonValue::from(model)),
        ("version", JsonValue::from(version)),
        (
            "estimate",
            JsonValue::arr(outcome.estimate.iter().map(JsonValue::from_f64)),
        ),
        (
            "wrong_state_predictions",
            JsonValue::from(outcome.wrong_state_predictions),
        ),
        (
            "unknown_instants",
            JsonValue::from(outcome.unknown_instants),
        ),
    ])
    .render()
    .into_bytes()
}

/// Builds an `ERROR` response payload.
pub fn error_payload(message: &str) -> Vec<u8> {
    JsonValue::obj([("error", JsonValue::from(message))])
        .render()
        .into_bytes()
}

/// Extracts the message of an `ERROR` response payload, falling back to
/// a generic description when the payload itself is malformed.
pub fn parse_error(frame: &Frame) -> String {
    frame
        .json()
        .ok()
        .and_then(|doc| doc.str_field("error").map(str::to_owned).ok())
        .unwrap_or_else(|| "unspecified server error".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_trace::{Bits, Direction, SignalSet};

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(&got, frame);
        got
    }

    #[test]
    fn frames_round_trip() {
        round_trip(&Frame::request(Opcode::Ping, 7, Vec::new()));
        round_trip(&Frame::request(Opcode::Estimate, u64::MAX, b"{}".to_vec()));
        for status in [Status::Ok, Status::Error, Status::Busy] {
            round_trip(&Frame::response(status, 42, b"{\"a\":1}".to_vec()));
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_an_error() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::request(Opcode::Ping, 1, Vec::new())).unwrap();
        buf.truncate(HEADER_LEN - 3);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)), "{err}");
    }

    #[test]
    fn structural_failures_are_structured() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::request(Opcode::Ping, 1, Vec::new())).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::BadMagic(_))
        ));

        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::UnsupportedVersion(9))
        ));

        let mut bad = buf.clone();
        bad[5] = 0x7f;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::UnknownKind(0x7f))
        ));

        let mut bad = buf;
        bad[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::Oversize(_))
        ));
    }

    #[test]
    fn oversize_writes_are_rejected_without_panicking() {
        // Fake the length without allocating 64 MiB: write_frame checks the
        // declared length before touching the wire.
        let frame = Frame {
            kind: Opcode::Estimate.as_u8(),
            request_id: 1,
            payload: vec![0u8; (MAX_PAYLOAD as usize) + 1],
        };
        let err = write_frame(&mut Vec::new(), &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn estimate_request_round_trips() {
        let mut signals = SignalSet::new();
        signals.push("en", 1, Direction::Input).unwrap();
        let mut trace = FunctionalTrace::new(signals);
        trace.push_cycle(vec![Bits::from_bool(true)]).unwrap();

        let payload = estimate_request("ram1k", Some(3), &trace);
        let frame = Frame::request(Opcode::Estimate, 5, payload);
        let (model, version, back) = parse_estimate_request(&frame).unwrap();
        assert_eq!(model, "ram1k");
        assert_eq!(version, Some(3));
        assert_eq!(back, trace);

        let payload = estimate_request("ram1k", None, &trace);
        let frame = Frame::request(Opcode::Estimate, 6, payload);
        let (_, version, _) = parse_estimate_request(&frame).unwrap();
        assert_eq!(version, None);
    }

    #[test]
    fn error_payloads_degrade_gracefully() {
        let frame = Frame::response(Status::Error, 1, error_payload("no such model"));
        assert_eq!(parse_error(&frame), "no such model");
        let frame = Frame::response(Status::Error, 1, b"garbage".to_vec());
        assert_eq!(parse_error(&frame), "unspecified server error");
    }

    #[test]
    fn opcode_bytes_and_names_are_stable() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op.as_u8()), Some(op));
            assert!(Status::from_u8(op.as_u8()).is_none());
            assert!(!op.name().is_empty());
        }
        assert!(Opcode::from_u8(0x80).is_none());
    }
}
