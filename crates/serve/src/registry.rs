//! The model registry: artifacts on disk → immutable served snapshots.
//!
//! A registry is a flat directory of `psm-persist` artifacts named
//! `<model>@<version>.json` (a bare `<model>.json` is version 1) — the
//! layout `psm_persist::list_artifacts` enumerates. [`Registry::open`]
//! loads every artifact into a [`Snapshot`]; [`Registry::reload`]
//! rebuilds a complete new snapshot from disk and swaps it in **only if
//! every artifact loaded** — a half-written registry can never replace a
//! working one.
//!
//! Atomicity towards in-flight work is structural: estimation jobs hold
//! an `Arc<ServedModel>` captured at dispatch time, so a reload (or even
//! a model's removal from disk) never invalidates a request that already
//! resolved its model. The old snapshot simply drops when its last
//! request finishes.

use psm_core::{classify_trace, Psm};
use psm_hmm::{ForwardCache, ForwardPass, Hmm, HmmOutcome, HmmSimulator};
use psm_mining::{PropositionId, PropositionTable};
use psm_persist::{decode_artifact, ArtifactEntry, Persist, PersistError};
use psm_trace::FunctionalTrace;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A registry failure, naming the artifact that caused it when there is
/// one.
#[derive(Debug)]
pub struct RegistryError {
    /// The artifact at fault, `None` for directory-level failures.
    pub path: Option<PathBuf>,
    /// The underlying persistence failure.
    pub source: PersistError,
}

impl RegistryError {
    fn of(path: &Path, source: PersistError) -> Self {
        RegistryError {
            path: Some(path.to_path_buf()),
            source,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.path {
            Some(path) => write!(f, "registry artifact {}: {}", path.display(), self.source),
            None => write!(f, "registry: {}", self.source),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One loaded model, ready to estimate: the proposition table that
/// classifies raw cycles, the joined PSM, and its HMM.
///
/// This mirrors the facade's `TrainedModel` minus the training stats —
/// the daemon reads the same artifact files `PsmFlow` writes, but only
/// needs the estimation path, so it parses the three substrate fields
/// directly and stays off the facade crate.
#[derive(Debug)]
pub struct ServedModel {
    /// The model name (registry file stem up to `@`).
    pub name: String,
    /// The model version (`@<N>` stem suffix; bare stems are 1).
    pub version: u64,
    /// The artifact *format* version the file was probed at.
    pub format_version: u32,
    table: PropositionTable,
    psm: Psm,
    hmm: Hmm,
    cache: ForwardCache,
}

impl ServedModel {
    /// Loads one registry artifact.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] naming the artifact when the file cannot be
    /// read, is truncated/wrong-magic, or its body does not hold the
    /// `table`/`psm`/`hmm` fields of a flat trained model (hierarchical
    /// artifacts are not servable).
    pub fn load(entry: &ArtifactEntry) -> Result<ServedModel, RegistryError> {
        let text = std::fs::read_to_string(&entry.path)
            .map_err(|e| RegistryError::of(&entry.path, PersistError::Io(e)))?;
        let (format_version, doc) =
            decode_artifact(&text).map_err(|e| RegistryError::of(&entry.path, e))?;
        let parse = || -> Result<(PropositionTable, Psm, Hmm), PersistError> {
            Ok((
                Persist::from_json(doc.field("table")?)?,
                Persist::from_json(doc.field("psm")?)?,
                Persist::from_json(doc.field("hmm")?)?,
            ))
        };
        let (table, psm, hmm) = parse().map_err(|e| RegistryError::of(&entry.path, e))?;
        if psm.state_count() != hmm.num_states() {
            return Err(RegistryError::of(
                &entry.path,
                PersistError::schema(format!(
                    "PSM has {} states but HMM has {}",
                    psm.state_count(),
                    hmm.num_states()
                )),
            ));
        }
        let cache = hmm.forward_cache();
        Ok(ServedModel {
            name: entry.name.clone(),
            version: entry.version,
            format_version,
            table,
            psm,
            hmm,
            cache,
        })
    }

    /// Number of PSM states.
    pub fn state_count(&self) -> usize {
        self.psm.state_count()
    }

    /// Number of mined propositions in the classification table.
    pub fn proposition_count(&self) -> usize {
        self.table.len()
    }

    /// Builds a simulator for a batch of estimations against this model.
    ///
    /// Construction builds the HMM forward cache — the per-model setup
    /// cost the worker pool amortises by running every queued request
    /// for the same model through one simulator.
    pub fn simulator(&self) -> HmmSimulator<'_> {
        HmmSimulator::new(&self.psm, self.hmm.clone())
    }

    /// Estimates one trace through an existing simulator (the batch
    /// path). Identical, instant for instant, to the facade's
    /// `PsmFlow::estimate_from_trace` on the same loaded model.
    pub fn estimate_with(&self, sim: &HmmSimulator<'_>, trace: &FunctionalTrace) -> HmmOutcome {
        let observations = classify_trace(&self.table, trace);
        let hamming = trace.input_hamming_series();
        sim.run(&observations, &hamming)
    }

    /// Estimates one trace, building a throwaway simulator (the
    /// single-request path).
    pub fn estimate(&self, trace: &FunctionalTrace) -> HmmOutcome {
        self.estimate_with(&self.simulator(), trace)
    }

    /// Builds a resumable forward pass over the model's *owned* forward
    /// cache (built once at load time) — the streaming path, where a
    /// session must re-enter the model chunk after chunk without paying
    /// cache construction per chunk.
    pub fn forward_pass(&self) -> ForwardPass<'_> {
        ForwardPass::new(&self.psm, &self.hmm, &self.cache)
    }

    /// Classifies one chunk of a streamed trace against the model's
    /// proposition table. Classification is per-instant, so chunked
    /// classification equals classification of the concatenated trace.
    pub fn classify_chunk(&self, chunk: &FunctionalTrace) -> Vec<Option<PropositionId>> {
        classify_trace(&self.table, chunk)
    }
}

/// An immutable set of loaded models, sorted by name then version.
#[derive(Debug, Default)]
pub struct Snapshot {
    models: Vec<Arc<ServedModel>>,
}

impl Snapshot {
    /// Resolves a model by name; `version: None` picks the highest
    /// loaded version of that name.
    pub fn lookup(&self, name: &str, version: Option<u64>) -> Option<Arc<ServedModel>> {
        match version {
            Some(v) => self
                .models
                .iter()
                .find(|m| m.name == name && m.version == v),
            // Sorted by (name, version): the last match is the highest.
            None => self.models.iter().rev().find(|m| m.name == name),
        }
        .cloned()
    }

    /// Every loaded model, sorted by name then version.
    pub fn models(&self) -> &[Arc<ServedModel>] {
        &self.models
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the snapshot holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The registry: a directory plus the current [`Snapshot`], swapped
/// atomically by [`reload`](Registry::reload).
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    current: Mutex<Arc<Snapshot>>,
}

impl Registry {
    /// Opens a registry directory and loads every artifact in it.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] when the directory cannot be listed or any
    /// artifact fails to load — an unreadable registry never comes up
    /// half-populated.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Registry, RegistryError> {
        let dir = dir.into();
        let snapshot = Self::scan(&dir)?;
        Ok(Registry {
            dir,
            current: Mutex::new(Arc::new(snapshot)),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current snapshot. Cheap: one mutex lock and an `Arc` clone.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.lock().expect("registry lock poisoned").clone()
    }

    /// Re-scans the directory and atomically swaps in the new snapshot.
    ///
    /// All-or-nothing: if *any* artifact fails to load, the previous
    /// snapshot stays current and the error is returned. Requests
    /// already holding a model from the old snapshot are unaffected
    /// either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Registry::open`].
    pub fn reload(&self) -> Result<Arc<Snapshot>, RegistryError> {
        let snapshot = Arc::new(Self::scan(&self.dir)?);
        *self.current.lock().expect("registry lock poisoned") = snapshot.clone();
        Ok(snapshot)
    }

    fn scan(dir: &Path) -> Result<Snapshot, RegistryError> {
        let entries = psm_persist::list_artifacts(dir)
            .map_err(|source| RegistryError { path: None, source })?;
        let models = entries
            .iter()
            .map(|e| ServedModel::load(e).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot { models })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{toy_model_json, toy_trace};
    use psm_persist::JsonValue;

    fn write_artifact(dir: &Path, file: &str, body: &JsonValue) {
        std::fs::write(dir.join(file), psm_persist::encode_artifact(body)).unwrap();
    }

    fn temp_registry(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psm-serve-registry-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_lookup_and_version_pinning() {
        let dir = temp_registry("lookup");
        let body = toy_model_json();
        write_artifact(&dir, "ram@1.json", &body);
        write_artifact(&dir, "ram@2.json", &body);
        // A legacy headerless artifact still serves.
        std::fs::write(dir.join("mac.json"), body.render()).unwrap();

        let registry = Registry::open(&dir).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.lookup("ram", None).unwrap().version, 2);
        assert_eq!(snap.lookup("ram", Some(1)).unwrap().version, 1);
        assert!(snap.lookup("ram", Some(9)).is_none());
        assert!(snap.lookup("fft", None).is_none());
        let mac = snap.lookup("mac", None).unwrap();
        assert_eq!(mac.format_version, 1);
        assert!(mac.state_count() > 0);
        assert!(mac.proposition_count() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn served_estimates_match_across_batch_and_single_paths() {
        let dir = temp_registry("estimate");
        write_artifact(&dir, "toy@1.json", &toy_model_json());
        let registry = Registry::open(&dir).unwrap();
        let model = registry.snapshot().lookup("toy", None).unwrap();
        let trace = toy_trace();
        let single = model.estimate(&trace);
        let sim = model.simulator();
        let batched = model.estimate_with(&sim, &trace);
        let again = model.estimate_with(&sim, &trace);
        assert_eq!(single, batched, "one simulator per batch changes nothing");
        assert_eq!(batched, again, "simulator reuse is stateless across runs");
        assert_eq!(single.estimate.len(), trace.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_reload_keeps_the_old_snapshot() {
        let dir = temp_registry("reload");
        write_artifact(&dir, "toy@1.json", &toy_model_json());
        let registry = Registry::open(&dir).unwrap();
        assert_eq!(registry.snapshot().len(), 1);

        // A corrupt newcomer fails the reload atomically…
        std::fs::write(dir.join("bad@1.json"), "not an artifact").unwrap();
        let err = registry.reload().unwrap_err();
        assert!(err.to_string().contains("bad@1.json"), "{err}");
        assert_eq!(registry.snapshot().len(), 1, "old snapshot survives");

        // …and fixing the directory makes the next reload land.
        std::fs::remove_file(dir.join("bad@1.json")).unwrap();
        write_artifact(&dir, "toy@2.json", &toy_model_json());
        let snap = registry.reload().unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(registry.snapshot().lookup("toy", None).unwrap().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_never_invalidates_a_held_model() {
        let dir = temp_registry("held");
        write_artifact(&dir, "toy@1.json", &toy_model_json());
        let registry = Registry::open(&dir).unwrap();
        let held = registry.snapshot().lookup("toy", None).unwrap();

        // The artifact disappears from disk; the reload drops it from the
        // registry, but the held Arc keeps estimating.
        std::fs::remove_file(dir.join("toy@1.json")).unwrap();
        let snap = registry.reload().unwrap();
        assert!(snap.is_empty());
        let out = held.estimate(&toy_trace());
        assert_eq!(out.estimate.len(), toy_trace().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structured_errors_for_unservable_artifacts() {
        let dir = temp_registry("unservable");
        // Well-formed JSON, but not a flat trained model.
        std::fs::write(
            dir.join("hier@1.json"),
            psm_persist::encode_artifact(&JsonValue::obj([
                ("domains", JsonValue::arr([])),
                ("models", JsonValue::arr([])),
            ])),
        )
        .unwrap();
        let err = Registry::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("hier@1.json") && msg.contains("table"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_a_directory_level_error() {
        let err = Registry::open("/nonexistent/psmd/registry").unwrap_err();
        assert!(err.path.is_none());
        assert!(matches!(err.source, PersistError::Io(_)));
    }
}
