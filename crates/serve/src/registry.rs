//! The model registry: artifacts on disk → immutable served snapshots.
//!
//! A registry is a flat directory of `psm-persist` artifacts named
//! `<model>@<version>.json` (a bare `<model>.json` is version 1) — the
//! layout `psm_persist::list_artifacts` enumerates. [`Registry::open`]
//! loads every artifact into a [`Snapshot`]; [`Registry::reload`]
//! rebuilds a complete new snapshot from disk and swaps it in **only if
//! every artifact loaded** — a half-written registry can never replace a
//! working one.
//!
//! Atomicity towards in-flight work is structural: estimation jobs hold
//! an `Arc<ServedModel>` captured at dispatch time, so a reload (or even
//! a model's removal from disk) never invalidates a request that already
//! resolved its model. The old snapshot simply drops when its last
//! request finishes.
//!
//! # Engines and artifact formats
//!
//! Every loaded model carries **both** runtimes: the interpreted
//! `psm-hmm` walker and the flat-table [`CompiledModel`] of
//! `psm-compile`, which [`Engine`] selects per registry (compiled by
//! default — `psmd --engine interpreted` restores the old path). The
//! two are bit-identical by construction, so the choice is purely a
//! throughput knob. A `psmgen-artifact/v3` file ships its compiled
//! section pre-built (`psmctl compile` writes these); the registry
//! *verifies* that section against a fresh compilation of the
//! interpreted model it rides with and refuses artifacts where the two
//! disagree — a v3 file can never smuggle in divergent serving tables.
//! v1/v2 artifacts are compiled on the fly at load time.

use psm_compile::CompiledModel;
use psm_core::{classify_trace, Psm};
use psm_hmm::{ForwardCache, ForwardPass, Hmm, HmmOutcome, HmmSimulator};
use psm_mining::{PropositionId, PropositionTable};
use psm_persist::{decode_artifact, ArtifactEntry, Persist, PersistError};
use psm_trace::FunctionalTrace;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A registry failure, naming the artifact that caused it when there is
/// one.
#[derive(Debug)]
pub struct RegistryError {
    /// The artifact at fault, `None` for directory-level failures.
    pub path: Option<PathBuf>,
    /// The underlying persistence failure.
    pub source: PersistError,
}

impl RegistryError {
    fn of(path: &Path, source: PersistError) -> Self {
        RegistryError {
            path: Some(path.to_path_buf()),
            source,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.path {
            Some(path) => write!(f, "registry artifact {}: {}", path.display(), self.source),
            None => write!(f, "registry: {}", self.source),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Which estimation runtime a registry's models answer through.
///
/// Both runtimes are loaded for every model and produce bit-identical
/// outcomes; the engine only decides which one executes requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The flat-table compiled runtime (`psm-compile`): allocation-free
    /// per instant. The default.
    #[default]
    Compiled,
    /// The assertion-driven interpreted walker (`psm-hmm`).
    Interpreted,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Compiled => "compiled",
            Engine::Interpreted => "interpreted",
        })
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compiled" => Ok(Engine::Compiled),
            "interpreted" => Ok(Engine::Interpreted),
            other => Err(format!(
                "engine must be compiled or interpreted, got `{other}`"
            )),
        }
    }
}

/// One loaded model, ready to estimate: the proposition table that
/// classifies raw cycles, the joined PSM, and its HMM.
///
/// This mirrors the facade's `TrainedModel` minus the training stats —
/// the daemon reads the same artifact files `PsmFlow` writes, but only
/// needs the estimation path, so it parses the three substrate fields
/// directly and stays off the facade crate.
#[derive(Debug)]
pub struct ServedModel {
    /// The model name (registry file stem up to `@`).
    pub name: String,
    /// The model version (`@<N>` stem suffix; bare stems are 1).
    pub version: u64,
    /// The artifact *format* version the file was probed at.
    pub format_version: u32,
    table: PropositionTable,
    psm: Psm,
    hmm: Hmm,
    cache: ForwardCache,
    compiled: Arc<CompiledModel>,
    engine: Engine,
}

impl ServedModel {
    /// Loads one registry artifact, answering requests through `engine`.
    ///
    /// A v3 artifact must carry a `compiled` section, which is verified
    /// against a fresh compilation of the `table`/`psm`/`hmm` it ships
    /// with; v1/v2 artifacts are compiled on the fly.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] naming the artifact when the file cannot be
    /// read, is truncated/wrong-magic, its body does not hold the
    /// `table`/`psm`/`hmm` fields of a flat trained model (hierarchical
    /// artifacts are not servable), or its compiled section is missing,
    /// malformed, or disagrees with the interpreted model.
    pub fn load(entry: &ArtifactEntry, engine: Engine) -> Result<ServedModel, RegistryError> {
        let text = std::fs::read_to_string(&entry.path)
            .map_err(|e| RegistryError::of(&entry.path, PersistError::Io(e)))?;
        let (format_version, doc) =
            decode_artifact(&text).map_err(|e| RegistryError::of(&entry.path, e))?;
        let parse = || -> Result<(PropositionTable, Psm, Hmm), PersistError> {
            Ok((
                Persist::from_json(doc.field("table")?)?,
                Persist::from_json(doc.field("psm")?)?,
                Persist::from_json(doc.field("hmm")?)?,
            ))
        };
        let (table, psm, hmm) = parse().map_err(|e| RegistryError::of(&entry.path, e))?;
        if psm.state_count() != hmm.num_states() {
            return Err(RegistryError::of(
                &entry.path,
                PersistError::schema(format!(
                    "PSM has {} states but HMM has {}",
                    psm.state_count(),
                    hmm.num_states()
                )),
            ));
        }
        let compile_fresh = || {
            CompiledModel::compile_with_dictionary(&table, &psm, &hmm)
                .map_err(|e| PersistError::schema(e.to_string()))
        };
        let compiled = if format_version >= psm_persist::ARTIFACT_VERSION_COMPILED {
            // The shipped section must be the *exact* compilation of the
            // model beside it — compared on the canonical render, which
            // distinguishes even -0.0 from 0.0.
            let verify = || -> Result<CompiledModel, PersistError> {
                let shipped: CompiledModel = Persist::from_json(doc.field("compiled")?)?;
                if shipped.to_json().render() != compile_fresh()?.to_json().render() {
                    return Err(PersistError::schema(
                        "compiled section disagrees with the model it ships with",
                    ));
                }
                Ok(shipped)
            };
            verify().map_err(|e| RegistryError::of(&entry.path, e))?
        } else {
            compile_fresh().map_err(|e| RegistryError::of(&entry.path, e))?
        };
        let cache = hmm.forward_cache();
        Ok(ServedModel {
            name: entry.name.clone(),
            version: entry.version,
            format_version,
            table,
            psm,
            hmm,
            cache,
            compiled: Arc::new(compiled),
            engine,
        })
    }

    /// Number of PSM states.
    pub fn state_count(&self) -> usize {
        self.psm.state_count()
    }

    /// Number of mined propositions in the classification table.
    pub fn proposition_count(&self) -> usize {
        self.table.len()
    }

    /// The engine this model answers requests through.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The compiled runtime, always present regardless of [`Engine`]
    /// (v3 artifacts ship it; v1/v2 were compiled at load time).
    pub fn compiled(&self) -> &Arc<CompiledModel> {
        &self.compiled
    }

    /// Builds a simulator for a batch of *interpreted* estimations.
    ///
    /// Construction builds the HMM forward cache — the per-model setup
    /// cost the worker pool amortises by running every queued request
    /// for the same model through one simulator.
    pub fn simulator(&self) -> HmmSimulator<'_> {
        HmmSimulator::new(&self.psm, self.hmm.clone())
    }

    /// The per-batch context for this model's engine: the compiled
    /// tables (nothing to set up), or one interpreted simulator whose
    /// forward-cache construction the batch amortises.
    pub fn batch_runner(&self) -> BatchRunner<'_> {
        match self.engine {
            Engine::Compiled => BatchRunner::Compiled(&self.compiled),
            Engine::Interpreted => BatchRunner::Interpreted(self.simulator()),
        }
    }

    /// Estimates one trace through an existing simulator (the
    /// interpreted batch path). Identical, instant for instant, to the
    /// facade's `PsmFlow::estimate_from_trace` on the same loaded model.
    pub fn estimate_with(&self, sim: &HmmSimulator<'_>, trace: &FunctionalTrace) -> HmmOutcome {
        let observations = classify_trace(&self.table, trace);
        let hamming = trace.input_hamming_series();
        sim.run(&observations, &hamming)
    }

    /// Estimates one trace through a prepared [`BatchRunner`] — the
    /// worker pool's path, engine-dispatched but bit-identical either
    /// way.
    pub fn estimate_with_runner(
        &self,
        runner: &BatchRunner<'_>,
        trace: &FunctionalTrace,
    ) -> HmmOutcome {
        let observations = classify_trace(&self.table, trace);
        let hamming = trace.input_hamming_series();
        match runner {
            BatchRunner::Compiled(compiled) => compiled.run(&observations, &hamming),
            BatchRunner::Interpreted(sim) => sim.run(&observations, &hamming),
        }
    }

    /// Estimates one trace through this model's engine (the
    /// single-request path).
    pub fn estimate(&self, trace: &FunctionalTrace) -> HmmOutcome {
        self.estimate_with_runner(&self.batch_runner(), trace)
    }

    /// Builds a resumable forward pass over the model's *owned* forward
    /// cache (built once at load time) — the streaming path, where a
    /// session must re-enter the model chunk after chunk without paying
    /// cache construction per chunk.
    pub fn forward_pass(&self) -> ForwardPass<'_> {
        ForwardPass::new(&self.psm, &self.hmm, &self.cache)
    }

    /// Classifies one chunk of a streamed trace against the model's
    /// proposition table. Classification is per-instant, so chunked
    /// classification equals classification of the concatenated trace.
    pub fn classify_chunk(&self, chunk: &FunctionalTrace) -> Vec<Option<PropositionId>> {
        classify_trace(&self.table, chunk)
    }
}

/// A per-batch estimation context — the engine-specific setup a worker
/// builds once and reuses for every request of one batch
/// ([`ServedModel::batch_runner`]).
pub enum BatchRunner<'m> {
    /// The compiled flat tables; construction is free.
    Compiled(&'m Arc<CompiledModel>),
    /// An interpreted simulator owning its forward cache.
    Interpreted(HmmSimulator<'m>),
}

impl std::fmt::Debug for BatchRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BatchRunner::Compiled(_) => "BatchRunner::Compiled",
            BatchRunner::Interpreted(_) => "BatchRunner::Interpreted",
        })
    }
}

/// An immutable set of loaded models, sorted by name then version.
#[derive(Debug, Default)]
pub struct Snapshot {
    models: Vec<Arc<ServedModel>>,
}

impl Snapshot {
    /// Resolves a model by name; `version: None` picks the highest
    /// loaded version of that name.
    pub fn lookup(&self, name: &str, version: Option<u64>) -> Option<Arc<ServedModel>> {
        match version {
            Some(v) => self
                .models
                .iter()
                .find(|m| m.name == name && m.version == v),
            // Sorted by (name, version): the last match is the highest.
            None => self.models.iter().rev().find(|m| m.name == name),
        }
        .cloned()
    }

    /// Every loaded model, sorted by name then version.
    pub fn models(&self) -> &[Arc<ServedModel>] {
        &self.models
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the snapshot holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The registry: a directory plus the current [`Snapshot`], swapped
/// atomically by [`reload`](Registry::reload).
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    engine: Engine,
    current: Mutex<Arc<Snapshot>>,
}

impl Registry {
    /// Opens a registry directory with the default [`Engine`] and loads
    /// every artifact in it.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] when the directory cannot be listed or any
    /// artifact fails to load — an unreadable registry never comes up
    /// half-populated.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Registry, RegistryError> {
        Self::open_with_engine(dir, Engine::default())
    }

    /// Opens a registry directory whose models answer through `engine`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Registry::open`].
    pub fn open_with_engine(
        dir: impl Into<PathBuf>,
        engine: Engine,
    ) -> Result<Registry, RegistryError> {
        let dir = dir.into();
        let snapshot = Self::scan(&dir, engine)?;
        Ok(Registry {
            dir,
            engine,
            current: Mutex::new(Arc::new(snapshot)),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The engine every model of this registry answers through.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The current snapshot. Cheap: one mutex lock and an `Arc` clone.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.lock().expect("registry lock poisoned").clone()
    }

    /// Re-scans the directory and atomically swaps in the new snapshot.
    ///
    /// All-or-nothing: if *any* artifact fails to load, the previous
    /// snapshot stays current and the error is returned. Requests
    /// already holding a model from the old snapshot are unaffected
    /// either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Registry::open`].
    pub fn reload(&self) -> Result<Arc<Snapshot>, RegistryError> {
        let snapshot = Arc::new(Self::scan(&self.dir, self.engine)?);
        *self.current.lock().expect("registry lock poisoned") = snapshot.clone();
        Ok(snapshot)
    }

    fn scan(dir: &Path, engine: Engine) -> Result<Snapshot, RegistryError> {
        let entries = psm_persist::list_artifacts(dir)
            .map_err(|source| RegistryError { path: None, source })?;
        let models = entries
            .iter()
            .map(|e| ServedModel::load(e, engine).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot { models })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{toy_model_json, toy_trace};
    use psm_persist::JsonValue;

    fn write_artifact(dir: &Path, file: &str, body: &JsonValue) {
        std::fs::write(dir.join(file), psm_persist::encode_artifact(body)).unwrap();
    }

    fn temp_registry(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psm-serve-registry-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_lookup_and_version_pinning() {
        let dir = temp_registry("lookup");
        let body = toy_model_json();
        write_artifact(&dir, "ram@1.json", &body);
        write_artifact(&dir, "ram@2.json", &body);
        // A legacy headerless artifact still serves.
        std::fs::write(dir.join("mac.json"), body.render()).unwrap();

        let registry = Registry::open(&dir).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.lookup("ram", None).unwrap().version, 2);
        assert_eq!(snap.lookup("ram", Some(1)).unwrap().version, 1);
        assert!(snap.lookup("ram", Some(9)).is_none());
        assert!(snap.lookup("fft", None).is_none());
        let mac = snap.lookup("mac", None).unwrap();
        assert_eq!(mac.format_version, 1);
        assert!(mac.state_count() > 0);
        assert!(mac.proposition_count() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn served_estimates_match_across_batch_and_single_paths() {
        let dir = temp_registry("estimate");
        write_artifact(&dir, "toy@1.json", &toy_model_json());
        let registry = Registry::open(&dir).unwrap();
        let model = registry.snapshot().lookup("toy", None).unwrap();
        let trace = toy_trace();
        let single = model.estimate(&trace);
        let sim = model.simulator();
        let batched = model.estimate_with(&sim, &trace);
        let again = model.estimate_with(&sim, &trace);
        assert_eq!(single, batched, "one simulator per batch changes nothing");
        assert_eq!(batched, again, "simulator reuse is stateless across runs");
        assert_eq!(single.estimate.len(), trace.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Parses the three substrate fields back out of a rendered body.
    fn substrate(body: &JsonValue) -> (PropositionTable, Psm, Hmm) {
        (
            Persist::from_json(body.field("table").unwrap()).unwrap(),
            Persist::from_json(body.field("psm").unwrap()).unwrap(),
            Persist::from_json(body.field("hmm").unwrap()).unwrap(),
        )
    }

    /// Renders `body` plus a `compiled` section as a v3 artifact.
    fn v3_text(body: JsonValue, compiled: &CompiledModel) -> String {
        let JsonValue::Obj(mut fields) = body else {
            unreachable!("model bodies are objects")
        };
        fields.push(("compiled".to_owned(), compiled.to_json()));
        psm_persist::encode_artifact_versioned(
            &JsonValue::Obj(fields),
            psm_persist::ARTIFACT_VERSION_COMPILED,
        )
    }

    #[test]
    fn v3_artifacts_serve_identically_on_both_engines() {
        let dir = temp_registry("v3");
        let body = toy_model_json();
        write_artifact(&dir, "toy@1.json", &body);
        let (table, psm, hmm) = substrate(&body);
        let compiled = CompiledModel::compile_with_dictionary(&table, &psm, &hmm).unwrap();
        std::fs::write(dir.join("toy@2.json"), v3_text(body, &compiled)).unwrap();

        let registry = Registry::open(&dir).unwrap();
        assert_eq!(registry.engine(), Engine::Compiled);
        let v2 = registry.snapshot().lookup("toy", Some(1)).unwrap();
        let v3 = registry.snapshot().lookup("toy", Some(2)).unwrap();
        assert_eq!(v2.format_version, 2);
        assert_eq!(v3.format_version, 3);
        assert_eq!(v3.compiled().num_states(), v3.state_count());

        let interpreted = Registry::open_with_engine(&dir, Engine::Interpreted).unwrap();
        let old_path = interpreted.snapshot().lookup("toy", Some(2)).unwrap();
        assert_eq!(old_path.engine(), Engine::Interpreted);

        // v2-compiled-on-the-fly, v3-shipped, and interpreted all agree
        // to the bit.
        let trace = toy_trace();
        let a = v2.estimate(&trace);
        let b = v3.estimate(&trace);
        let c = old_path.estimate(&trace);
        assert_eq!(a, b);
        assert_eq!(a, c);
        for (x, y) in a.estimate.iter().zip(b.estimate.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_artifact_with_divergent_compiled_section_is_rejected() {
        let dir = temp_registry("v3-divergent");
        let body = toy_model_json();
        let (_, psm, hmm) = substrate(&body);
        // Structurally valid, but compiled without the classification
        // dictionary the shipped table would produce.
        let divergent = CompiledModel::compile(&psm, &hmm).unwrap();
        std::fs::write(dir.join("toy@1.json"), v3_text(body, &divergent)).unwrap();
        let err = Registry::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("toy@1.json") && msg.contains("disagrees"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_artifact_missing_its_compiled_section_is_rejected() {
        let dir = temp_registry("v3-missing");
        std::fs::write(
            dir.join("toy@1.json"),
            psm_persist::encode_artifact_versioned(
                &toy_model_json(),
                psm_persist::ARTIFACT_VERSION_COMPILED,
            ),
        )
        .unwrap();
        let err = Registry::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("toy@1.json") && msg.contains("compiled"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_reload_keeps_the_old_snapshot() {
        let dir = temp_registry("reload");
        write_artifact(&dir, "toy@1.json", &toy_model_json());
        let registry = Registry::open(&dir).unwrap();
        assert_eq!(registry.snapshot().len(), 1);

        // A corrupt newcomer fails the reload atomically…
        std::fs::write(dir.join("bad@1.json"), "not an artifact").unwrap();
        let err = registry.reload().unwrap_err();
        assert!(err.to_string().contains("bad@1.json"), "{err}");
        assert_eq!(registry.snapshot().len(), 1, "old snapshot survives");

        // …and fixing the directory makes the next reload land.
        std::fs::remove_file(dir.join("bad@1.json")).unwrap();
        write_artifact(&dir, "toy@2.json", &toy_model_json());
        let snap = registry.reload().unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(registry.snapshot().lookup("toy", None).unwrap().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_never_invalidates_a_held_model() {
        let dir = temp_registry("held");
        write_artifact(&dir, "toy@1.json", &toy_model_json());
        let registry = Registry::open(&dir).unwrap();
        let held = registry.snapshot().lookup("toy", None).unwrap();

        // The artifact disappears from disk; the reload drops it from the
        // registry, but the held Arc keeps estimating.
        std::fs::remove_file(dir.join("toy@1.json")).unwrap();
        let snap = registry.reload().unwrap();
        assert!(snap.is_empty());
        let out = held.estimate(&toy_trace());
        assert_eq!(out.estimate.len(), toy_trace().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structured_errors_for_unservable_artifacts() {
        let dir = temp_registry("unservable");
        // Well-formed JSON, but not a flat trained model.
        std::fs::write(
            dir.join("hier@1.json"),
            psm_persist::encode_artifact(&JsonValue::obj([
                ("domains", JsonValue::arr([])),
                ("models", JsonValue::arr([])),
            ])),
        )
        .unwrap();
        let err = Registry::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("hier@1.json") && msg.contains("table"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_a_directory_level_error() {
        let err = Registry::open("/nonexistent/psmd/registry").unwrap_err();
        assert!(err.path.is_none());
        assert!(matches!(err.source, PersistError::Io(_)));
    }
}
