//! A std-only readiness facility: `poll(2)` plus a wake pipe.
//!
//! The readiness-driven daemon needs exactly three things the standard
//! library does not expose: waiting on many fds at once (`poll`), a way
//! for other threads to interrupt that wait (a self-pipe whose read end
//! joins the poll set), and non-blocking mode on accepted sockets
//! (which `std` *does* expose via `TcpStream::set_nonblocking`). The
//! workspace builds with no external crates, so `poll`/`pipe`/`read`/
//! `write`/`close` are declared directly against libc — `std` already
//! links libc on every Unix target, the same precedent as
//! [`signals`](crate::signals).
//!
//! On non-Unix targets the module still compiles but [`poll_fds`]
//! returns `Unsupported`; the daemon falls back to thread-per-connection
//! there ([`IoMode`](crate::daemon::IoMode)).

use std::io;

/// Readable data is available (or a peer closed with data pending).
pub const POLLIN: i16 = 0x001;
/// The fd is writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel — the classic tombstone for removed connections).
    pub fd: i32,
    /// Events of interest ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Events that occurred, written by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel flagged an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    type NfdsT = u64;
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    type NfdsT = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;

    /// Puts `fd` into non-blocking mode (best effort).
    fn set_nonblocking(fd: i32) {
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags >= 0 {
                let _ = fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            }
        }
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// The wake pipe: the read end sits in the poll set; any thread
    /// holding a [`Waker`](super::Waker) can make `poll` return.
    #[derive(Debug)]
    pub struct WakePipe {
        read_fd: i32,
        write_fd: i32,
    }

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [-1i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            // Non-blocking on both ends: drain must never block the
            // event loop, and a wake against a full pipe (already
            // plenty of pending bytes) may simply drop its byte.
            set_nonblocking(fds[0]);
            set_nonblocking(fds[1]);
            Ok(WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn read_fd(&self) -> i32 {
            self.read_fd
        }

        pub fn waker(&self) -> super::Waker {
            super::Waker {
                write_fd: self.write_fd,
            }
        }

        /// Drains every pending wake byte (non-destructive if none).
        ///
        /// Never blocks: the read end is non-blocking, and each read is
        /// additionally gated on a zero-timeout poll reporting data, so
        /// pending bytes landing on an exact multiple of the buffer
        /// size cannot wedge the event loop on a blocking `read(2)`.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let mut fds = [PollFd::new(self.read_fd, super::POLLIN)];
                let readable =
                    matches!(poll_fds(&mut fds, 0), Ok(n) if n > 0) && fds[0].ready(super::POLLIN);
                if !readable {
                    return;
                }
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 || n < buf.len() as isize {
                    return;
                }
            }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                let _ = close(self.read_fd);
                let _ = close(self.write_fd);
            }
        }
    }

    pub fn wake(write_fd: i32) {
        let byte = [1u8];
        unsafe {
            let _ = write(write_fd, byte.as_ptr(), 1);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;
    use std::io;

    pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poll(2) readiness I/O is only available on Unix",
        ))
    }

    /// Stub wake pipe for non-Unix targets (construction fails).
    #[derive(Debug)]
    pub struct WakePipe {}

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "poll(2) readiness I/O is only available on Unix",
            ))
        }

        pub fn read_fd(&self) -> i32 {
            -1
        }

        pub fn waker(&self) -> super::Waker {
            super::Waker { write_fd: -1 }
        }

        pub fn drain(&self) {}
    }

    pub fn wake(_write_fd: i32) {}
}

/// Waits for readiness on `fds` for at most `timeout_ms` milliseconds
/// (`-1` blocks indefinitely), retrying `EINTR` internally. Returns the
/// number of entries with non-zero `revents`.
///
/// # Errors
///
/// The raw OS error from `poll(2)`, or `Unsupported` off Unix.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    imp::poll_fds(fds, timeout_ms)
}

/// A self-pipe whose read end joins the poll set so other threads can
/// interrupt a blocked [`poll_fds`]. Closes both ends on drop.
#[derive(Debug)]
pub struct WakePipe(imp::WakePipe);

impl WakePipe {
    /// Opens the pipe.
    ///
    /// # Errors
    ///
    /// The raw OS error from `pipe(2)`, or `Unsupported` off Unix.
    pub fn new() -> io::Result<WakePipe> {
        imp::WakePipe::new().map(WakePipe)
    }

    /// The fd to add to the poll set with [`POLLIN`].
    pub fn read_fd(&self) -> i32 {
        self.0.read_fd()
    }

    /// A cheap, cloneable handle other threads use to wake the loop.
    pub fn waker(&self) -> Waker {
        self.0.waker()
    }

    /// Consumes pending wake bytes after `poll` reported the read end
    /// readable. Call only from the polling thread.
    pub fn drain(&self) {
        self.0.drain();
    }
}

/// Wakes a [`WakePipe`]'s poll loop by writing one byte. `Clone + Send`:
/// hand copies to worker callbacks and signal bridges freely. A wake on
/// a dropped pipe is a harmless no-op at the OS level (`EBADF` ignored).
#[derive(Debug, Clone, Copy)]
pub struct Waker {
    write_fd: i32,
}

impl Waker {
    /// Makes the associated poll loop return promptly.
    pub fn wake(&self) {
        imp::wake(self.write_fd);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_times_out_on_idle_fds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready(POLLIN));
    }

    #[test]
    fn poll_reports_readable_data_and_writable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [
            PollFd::new(server.as_raw_fd(), POLLIN),
            PollFd::new(client.as_raw_fd(), POLLOUT),
        ];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 2);
        assert!(fds[0].ready(POLLIN), "written byte makes the peer readable");
        assert!(fds[1].ready(POLLOUT), "idle socket buffer is writable");
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        // Far below the 10s timeout: only the wake can end this early.
        let n = poll_fds(&mut fds, 10_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        pipe.drain();
        // After the drain the pipe polls idle again.
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        handle.join().unwrap();
    }

    #[test]
    fn drain_returns_on_exact_buffer_multiples_without_blocking() {
        // 128 pending bytes = exactly two 64-byte drain reads; the
        // second read fills the buffer exactly and a naive drain would
        // then block forever on an empty pipe.
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        for _ in 0..128 {
            waker.wake();
        }
        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0, "drain must leave the pipe empty");
    }

    #[test]
    fn negative_fds_are_ignored_tombstones() {
        let pipe = WakePipe::new().unwrap();
        pipe.waker().wake();
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(!fds[0].ready(POLLIN));
        assert_eq!(fds[0].revents, 0);
        assert!(fds[1].ready(POLLIN));
    }
}
